//! Offline stand-in for [criterion-rs](https://github.com/bheisler/criterion.rs).
//!
//! The container this workspace builds in has no crates.io access, so the
//! real criterion cannot be fetched. This crate implements the small slice
//! of criterion's API that the `uc-bench` benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with plain
//! `std::time::Instant` timing and a fixed iteration budget instead of
//! criterion's adaptive sampling. Swapping in the real crate later is a
//! one-line `Cargo.toml` change; no bench source needs to be touched.

use std::time::{Duration, Instant};

/// Entry point handed to each bench function, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Creates a benchmark manager with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", name, 10, f);
        self
    }
}

/// A named collection of benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within this group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, &id.into(), self.sample_size, f);
        self
    }

    /// Ends the group. A no-op here; kept for API compatibility.
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    for _ in 0..samples {
        f(&mut b);
    }
    let per_iter = if b.iters == 0 {
        Duration::ZERO
    } else {
        b.elapsed / b.iters.max(1) as u32
    };
    if group.is_empty() {
        println!("bench {id:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
    } else {
        println!(
            "bench {group}/{id:<32} {per_iter:>12.2?}/iter ({} iters)",
            b.iters
        );
    }
}

/// Timing harness passed to the closure given to `bench_function`.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Times one call of `routine` per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        self.iters += 1;
        std::hint::black_box(out);
    }
}

/// Prevents the compiler from optimizing away a value, like `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a group of benchmark functions, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $( $bench(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
