//! Offline stand-in for [proptest](https://github.com/proptest-rs/proptest).
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of proptest's surface that the workspace uses: the `proptest!`
//! macro, `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`, integer/float
//! range strategies, `Just`, `any`, tuple strategies, and
//! `collection::vec`. Sampling is deterministic (seeded from the test name)
//! rather than adaptive.
//!
//! Unlike the original stub, failures **shrink**: when a sampled case fails,
//! the runner greedily walks [`Strategy::shrink`] candidates — binary search
//! toward the range start for numeric strategies, element removal plus
//! per-element shrinking for `collection::vec`, componentwise recursion for
//! tuples and `prop_oneof!` unions — and reports the *minimal* failing input
//! it converged on. Because sampling and shrinking are both deterministic,
//! the reported counterexample is identical on every run.

/// Deterministic random generation used to sample strategies.
pub mod test_runner {
    use std::fmt;

    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of sampled cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` sampled inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why one sampled case failed, mirroring
    /// `proptest::test_runner::TestCaseError` (the `Fail` half; this stub
    /// has no `Reject`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A case failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError(message.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// The result type of one property-test case body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// SplitMix64 generator, seeded deterministically per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name so every run is identical.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a float uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and the concrete strategies the tests use.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value` — and for walking a
    /// failing value toward a simpler one.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value using `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, most aggressive first.
        ///
        /// Every candidate must lie in this strategy's domain (so a shrunk
        /// counterexample is always an input the strategy could have
        /// produced). Returning an empty vector means `value` is already
        /// minimal. The default is no shrinking.
        fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
            let _ = value;
            Vec::new()
        }
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    assert!(width > 0, "empty range strategy");
                    (self.start as u64).wrapping_add(rng.next_u64() % width) as $t
                }

                /// Binary-search shrink toward the range start: candidates
                /// are `v - d` for a halving sequence of distances
                /// `d = v-start, (v-start)/2, ..., 1`. Each greedy step
                /// that accepts a candidate at least halves the gap to the
                /// true failure boundary, so the runner converges on the
                /// exact boundary in O(log²(width)) evaluations.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let v = *value;
                    if !self.contains(&v) || v == self.start {
                        return Vec::new();
                    }
                    let mut out = Vec::new();
                    let mut d = v - self.start;
                    while d > 0 {
                        out.push(v - d);
                        d /= 2;
                    }
                    out
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }

        /// Binary-search toward the range start via a halving sequence of
        /// distances, stopping once the step is negligible relative to the
        /// range width (floats would otherwise halve forever).
        fn shrink(&self, value: &f64) -> Vec<f64> {
            let v = *value;
            if !(v >= self.start && v < self.end) || v == self.start {
                return Vec::new();
            }
            let negligible = (self.end - self.start) * 1e-9;
            let mut out = Vec::new();
            let mut d = v - self.start;
            while d > negligible {
                out.push(v - d);
                d /= 2.0;
            }
            out
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }

                /// Componentwise recursion: shrink each position with the
                /// others held fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for candidate in self.$n.shrink(&value.$n) {
                            let mut next = value.clone();
                            next.$n = candidate;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Uniform choice between alternative strategies, built by `prop_oneof!`.
    #[derive(Debug, Clone)]
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Wraps a non-empty list of alternatives.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self(options)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }

        /// Union of every option's shrinks. Options are required to return
        /// only in-domain candidates (and nothing for foreign values), so
        /// delegating to all of them is safe even though the union does not
        /// remember which branch produced `value`.
        fn shrink(&self, value: &S::Value) -> Vec<S::Value> {
            let mut out = Vec::new();
            for option in &self.0 {
                out.extend(option.shrink(value));
            }
            out
        }
    }

    /// Strategy for any value of a type, built by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types that can be generated unconstrained.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Candidate simplifications of `value` (see [`Strategy::shrink`]).
        fn shrink_value(value: &Self) -> Vec<Self>
        where
            Self: Sized,
        {
            let _ = value;
            Vec::new()
        }
    }

    macro_rules! uint_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(value: &$t) -> Vec<$t> {
                    let v = *value;
                    let mut out = Vec::new();
                    let mut d = v;
                    while d > 0 {
                        out.push(v - d);
                        d /= 2;
                    }
                    out
                }
            }
        )+};
    }
    uint_arbitrary!(u8, u16, u32, u64, usize);

    macro_rules! sint_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(value: &$t) -> Vec<$t> {
                    let v = *value;
                    if v == 0 {
                        return Vec::new();
                    }
                    // Toward zero from either side.
                    let mut out = vec![0];
                    if v / 2 != 0 {
                        out.push(v / 2);
                    }
                    let step = if v > 0 { v - 1 } else { v + 1 };
                    if step != 0 && step != v / 2 {
                        out.push(step);
                    }
                    out
                }
            }
        )+};
    }
    sint_arbitrary!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(value: &bool) -> Vec<bool> {
            if *value {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            T::shrink_value(value)
        }
    }

    /// Returns the unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a vector strategy: each sampled vec has a length in `len` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.end > len.start, "empty vec-length range strategy");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }

        /// Element removal first (truncate to the minimum length, halve,
        /// then drop single elements), then per-element shrinking — the
        /// classic list-shrink order that converges on the single offending
        /// element, itself minimized.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let n = value.len();
            let min = self.len.start;
            if n > min {
                out.push(value[..min].to_vec());
                let half = min + (n - min) / 2;
                if half > min && half < n {
                    out.push(value[..half].to_vec());
                }
                for i in 0..n {
                    let mut next = value.clone();
                    next.remove(i);
                    out.push(next);
                }
            }
            for i in 0..n {
                for candidate in self.element.shrink(&value[i]) {
                    let mut next = value.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The property runner: sampling, failure detection and shrinking.
pub mod runner {
    use crate::strategy::Strategy;
    use crate::test_runner::{Config, TestCaseResult, TestRng};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Once;

    /// Total candidate evaluations a shrink search may spend. Generous —
    /// binary-search shrinks converge in tens of evaluations — but bounds
    /// pathological strategies.
    pub const SHRINK_BUDGET: usize = 4096;

    static SUPPRESSED: AtomicUsize = AtomicUsize::new(0);
    static HOOK: Once = Once::new();

    /// Silences the global panic hook while candidate cases run: shrinking
    /// deliberately evaluates hundreds of failing inputs, and each would
    /// otherwise print a full panic report. The hook delegates to the
    /// default one whenever no runner is active, so unrelated test panics
    /// keep their diagnostics.
    struct Quiet;

    impl Quiet {
        fn new() -> Self {
            HOOK.call_once(|| {
                let default = std::panic::take_hook();
                std::panic::set_hook(Box::new(move |info| {
                    if SUPPRESSED.load(Ordering::SeqCst) == 0 {
                        default(info);
                    }
                }));
            });
            SUPPRESSED.fetch_add(1, Ordering::SeqCst);
            Quiet
        }
    }

    impl Drop for Quiet {
        fn drop(&mut self) {
            SUPPRESSED.fetch_sub(1, Ordering::SeqCst);
        }
    }

    fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "test case panicked".to_string()
        }
    }

    /// Runs one candidate, converting both `prop_assert!` failures and
    /// plain panics (`assert!`, `unwrap`) into an error message.
    fn run_one<V>(test: &impl Fn(&V) -> TestCaseResult, value: &V) -> Result<(), String> {
        let _quiet = Quiet::new();
        match catch_unwind(AssertUnwindSafe(|| test(value))) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(e.to_string()),
            Err(payload) => Err(panic_message(payload)),
        }
    }

    /// A failing input after shrinking: the minimal counterexample the
    /// greedy search converged on.
    #[derive(Debug, Clone)]
    pub struct Shrunk<V> {
        /// The minimal failing value.
        pub value: V,
        /// The failure message the minimal value produced.
        pub message: String,
        /// How many accepted shrink steps led here (0 = the original
        /// sample was already minimal).
        pub shrink_steps: usize,
        /// Which sampled case (0-based) failed first.
        pub case: u32,
    }

    /// Samples `config.cases` inputs; on the first failure, greedily
    /// shrinks it to a minimal counterexample and returns it. `None`
    /// means every case passed.
    ///
    /// Deterministic end to end: sampling is seeded from `name` and the
    /// shrink walk has no randomness, so a failing property reports the
    /// same minimal counterexample on every run.
    pub fn find_minimal<S>(
        name: &str,
        config: Config,
        strategy: &S,
        test: impl Fn(&S::Value) -> TestCaseResult,
    ) -> Option<Shrunk<S::Value>>
    where
        S: Strategy,
        S::Value: Clone,
    {
        let mut rng = TestRng::deterministic(name);
        for case in 0..config.cases {
            let sampled = strategy.sample(&mut rng);
            let Err(first_message) = run_one(&test, &sampled) else {
                continue;
            };
            // Greedy descent: take the first candidate that still fails
            // and restart from it; stop at a fixpoint or on budget.
            let mut value = sampled;
            let mut message = first_message;
            let mut shrink_steps = 0;
            let mut budget = SHRINK_BUDGET;
            'descend: loop {
                for candidate in strategy.shrink(&value) {
                    if budget == 0 {
                        break 'descend;
                    }
                    budget -= 1;
                    if let Err(m) = run_one(&test, &candidate) {
                        value = candidate;
                        message = m;
                        shrink_steps += 1;
                        continue 'descend;
                    }
                }
                break;
            }
            return Some(Shrunk {
                value,
                message,
                shrink_steps,
                case,
            });
        }
        None
    }

    /// The `proptest!` entry point: panics with the minimal counterexample
    /// if any sampled case fails.
    pub fn run_property<S>(
        name: &str,
        config: Config,
        strategy: &S,
        test: impl Fn(&S::Value) -> TestCaseResult,
    ) where
        S: Strategy,
        S::Value: Clone + std::fmt::Debug,
    {
        if let Some(found) = find_minimal(name, config, strategy, &test) {
            panic!(
                "proptest `{name}` failed on case {}.\n\
                 Minimal counterexample (after {} shrink steps): {:?}\n{}",
                found.case, found.shrink_steps, found.value, found.message
            );
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::{TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test.
///
/// On failure the enclosing case returns an error (instead of panicking),
/// which lets the runner shrink the input before reporting.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", format_args!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a property test; fails the case (shrinking the
/// input) with both values on mismatch.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    left, right
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$a, &$b);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `(left == right)`: {}\n  left: `{:?}`\n right: `{:?}`",
                    format_args!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
///
/// Each declared function becomes a `#[test]` that samples its arguments
/// `config.cases` times from the given strategies and runs the body. A
/// failing case is shrunk to a minimal counterexample before the test
/// panics (see [`runner::run_property`]).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (
        #[test]
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            @cfg ($crate::test_runner::Config::default())
            #[test]
            $($rest)*
        }
    };
    (
        @cfg ($cfg:expr)
        $(
            #[test]
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let strategy = ( $( ($strategy), )+ );
                $crate::runner::run_property(
                    stringify!($name),
                    config,
                    &strategy,
                    |__uc_proptest_case: &_|
                        -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        let ( $( $arg, )+ ) = ::std::clone::Clone::clone(__uc_proptest_case);
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::runner::{find_minimal, Shrunk};
    use crate::test_runner::{Config, TestCaseError};

    fn fail_if<V>(pred: impl Fn(&V) -> bool) -> impl Fn(&V) -> Result<(), TestCaseError> {
        move |v| {
            if pred(v) {
                Err(TestCaseError::fail("predicate violated"))
            } else {
                Ok(())
            }
        }
    }

    /// The documented shrink regression: `x in 0..100_000` failing
    /// whenever `x >= 1000` must report exactly `1000` — the known-minimal
    /// counterexample — and do so deterministically.
    #[test]
    fn integer_range_shrinks_to_the_exact_boundary() {
        let run = || {
            find_minimal(
                "integer_boundary",
                Config::with_cases(64),
                &(0u64..100_000),
                fail_if(|&v: &u64| v >= 1000),
            )
            .expect("the predicate fails well inside 64 cases")
        };
        let first = run();
        assert_eq!(first.value, 1000, "binary search lands on the boundary");
        assert!(first.shrink_steps > 0, "the raw sample was not minimal");
        // Determinism: an identical invocation reports the identical
        // counterexample by the identical path.
        let second = run();
        assert_eq!(second.value, first.value);
        assert_eq!(second.shrink_steps, first.shrink_steps);
        assert_eq!(second.case, first.case);
    }

    /// Vector shrink: removal strips every innocent element, then the
    /// per-element pass minimizes the single offender — `[10]` exactly.
    #[test]
    fn vec_shrinks_to_single_minimal_offender() {
        let found: Shrunk<Vec<u64>> = find_minimal(
            "vec_offender",
            Config::with_cases(64),
            &crate::collection::vec(0u64..100, 0..10),
            fail_if(|v: &Vec<u64>| v.iter().any(|&x| x >= 10)),
        )
        .expect("some sampled vec contains an element >= 10");
        assert_eq!(found.value, vec![10]);
    }

    /// Tuple shrink recurses componentwise: with independent failure
    /// conditions per component, the survivor shrinks to its boundary and
    /// the innocent component shrinks all the way to the range start.
    #[test]
    fn tuple_shrinks_componentwise_to_a_known_minimal() {
        let found = find_minimal(
            "tuple_components",
            Config::with_cases(64),
            &(0u64..1000, 0u64..1000),
            fail_if(|&(a, b): &(u64, u64)| a >= 500 || b >= 700),
        )
        .expect("some sampled pair trips one of the conditions");
        assert!(
            found.value == (500, 0) || found.value == (0, 700),
            "minimal must isolate one boundary, got {:?}",
            found.value
        );
        let again = find_minimal(
            "tuple_components",
            Config::with_cases(64),
            &(0u64..1000, 0u64..1000),
            fail_if(|&(a, b): &(u64, u64)| a >= 500 || b >= 700),
        )
        .unwrap();
        assert_eq!(again.value, found.value, "deterministic");
    }

    /// `prop_oneof!` shrink candidates stay inside the branch domains: a
    /// value from the high branch can never shrink below that branch's
    /// start.
    #[test]
    fn union_shrinks_within_branch_domains() {
        let strategy = crate::prop_oneof![0u64..10, 100u64..200];
        let found = find_minimal(
            "union_domains",
            Config::with_cases(64),
            &strategy,
            fail_if(|&v: &u64| v >= 5),
        )
        .expect("every high-branch sample fails");
        assert!(
            found.value == 5 || found.value == 100,
            "minimal must be a branch-local boundary, got {}",
            found.value
        );
    }

    /// Plain panics (`assert!`, `unwrap`) inside the case body are caught
    /// and shrunk exactly like `prop_assert!` failures.
    #[test]
    fn panicking_bodies_are_caught_and_shrunk() {
        let found = find_minimal(
            "panic_capture",
            Config::with_cases(64),
            &(0u64..100_000),
            |&v: &u64| {
                assert!(v < 1000, "boom at {v}");
                Ok(())
            },
        )
        .expect("assert fires inside 64 cases");
        assert_eq!(found.value, 1000);
        assert!(found.message.contains("boom at 1000"));
    }

    #[test]
    fn passing_properties_find_no_counterexample() {
        assert!(find_minimal(
            "all_pass",
            Config::with_cases(64),
            &(0u64..100),
            fail_if(|_: &u64| false),
        )
        .is_none());
    }

    /// Float ranges shrink toward the start without looping forever.
    #[test]
    fn float_range_shrinks_toward_start() {
        let found = find_minimal(
            "float_boundary",
            Config::with_cases(64),
            &(0.0f64..1000.0),
            fail_if(|&v: &f64| v >= 250.0),
        )
        .expect("some sample exceeds 250");
        assert!(found.value >= 250.0, "counterexample still fails");
        assert!(found.value < 250.0 + 1e-3, "and is near-minimal");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        // The macro surface still works end to end on a passing property.
        #[test]
        fn macro_surface_round_trips(
            v in crate::collection::vec((0u64..50, 0u8..2), 0..8),
            x in 1u64..100,
        ) {
            prop_assert!(x >= 1);
            prop_assert!(v.len() < 8, "length {} in range", v.len());
            let doubled: Vec<u64> = v.iter().map(|&(a, _)| a * 2).collect();
            prop_assert_eq!(doubled.len(), v.len());
        }
    }
}
