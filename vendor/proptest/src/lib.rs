//! Offline stand-in for [proptest](https://github.com/proptest-rs/proptest).
//!
//! The build container has no crates.io access, so this crate implements the
//! subset of proptest's surface that `tests/proptests.rs` uses: the
//! `proptest!` macro, `prop_assert!` / `prop_assert_eq!` / `prop_oneof!`,
//! integer/float range strategies, `Just`, `any`, tuple strategies, and
//! `collection::vec`. Sampling is deterministic (seeded from the test name)
//! rather than adaptive, and failures panic immediately instead of
//! shrinking — good enough to exercise the same invariants reproducibly.

/// Deterministic random generation used to sample strategies.
pub mod test_runner {
    /// Runner configuration, mirroring `proptest::test_runner::Config`.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of sampled cases each property test runs.
        pub cases: u32,
    }

    impl Config {
        /// Builds a config running `cases` sampled inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// SplitMix64 generator, seeded deterministically per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the generator from a test name so every run is identical.
        pub fn deterministic(name: &str) -> Self {
            let mut seed = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self { state: seed }
        }

        /// Returns the next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Returns a float uniform in `[0, 1)`.
        pub fn next_unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// Strategy trait and the concrete strategies the tests use.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;
        /// Draws one value using `rng`.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy that always yields a clone of the given value.
    #[derive(Debug, Clone, Copy)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let width = (self.end as u64).wrapping_sub(self.start as u64);
                    assert!(width > 0, "empty range strategy");
                    (self.start as u64).wrapping_add(rng.next_u64() % width) as $t
                }
            }
        )+};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.next_unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! tuple_strategy {
        ($(($($n:tt $s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
    }

    /// Uniform choice between alternative strategies, built by `prop_oneof!`.
    #[derive(Debug, Clone)]
    pub struct Union<S>(Vec<S>);

    impl<S: Strategy> Union<S> {
        /// Wraps a non-empty list of alternatives.
        pub fn new(options: Vec<S>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Self(options)
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> S::Value {
            let i = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[i].sample(rng)
        }
    }

    /// Strategy for any value of a type, built by [`any`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    /// Types that can be generated unconstrained.
    pub trait Arbitrary {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the unconstrained strategy for `T`, mirroring `proptest::prelude::any`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Builds a vector strategy: each sampled vec has a length in `len` and
    /// elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.end > len.start, "empty vec-length range strategy");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % width) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The usual glob import, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
}

/// Asserts a condition inside a property test; panics with context on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property test; panics with both values on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Uniform choice among strategies, mirroring `proptest::prop_oneof!`.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($strategy),+])
    };
}

/// Declares deterministic property tests, mirroring `proptest::proptest!`.
///
/// Each declared function becomes a `#[test]` that samples its arguments
/// `config.cases` times from the given strategies and runs the body.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (
        #[test]
        $($rest:tt)*
    ) => {
        $crate::proptest! {
            @cfg ($crate::test_runner::Config::default())
            #[test]
            $($rest)*
        }
    };
    (
        @cfg ($cfg:expr)
        $(
            #[test]
            fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for _case in 0..config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strategy), &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
}
