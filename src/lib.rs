//! # unwritten-contract
//!
//! A full reproduction of *"The Unwritten Contract of Cloud-based Elastic
//! Solid-State Drives"* (DAC 2025) as a Rust workspace: a deterministic
//! simulation of the paper's three devices (a local NVMe SSD with a real
//! FTL, and two cloud elastic SSDs backed by a replicated, disaggregated
//! storage cluster), the FIO-like workload harness that characterizes
//! them, runners for every table and figure in the paper, and the
//! unwritten contract itself as a checkable artifact.
//!
//! This crate is the facade: it re-exports every workspace crate under one
//! roof and provides a [`prelude`] for the common types.
//!
//! ## Quick start
//!
//! ```
//! use unwritten_contract::prelude::*;
//!
//! // Build the paper's two device classes at simulation scale.
//! let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
//! let mut essd = Essd::new(EssdConfig::aws_io2(256 << 20));
//!
//! // Run the same FIO-style job on both.
//! let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 1).with_io_limit(200);
//! let ssd_report = run_job(&mut ssd, &spec)?;
//! let essd_report = run_job(&mut essd, &spec)?;
//!
//! // Observation 1: the cloud device pays a large small-I/O penalty.
//! // (The calibrated floors live in `core::contract::thresholds`.)
//! use unwritten_contract::core::contract::thresholds::OBS1_SINGLE_CELL_GAP_FLOOR;
//! let gap = essd_report.latency.mean().as_micros_f64()
//!     / ssd_report.latency.mean().as_micros_f64();
//! assert!(gap > OBS1_SINGLE_CELL_GAP_FLOOR);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`persist`] | versioned binary checkpoint codec (magic, version, checksum records) |
//! | [`sim`] | virtual clock, RNG, distributions, resources, token buckets |
//! | [`metrics`] | latency histograms, throughput timelines, summary stats |
//! | [`blockdev`] | the `BlockDevice` abstraction, queue-pair batching (`IoBatch`/`Completion`), `DeviceFactory` seam, `CheckpointDevice` snapshot/restore seam |
//! | [`flash`] | NAND geometry/timing and die/channel scheduling |
//! | [`ftl`] | page-mapping FTL with garbage collection |
//! | [`invariant`] | the `Contract` trait, structured `Violation` reports, `strict-invariants` enforcement hooks |
//! | [`obs`] | deterministic telemetry: `MetricsRegistry`, flight recorder, `uc.obs.v1` snapshots, Prometheus rendering |
//! | [`ssd`] | the local-SSD device model (Samsung 970 Pro profile) |
//! | [`net`] | datacenter fabric + host stack model |
//! | [`cluster`] | chunked, replicated storage cluster |
//! | [`essd`] | the elastic-SSD device model (AWS io2 / Alibaba PL3) |
//! | [`workload`] | FIO-like jobs, queue-pair batched drivers, trace replay |
//! | [`trace`] | trace capture (`TraceRecorder`), the `uc.trace.v1` binary format, arrival-shape generators |
//! | [`fleet`] | multi-tenant fleets: placement, shared-device interleaving, interference metrics, checkpoint-seam rebalancing |
//! | [`serve`] | the served frontend: `uc.wire.v2` resumable multi-lane sessions, the single-thread readiness event loop (`serve_events`), the `ServePool` lanes with backpressure, the `WireClient`/`RemoteDevice` clients |
//! | [`core`] | experiments (parallel cell executor), contract checker, implication advisors |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use uc_blockdev as blockdev;
pub use uc_cluster as cluster;
pub use uc_core as core;
pub use uc_essd as essd;
pub use uc_flash as flash;
pub use uc_fleet as fleet;
pub use uc_ftl as ftl;
pub use uc_invariant as invariant;
pub use uc_metrics as metrics;
pub use uc_net as net;
pub use uc_obs as obs;
pub use uc_persist as persist;
pub use uc_serve as serve;
pub use uc_sim as sim;
pub use uc_ssd as ssd;
pub use uc_trace as trace;
pub use uc_workload as workload;

/// The types most programs need, in one import.
pub mod prelude {
    pub use uc_blockdev::{
        BlockDevice, CheckpointDevice, CheckpointError, Completion, DeviceCheckpoint,
        DeviceFactory, DeviceInfo, IoBatch, IoError, IoKind, IoRequest,
    };
    pub use uc_core::contract::{check_all, ContractInputs, ContractReport};
    pub use uc_core::devices::{DeviceKind, DeviceRoster};
    pub use uc_core::experiments::Executor;
    pub use uc_essd::{Essd, EssdConfig};
    pub use uc_fleet::{FleetConfig, FleetSim, RebalancePolicy, ShapeMix};
    pub use uc_invariant::{Contract, Violation};
    pub use uc_metrics::{LatencyHistogram, Series, SummaryStats, ThroughputTracker};
    pub use uc_obs::{FlightRecorder, MetricsRegistry, ObsReport, ObsSnapshot};
    pub use uc_sim::{LatencyDist, SimDuration, SimRng, SimTime};
    pub use uc_ssd::{Ssd, SsdConfig};
    pub use uc_trace::{TraceRecorder, TraceSpec};
    pub use uc_workload::{
        replay_with, run_job, run_open_loop, AccessPattern, ClosedLoopJob, JobReport, JobSpec,
        ReplayConfig, Trace,
    };
}
