//! Deterministic chunk placement.

/// Stripes a virtual byte range into chunks and places each chunk's
/// replicas on distinct nodes.
///
/// Placement is a pure function of `(chunk, seed)`: no state is stored, so
/// maps are cheap for arbitrarily large virtual disks and reproducible
/// across runs. The placement hash spreads consecutive chunks across
/// unrelated node sets, which is what gives *random* writes their backend
/// parallelism advantage over a chunk-bound sequential stream
/// (Observation 3 of the paper).
///
/// # Example
///
/// ```
/// use uc_cluster::ChunkMap;
///
/// let map = ChunkMap::new(1 << 20, 12, 3, 42);
/// let replicas = map.replicas(7);
/// assert_eq!(replicas.len(), 3);
/// // Replicas are distinct nodes.
/// assert!(replicas[0] != replicas[1] && replicas[1] != replicas[2]);
/// // Placement is deterministic.
/// assert_eq!(replicas, map.replicas(7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkMap {
    chunk_bytes: u64,
    nodes: usize,
    replication: usize,
    seed: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ChunkMap {
    /// A map with the given striping granularity and placement parameters.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_bytes == 0`, `nodes == 0`, or `replication` is not
    /// in `[1, nodes]`.
    pub fn new(chunk_bytes: u64, nodes: usize, replication: usize, seed: u64) -> Self {
        assert!(chunk_bytes > 0, "chunk size must be positive");
        assert!(nodes > 0, "node count must be positive");
        assert!(
            (1..=nodes).contains(&replication),
            "replication must be in [1, nodes]"
        );
        ChunkMap {
            chunk_bytes,
            nodes,
            replication,
            seed,
        }
    }

    /// Striping granularity in bytes.
    pub fn chunk_bytes(&self) -> u64 {
        self.chunk_bytes
    }

    /// The chunk containing byte `offset`.
    pub fn chunk_of(&self, offset: u64) -> u64 {
        offset / self.chunk_bytes
    }

    /// The distinct nodes holding `chunk`, primary first.
    pub fn replicas(&self, chunk: u64) -> Vec<usize> {
        let mut picked = Vec::with_capacity(self.replication);
        let mut state = splitmix64(chunk ^ self.seed);
        while picked.len() < self.replication {
            state = splitmix64(state);
            let node = (state % self.nodes as u64) as usize;
            if !picked.contains(&node) {
                picked.push(node);
            }
        }
        picked
    }

    /// Splits the byte range `[offset, offset + len)` at chunk boundaries,
    /// yielding `(chunk, fragment_len)` pairs in address order.
    pub fn fragments(&self, offset: u64, len: u32) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        let mut cur = offset;
        let end = offset + len as u64;
        while cur < end {
            let chunk = self.chunk_of(cur);
            let chunk_end = (chunk + 1) * self.chunk_bytes;
            let frag = chunk_end.min(end) - cur;
            out.push((chunk, frag as u32));
            cur += frag;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn replicas_are_distinct_and_stable() {
        let map = ChunkMap::new(1 << 20, 10, 3, 9);
        for chunk in 0..100 {
            let r = map.replicas(chunk);
            assert_eq!(r.len(), 3);
            let mut sorted = r.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "chunk {chunk}: duplicate replica");
            assert_eq!(r, map.replicas(chunk));
        }
    }

    #[test]
    fn placement_is_balanced() {
        let map = ChunkMap::new(1 << 20, 8, 3, 1);
        let mut load: HashMap<usize, usize> = HashMap::new();
        let chunks = 4000;
        for c in 0..chunks {
            for n in map.replicas(c) {
                *load.entry(n).or_default() += 1;
            }
        }
        let expected = chunks as usize * 3 / 8;
        for n in 0..8 {
            let l = load.get(&n).copied().unwrap_or(0);
            assert!(
                (l as i64 - expected as i64).unsigned_abs() < (expected / 5) as u64,
                "node {n} holds {l} of ~{expected}"
            );
        }
    }

    #[test]
    fn consecutive_chunks_get_different_primaries() {
        let map = ChunkMap::new(1 << 20, 16, 3, 5);
        let primaries: Vec<usize> = (0..32).map(|c| map.replicas(c)[0]).collect();
        let distinct: std::collections::HashSet<_> = primaries.iter().collect();
        assert!(
            distinct.len() > 8,
            "placement should spread consecutive chunks, got {distinct:?}"
        );
    }

    #[test]
    fn fragments_cover_range_exactly() {
        let map = ChunkMap::new(64 << 10, 4, 2, 0);
        let frags = map.fragments(32 << 10, 160 << 10);
        let total: u64 = frags.iter().map(|&(_, l)| l as u64).sum();
        assert_eq!(total, 160 << 10);
        assert_eq!(frags[0], (0, 32 << 10));
        assert_eq!(frags[1], (1, 64 << 10));
        assert_eq!(frags[2], (2, 64 << 10));
        assert_eq!(frags.len(), 3);
    }

    #[test]
    fn aligned_request_is_single_fragment() {
        let map = ChunkMap::new(1 << 20, 4, 2, 0);
        let frags = map.fragments(5 << 20, 4096);
        assert_eq!(frags, vec![(5, 4096)]);
    }

    #[test]
    fn full_replication_uses_every_node() {
        let map = ChunkMap::new(1 << 20, 3, 3, 7);
        let mut r = map.replicas(11);
        r.sort_unstable();
        assert_eq!(r, vec![0, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn bad_replication_panics() {
        let _ = ChunkMap::new(1 << 20, 2, 3, 0);
    }
}
