//! Storage node service model.

use std::collections::HashMap;
use uc_flash::{DiePool, DiePoolSnapshot, FlashTiming};
use uc_sim::{LatencyDist, Resource, ResourceSnapshot, SimDuration, SimRng, SimTime};

/// Parameters of a [`StorageNode`].
///
/// The two cost knobs that shape the paper's observations:
///
/// * `stream_bytes_per_sec` — each *chunk* is served by one lane at this
///   bandwidth, so a single sequential stream cannot exceed it no matter
///   the tenant's budget (Observation 3),
/// * `staged_ack` — writes acknowledge from NVRAM/DRAM staging; flash
///   programs (and any backend GC they imply) happen off the critical
///   path, which is why device-side GC never surfaces to the tenant
///   (Observation 2).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeConfig {
    /// Serialized per-fragment cost on the chunk lane (request framing);
    /// together with the lane transfer time this sets the per-chunk
    /// operation rate.
    pub lane_header: LatencyDist,
    /// Per-fragment processing latency off the serial path (index lookup,
    /// checksums) — adds latency but not chunk-lane occupancy.
    pub per_io: LatencyDist,
    /// Per-chunk service bandwidth in bytes/second.
    pub stream_bytes_per_sec: f64,
    /// Extra latency of the staging/NVRAM acknowledgement for writes.
    pub staged_ack: LatencyDist,
    /// One backend-fabric hop, paid by non-primary replicas.
    pub replica_hop: LatencyDist,
    /// Flash dies in the node's read pool.
    pub flash_dies: usize,
    /// NAND timing of the node's drives.
    pub flash_timing: FlashTiming,
    /// Flash page size in bytes.
    pub flash_page: u32,
}

impl Default for NodeConfig {
    /// A mid-range storage server: 25 µs per-fragment cost, 1 GB/s chunk
    /// lanes, 15 µs staged acks, 64-die flash pool with MLC timing.
    fn default() -> Self {
        NodeConfig {
            lane_header: LatencyDist::normal(
                SimDuration::from_micros(5),
                SimDuration::from_nanos(500),
            ),
            per_io: LatencyDist::normal(SimDuration::from_micros(25), SimDuration::from_micros(3)),
            stream_bytes_per_sec: 1.0e9,
            staged_ack: LatencyDist::normal(
                SimDuration::from_micros(15),
                SimDuration::from_micros(2),
            ),
            replica_hop: LatencyDist::normal(
                SimDuration::from_micros(20),
                SimDuration::from_micros(3),
            ),
            flash_dies: 64,
            flash_timing: FlashTiming::mlc(),
            flash_page: 4096,
        }
    }
}

impl NodeConfig {
    /// Replaces the per-chunk stream bandwidth.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn with_stream_bandwidth(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "stream bandwidth must be positive"
        );
        self.stream_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Replaces the off-lane per-fragment processing latency.
    pub fn with_per_io(mut self, dist: LatencyDist) -> Self {
        self.per_io = dist;
        self
    }

    /// Replaces the serialized lane header cost.
    pub fn with_lane_header(mut self, dist: LatencyDist) -> Self {
        self.lane_header = dist;
        self
    }

    /// Replaces the flash pool (die count and timing).
    pub fn with_flash(mut self, dies: usize, timing: FlashTiming, page: u32) -> Self {
        self.flash_dies = dies.max(1);
        self.flash_timing = timing;
        self.flash_page = page.max(512);
        self
    }
}

/// Cumulative counters for one [`StorageNode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NodeStats {
    /// Write fragments staged.
    pub writes: u64,
    /// Read fragments served.
    pub reads: u64,
    /// Bytes staged for write.
    pub bytes_written: u64,
    /// Bytes read from flash.
    pub bytes_read: u64,
}

/// One storage server in the cluster.
///
/// Serving model:
///
/// * every fragment *occupies* the lane of its chunk for
///   `lane_header + bytes/stream` — this per-chunk FIFO occupancy is what
///   caps a single sequential stream (Observation 3),
/// * the fragment's own completion *overlaps* the stream: a write
///   acknowledges after `lane_header + per_io + staged_ack` once its lane
///   slot starts (data is staged as it arrives); a read is ready after
///   `lane_header + per_io + flash`, with the outbound transfer charged by
///   the network layer,
/// * flash programs happen off the critical path on the node's die pool
///   and only contend with reads (Observation 2's provider-side GC
///   absorption).
#[derive(Debug, Clone)]
pub struct StorageNode {
    config: NodeConfig,
    lanes: HashMap<u64, Resource>,
    flash: DiePool,
    stats: NodeStats,
}

impl StorageNode {
    /// An idle node.
    pub fn new(config: NodeConfig) -> Self {
        StorageNode {
            flash: DiePool::new(config.flash_dies, config.flash_timing, config.flash_page),
            lanes: HashMap::new(),
            stats: NodeStats::default(),
            config,
        }
    }

    /// This node's counters.
    pub fn stats(&self) -> NodeStats {
        self.stats
    }

    /// Stages a write fragment of `len` bytes belonging to `chunk`;
    /// returns the acknowledgement instant.
    pub fn write(&mut self, now: SimTime, chunk: u64, len: u32, rng: &mut SimRng) -> SimTime {
        let header = self.config.lane_header.sample(rng);
        let occupancy = header + self.transfer_time(len);
        let lane = self.lanes.entry(chunk).or_default();
        let (start, _) = lane.acquire(now, occupancy);
        // The ack pipelines with the inbound stream: it leaves once the
        // lane slot starts and the header + lookup are done.
        let staged = start + header + self.config.per_io.sample(rng);
        // Flash program happens asynchronously after staging; it only
        // contends with reads on the die pool, never delays the ack.
        self.flash.program(staged, len);
        self.stats.writes += 1;
        self.stats.bytes_written += len as u64;
        staged + self.config.staged_ack.sample(rng)
    }

    /// Serves a read fragment of `len` bytes belonging to `chunk`; returns
    /// when the data is ready to start streaming back (the outbound
    /// transfer itself is the network layer's job and overlaps this).
    pub fn read(&mut self, now: SimTime, chunk: u64, len: u32, rng: &mut SimRng) -> SimTime {
        let header = self.config.lane_header.sample(rng);
        let occupancy = header + self.transfer_time(len);
        let (start, _) = self.lanes.entry(chunk).or_default().acquire(now, occupancy);
        let parsed = start + header + self.config.per_io.sample(rng);
        let fetched = self.flash.read(parsed, len);
        self.stats.reads += 1;
        self.stats.bytes_read += len as u64;
        fetched
    }

    fn transfer_time(&self, len: u32) -> SimDuration {
        SimDuration::from_secs_f64(len as f64 / self.config.stream_bytes_per_sec)
    }

    /// Captures the node's complete state.
    pub fn snapshot(&self) -> StorageNodeSnapshot {
        let mut lanes: Vec<(u64, ResourceSnapshot)> = self
            .lanes
            .iter()
            .map(|(&chunk, lane)| (chunk, lane.snapshot()))
            .collect();
        lanes.sort_unstable_by_key(|&(chunk, _)| chunk);
        StorageNodeSnapshot {
            config: self.config.clone(),
            lanes,
            flash: self.flash.snapshot(),
            stats: self.stats,
        }
    }

    /// Rebuilds a node that continues exactly where `snapshot` was taken.
    pub fn restore(snapshot: StorageNodeSnapshot) -> Self {
        #[cfg(feature = "strict-invariants")]
        let expected = snapshot.clone();
        let restored = StorageNode {
            config: snapshot.config,
            lanes: snapshot
                .lanes
                .into_iter()
                .map(|(chunk, lane)| (chunk, Resource::restore(lane)))
                .collect(),
            flash: DiePool::restore(snapshot.flash),
            stats: snapshot.stats,
        };
        // Contract hook (deep): thaw(freeze(n)) is observationally exact.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-cluster/StorageNode",
                    "thaw-freeze-exact",
                    "re-freezing the restored node does not reproduce its snapshot",
                ));
            }
            Ok(())
        });
        restored
    }
}

/// The complete serializable state of a [`StorageNode`].
///
/// Chunk lanes (a hash map inside the live node) are stored sorted by
/// chunk id — the canonical form — so two snapshots of behaviourally
/// identical nodes compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct StorageNodeSnapshot {
    /// The node's service parameters.
    pub config: NodeConfig,
    /// Per-chunk lane timelines as `(chunk, lane)`, sorted by chunk id.
    pub lanes: Vec<(u64, ResourceSnapshot)>,
    /// The flash read/program pool.
    pub flash: DiePoolSnapshot,
    /// Cumulative counters.
    pub stats: NodeStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> StorageNode {
        StorageNode::new(NodeConfig::default())
    }

    #[test]
    fn write_ack_is_staging_fast() {
        let mut n = node();
        let mut rng = SimRng::new(1);
        let ack = n.write(SimTime::ZERO, 0, 4096, &mut rng);
        let us = (ack - SimTime::ZERO).as_micros_f64();
        // per_io ~25 + transfer ~4 + ack ~15: well under one NAND program.
        assert!(us < 100.0, "staged ack took {us} us");
    }

    #[test]
    fn read_pays_flash_sense() {
        let mut n = node();
        let mut rng = SimRng::new(2);
        let done = n.read(SimTime::ZERO, 0, 4096, &mut rng);
        let us = (done - SimTime::ZERO).as_micros_f64();
        assert!(us > 50.0, "flash read should cost a sense, got {us} us");
    }

    #[test]
    fn same_chunk_serializes_different_chunks_do_not() {
        let mut n = node();
        let mut rng = SimRng::new(3);
        let big = 1 << 20;
        let a = n.write(SimTime::ZERO, 0, big, &mut rng);
        let b = n.write(SimTime::ZERO, 0, big, &mut rng);
        assert!(
            (b - SimTime::ZERO).as_secs_f64() > 1.8 * (a - SimTime::ZERO).as_secs_f64(),
            "same-chunk writes must queue"
        );
        let mut n2 = node();
        let c = n2.write(SimTime::ZERO, 0, big, &mut rng);
        let d = n2.write(SimTime::ZERO, 1, big, &mut rng);
        let spread = (d - SimTime::ZERO)
            .as_secs_f64()
            .max((c - SimTime::ZERO).as_secs_f64());
        assert!(
            spread < 1.5 * (c - SimTime::ZERO).as_secs_f64(),
            "different chunks should be parallel"
        );
    }

    #[test]
    fn background_programs_contend_with_reads() {
        // Saturate the die pool with staged writes, then read: the read
        // queues behind the programs.
        let cfg = NodeConfig::default().with_flash(1, FlashTiming::mlc(), 4096);
        let mut n = StorageNode::new(cfg);
        let mut rng = SimRng::new(4);
        let baseline = {
            let mut fresh =
                StorageNode::new(NodeConfig::default().with_flash(1, FlashTiming::mlc(), 4096));
            fresh.read(SimTime::ZERO, 9, 4096, &mut rng) - SimTime::ZERO
        };
        for i in 0..8 {
            n.write(SimTime::ZERO, i, 64 << 10, &mut rng);
        }
        let slowed = n.read(SimTime::ZERO, 9, 4096, &mut rng) - SimTime::ZERO;
        assert!(
            slowed > baseline,
            "read behind programs ({slowed}) should exceed clean read ({baseline})"
        );
    }

    #[test]
    fn stats_track_bytes() {
        let mut n = node();
        let mut rng = SimRng::new(5);
        n.write(SimTime::ZERO, 0, 4096, &mut rng);
        n.read(SimTime::ZERO, 0, 8192, &mut rng);
        assert_eq!(n.stats().writes, 1);
        assert_eq!(n.stats().reads, 1);
        assert_eq!(n.stats().bytes_written, 4096);
        assert_eq!(n.stats().bytes_read, 8192);
    }
}
