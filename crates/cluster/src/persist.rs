//! [`Persist`] codecs for the storage-cluster snapshot types.
//!
//! The chunk map is not serialized: placement is a pure function of the
//! configuration (including its placement seed), so
//! [`Cluster::restore`](crate::Cluster::restore) rebuilds it
//! deterministically — the on-disk form only carries what cannot be
//! recomputed.

use crate::{
    ClusterConfig, ClusterSnapshot, ClusterStats, NodeConfig, NodeStats, StorageNodeSnapshot,
};
use uc_flash::{DiePoolSnapshot, FlashTiming};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{LatencyDist, ResourceSnapshot};

impl Persist for NodeConfig {
    fn encode(&self, w: &mut Encoder) {
        self.lane_header.encode(w);
        self.per_io.encode(w);
        w.put_f64(self.stream_bytes_per_sec);
        self.staged_ack.encode(w);
        self.replica_hop.encode(w);
        self.flash_dies.encode(w);
        self.flash_timing.encode(w);
        w.put_u32(self.flash_page);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = NodeConfig {
            lane_header: LatencyDist::decode(r)?,
            per_io: LatencyDist::decode(r)?,
            stream_bytes_per_sec: r.get_f64()?,
            staged_ack: LatencyDist::decode(r)?,
            replica_hop: LatencyDist::decode(r)?,
            flash_dies: usize::decode(r)?,
            flash_timing: FlashTiming::decode(r)?,
            flash_page: r.get_u32()?,
        };
        if !(config.stream_bytes_per_sec > 0.0 && config.stream_bytes_per_sec.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "NodeConfig.stream_bytes_per_sec",
            });
        }
        if config.flash_dies == 0 {
            return Err(DecodeError::InvalidValue {
                what: "NodeConfig.flash_dies",
            });
        }
        Ok(config)
    }
}

impl Persist for NodeStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.writes);
        w.put_u64(self.reads);
        w.put_u64(self.bytes_written);
        w.put_u64(self.bytes_read);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(NodeStats {
            writes: r.get_u64()?,
            reads: r.get_u64()?,
            bytes_written: r.get_u64()?,
            bytes_read: r.get_u64()?,
        })
    }
}

impl Persist for StorageNodeSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.lanes.encode(w);
        self.flash.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(StorageNodeSnapshot {
            config: NodeConfig::decode(r)?,
            lanes: Vec::<(u64, ResourceSnapshot)>::decode(r)?,
            flash: DiePoolSnapshot::decode(r)?,
            stats: NodeStats::decode(r)?,
        })
    }
}

impl Persist for ClusterConfig {
    fn encode(&self, w: &mut Encoder) {
        self.nodes.encode(w);
        self.replication.encode(w);
        w.put_u64(self.chunk_bytes);
        w.put_u64(self.capacity);
        self.node.encode(w);
        w.put_u64(self.placement_seed);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = ClusterConfig {
            nodes: usize::decode(r)?,
            replication: usize::decode(r)?,
            chunk_bytes: r.get_u64()?,
            capacity: r.get_u64()?,
            node: NodeConfig::decode(r)?,
            placement_seed: r.get_u64()?,
        };
        // `Cluster::new`/`restore` assert these; reject here instead.
        if config.nodes == 0 || !(1..=config.nodes).contains(&config.replication) {
            return Err(DecodeError::InvalidValue {
                what: "ClusterConfig.replication",
            });
        }
        if config.chunk_bytes == 0 {
            return Err(DecodeError::InvalidValue {
                what: "ClusterConfig.chunk_bytes",
            });
        }
        Ok(config)
    }
}

impl Persist for ClusterStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.write_fragments);
        w.put_u64(self.read_fragments);
        w.put_u64(self.bytes_written);
        w.put_u64(self.bytes_read);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ClusterStats {
            write_fragments: r.get_u64()?,
            read_fragments: r.get_u64()?,
            bytes_written: r.get_u64()?,
            bytes_read: r.get_u64()?,
        })
    }
}

impl Persist for ClusterSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.nodes.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = ClusterSnapshot {
            config: ClusterConfig::decode(r)?,
            nodes: Vec::<StorageNodeSnapshot>::decode(r)?,
            stats: ClusterStats::decode(r)?,
        };
        // `Cluster::restore` panics on this mismatch; fail typed instead.
        if snapshot.nodes.len() != snapshot.config.nodes {
            return Err(DecodeError::InvalidValue {
                what: "ClusterSnapshot.nodes",
            });
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Cluster;
    use uc_sim::{SimRng, SimTime};

    fn busy_cluster() -> Cluster {
        let mut cluster = Cluster::new(ClusterConfig::small(1 << 30));
        let mut rng = SimRng::new(11);
        for i in 0..24u64 {
            cluster.write(SimTime::ZERO, i * (8 << 20), 64 << 10, &mut rng);
            cluster.read(SimTime::ZERO, i * (4 << 20), 4096, &mut rng);
        }
        cluster
    }

    #[test]
    fn busy_cluster_round_trips_and_restores() {
        let cluster = busy_cluster();
        let snapshot = cluster.snapshot();
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = ClusterSnapshot::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, snapshot);
        let restored = Cluster::restore(back);
        assert_eq!(restored.stats(), cluster.stats());
        assert_eq!(restored.node_stats(), cluster.node_stats());
    }

    #[test]
    fn node_count_mismatch_is_typed() {
        let mut snapshot = busy_cluster().snapshot();
        snapshot.nodes.pop();
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            ClusterSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "ClusterSnapshot.nodes"
            })
        );
    }

    #[test]
    fn invalid_replication_is_typed() {
        let mut snapshot = busy_cluster().snapshot();
        snapshot.config.replication = 0;
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            ClusterSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "ClusterConfig.replication"
            })
        );
    }
}
