//! Disaggregated storage cluster model.
//!
//! In elastic block storage "the physical storage space of an ESSD is
//! distributed and replicated (e.g., three-way) across different nodes and
//! SSDs in the storage cluster" (paper §II-C, Figure 1). This crate models
//! that backend:
//!
//! * [`ChunkMap`] — deterministic striping of the virtual address space
//!   into fixed-size chunks, each placed on `replication` distinct nodes,
//! * [`StorageNode`] — a storage server: per-chunk service lanes (the
//!   serialization that caps a *single sequential stream*, Observation 3),
//!   a staging/NVRAM write ack path (why backend GC stays invisible,
//!   Observation 2), and a large flash pool for reads,
//! * [`Cluster`] — fans writes out to all replicas (completion = slowest
//!   replica) and reads from one replica.
//!
//! # Example
//!
//! ```
//! use uc_cluster::{Cluster, ClusterConfig};
//! use uc_sim::{SimRng, SimTime};
//!
//! let mut cluster = Cluster::new(ClusterConfig::small(1 << 30));
//! let mut rng = SimRng::new(1);
//! let ack = cluster.write(SimTime::ZERO, 0, 4096, &mut rng);
//! let data = cluster.read(ack, 0, 4096, &mut rng);
//! assert!(data > ack);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod map;
mod node;
mod persist;

pub use map::ChunkMap;
pub use node::{NodeConfig, NodeStats, StorageNode, StorageNodeSnapshot};

use uc_sim::{SimRng, SimTime};

/// Parameters of a [`Cluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of storage nodes.
    pub nodes: usize,
    /// Copies of each chunk (the paper cites three-way replication).
    pub replication: usize,
    /// Striping granularity in bytes.
    pub chunk_bytes: u64,
    /// Virtual capacity served by this cluster, in bytes.
    pub capacity: u64,
    /// Per-node service parameters.
    pub node: NodeConfig,
    /// Seed for deterministic chunk placement.
    pub placement_seed: u64,
}

impl ClusterConfig {
    /// A small development cluster: 12 nodes, 3-way replication, 4 MiB
    /// chunks, default node parameters.
    pub fn small(capacity: u64) -> Self {
        ClusterConfig {
            nodes: 12,
            replication: 3,
            chunk_bytes: 4 << 20,
            capacity,
            node: NodeConfig::default(),
            placement_seed: 0xC1u64,
        }
    }

    /// Replaces the node count (minimum `replication`).
    pub fn with_nodes(mut self, nodes: usize) -> Self {
        self.nodes = nodes.max(self.replication);
        self
    }

    /// Replaces the replication factor (minimum 1; clamped to node count).
    pub fn with_replication(mut self, replication: usize) -> Self {
        self.replication = replication.clamp(1, self.nodes);
        self
    }

    /// Replaces the chunk size (minimum 4 KiB).
    pub fn with_chunk_bytes(mut self, chunk_bytes: u64) -> Self {
        self.chunk_bytes = chunk_bytes.max(4096);
        self
    }

    /// Replaces the per-node parameters.
    pub fn with_node(mut self, node: NodeConfig) -> Self {
        self.node = node;
        self
    }
}

/// Per-operation accounting for a [`Cluster`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClusterStats {
    /// Write fragments dispatched (after chunk splitting).
    pub write_fragments: u64,
    /// Read fragments dispatched.
    pub read_fragments: u64,
    /// Bytes written (pre-replication).
    pub bytes_written: u64,
    /// Bytes read.
    pub bytes_read: u64,
}

/// The storage backend of an elastic SSD.
///
/// See the crate docs for the model; constructed from a [`ClusterConfig`],
/// driven by `uc-essd`.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    map: ChunkMap,
    nodes: Vec<StorageNode>,
    stats: ClusterStats,
}

// The device-factory contract (`uc_blockdev::DeviceFactory`) hands freshly
// built ESSDs — and therefore their backend clusters — to worker threads,
// so the whole backend must stay `Send` (no interior shared state).
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Cluster>()
};

impl Cluster {
    /// Builds an idle cluster.
    ///
    /// # Panics
    ///
    /// Panics if `nodes == 0` or `replication == 0` (the `with_*` builders
    /// keep configurations valid; this guards hand-rolled ones).
    pub fn new(config: ClusterConfig) -> Self {
        assert!(config.nodes > 0, "cluster needs at least one node");
        assert!(
            (1..=config.nodes).contains(&config.replication),
            "replication must be in [1, nodes]"
        );
        let map = ChunkMap::new(
            config.chunk_bytes,
            config.nodes,
            config.replication,
            config.placement_seed,
        );
        let nodes = (0..config.nodes)
            .map(|_| StorageNode::new(config.node.clone()))
            .collect();
        Cluster {
            map,
            nodes,
            stats: ClusterStats::default(),
            config,
        }
    }

    /// The chunk map (placement inspection for tests and ablations).
    pub fn map(&self) -> &ChunkMap {
        &self.map
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// Operation counters.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// Per-node statistics, indexed by node id.
    pub fn node_stats(&self) -> Vec<NodeStats> {
        self.nodes.iter().map(|n| n.stats()).collect()
    }

    /// Writes `len` bytes at `offset`, arriving at the cluster at `now`.
    ///
    /// The request is split at chunk boundaries; each fragment is sent to
    /// every replica of its chunk and acknowledges when the slowest replica
    /// has staged it. Returns the final acknowledgement instant.
    pub fn write(&mut self, now: SimTime, offset: u64, len: u32, rng: &mut SimRng) -> SimTime {
        let mut done = now;
        self.stats.bytes_written += len as u64;
        for (chunk, frag_len) in self.map.fragments(offset, len) {
            self.stats.write_fragments += 1;
            let replicas = self.map.replicas(chunk);
            for (i, node) in replicas.into_iter().enumerate() {
                // Non-primary replicas see one extra backend hop.
                let arrival = if i == 0 {
                    now
                } else {
                    now + self.config.node.replica_hop.sample(rng)
                };
                let ack = self.nodes[node].write(arrival, chunk, frag_len, rng);
                done = done.max(ack);
            }
        }
        done
    }

    /// Captures the cluster's complete state.
    ///
    /// The chunk map is not part of the snapshot: placement is a pure
    /// function of the configuration (and its placement seed), so restore
    /// rebuilds it deterministically.
    pub fn snapshot(&self) -> ClusterSnapshot {
        ClusterSnapshot {
            config: self.config.clone(),
            nodes: self.nodes.iter().map(StorageNode::snapshot).collect(),
            stats: self.stats,
        }
    }

    /// Rebuilds a cluster that continues exactly where `snapshot` was
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's node count disagrees with its
    /// configuration (a corrupted snapshot).
    pub fn restore(snapshot: ClusterSnapshot) -> Self {
        assert_eq!(
            snapshot.nodes.len(),
            snapshot.config.nodes,
            "snapshot node count disagrees with configuration"
        );
        #[cfg(feature = "strict-invariants")]
        let expected = snapshot.clone();
        let map = ChunkMap::new(
            snapshot.config.chunk_bytes,
            snapshot.config.nodes,
            snapshot.config.replication,
            snapshot.config.placement_seed,
        );
        let restored = Cluster {
            map,
            nodes: snapshot
                .nodes
                .into_iter()
                .map(StorageNode::restore)
                .collect(),
            stats: snapshot.stats,
            config: snapshot.config,
        };
        // Contract hook (deep): thaw(freeze(c)) is observationally exact.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-cluster/Cluster",
                    "thaw-freeze-exact",
                    "re-freezing the restored cluster does not reproduce its snapshot",
                ));
            }
            Ok(())
        });
        restored
    }

    /// Reads `len` bytes at `offset`, arriving at the cluster at `now`.
    ///
    /// Each fragment is served by one replica of its chunk, chosen
    /// uniformly at random (load spreading). Returns when the last
    /// fragment's data is ready to return to the VM.
    pub fn read(&mut self, now: SimTime, offset: u64, len: u32, rng: &mut SimRng) -> SimTime {
        let mut done = now;
        self.stats.bytes_read += len as u64;
        for (chunk, frag_len) in self.map.fragments(offset, len) {
            self.stats.read_fragments += 1;
            let replicas = self.map.replicas(chunk);
            let node = replicas[rng.index(replicas.len())];
            let ready = self.nodes[node].read(now, chunk, frag_len, rng);
            done = done.max(ready);
        }
        done
    }
}

/// The complete serializable state of a [`Cluster`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSnapshot {
    /// The cluster configuration (including the placement seed the chunk
    /// map is rebuilt from).
    pub config: ClusterConfig,
    /// Per-node state, indexed by node id.
    pub nodes: Vec<StorageNodeSnapshot>,
    /// Operation counters.
    pub stats: ClusterStats,
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    fn cluster() -> Cluster {
        Cluster::new(ClusterConfig::small(1 << 30))
    }

    #[test]
    fn write_slower_than_nothing_read_after_write() {
        let mut c = cluster();
        let mut rng = SimRng::new(2);
        let ack = c.write(SimTime::ZERO, 4096, 4096, &mut rng);
        assert!(ack > SimTime::ZERO);
        let read = c.read(ack, 4096, 4096, &mut rng);
        assert!(read > ack);
        let s = c.stats();
        assert_eq!(s.write_fragments, 1);
        assert_eq!(s.read_fragments, 1);
        assert_eq!(s.bytes_written, 4096);
        assert_eq!(s.bytes_read, 4096);
    }

    #[test]
    fn replication_touches_distinct_nodes() {
        let mut c = cluster();
        let mut rng = SimRng::new(3);
        c.write(SimTime::ZERO, 0, 4096, &mut rng);
        let busy: usize = c.node_stats().iter().filter(|s| s.writes > 0).count();
        assert_eq!(busy, 3, "3-way replication must hit 3 distinct nodes");
    }

    #[test]
    fn requests_split_at_chunk_boundaries() {
        let cfg = ClusterConfig::small(1 << 30).with_chunk_bytes(64 << 10);
        let mut c = Cluster::new(cfg);
        let mut rng = SimRng::new(4);
        // 128 KiB spanning a 64 KiB boundary: 3 fragments.
        c.write(SimTime::ZERO, 32 << 10, 128 << 10, &mut rng);
        assert_eq!(c.stats().write_fragments, 3);
    }

    #[test]
    fn sequential_stream_is_chunk_serialized() {
        // Writes inside one chunk serialize on the chunk lane; writes to
        // different chunks proceed in parallel.
        let cfg = ClusterConfig::small(1 << 30).with_chunk_bytes(1 << 20);
        let mut c = Cluster::new(cfg);
        let mut rng = SimRng::new(5);
        let same_a = c.write(SimTime::ZERO, 0, 256 << 10, &mut rng);
        let same_b = c.write(SimTime::ZERO, 256 << 10, 256 << 10, &mut rng);
        assert!(same_b > same_a, "same chunk: serialized");

        let mut c2 = Cluster::new(ClusterConfig::small(1 << 30).with_chunk_bytes(1 << 20));
        let far_a = c2.write(SimTime::ZERO, 0, 256 << 10, &mut rng);
        let far_b = c2.write(SimTime::ZERO, 13 << 20, 256 << 10, &mut rng);
        // Different chunks usually land on disjoint lanes; allow equality
        // when replica sets overlap on a node's flash pool.
        assert!(far_b <= same_b.max(far_a.max(far_b)));
        assert!(
            far_b < same_b || far_a == far_b,
            "cross-chunk writes should not serialize like same-chunk writes"
        );
    }

    #[test]
    fn read_replica_spreading() {
        let mut c = cluster();
        let mut rng = SimRng::new(6);
        for _ in 0..64 {
            c.read(SimTime::ZERO, 0, 4096, &mut rng);
        }
        let readers = c.node_stats().iter().filter(|s| s.reads > 0).count();
        assert!(
            (2..=3).contains(&readers),
            "reads of one chunk should spread over its replicas, got {readers}"
        );
    }

    #[test]
    fn staged_writes_ack_faster_than_flash_reads() {
        let mut c = cluster();
        let mut rng = SimRng::new(7);
        let base = SimTime::ZERO + SimDuration::from_secs(1);
        let w = c.write(base, 0, 4096, &mut rng) - base;
        let r = c.read(base, 1 << 20, 4096, &mut rng) - base;
        assert!(w < r, "staged write ack ({w}) should beat flash read ({r})");
    }

    #[test]
    fn snapshot_restore_resumes_identically() {
        let mut a = cluster();
        let mut rng = SimRng::new(11);
        for i in 0..16u64 {
            a.write(SimTime::ZERO, i * (8 << 20), 64 << 10, &mut rng);
        }
        let snap = a.snapshot();
        let mut b = Cluster::restore(snap.clone());
        assert_eq!(b.snapshot(), snap, "round trip is lossless");
        let mut rng_b = rng.clone();
        for i in 0..16u64 {
            let off = (i * 3) % 200 * (1 << 20);
            assert_eq!(
                a.write(SimTime::ZERO, off, 128 << 10, &mut rng),
                b.write(SimTime::ZERO, off, 128 << 10, &mut rng_b)
            );
            assert_eq!(
                a.read(SimTime::ZERO, off, 4096, &mut rng),
                b.read(SimTime::ZERO, off, 4096, &mut rng_b)
            );
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.node_stats(), b.node_stats());
    }

    #[test]
    #[should_panic(expected = "disagrees with configuration")]
    fn corrupted_snapshot_rejected() {
        let mut snap = cluster().snapshot();
        snap.nodes.pop();
        let _ = Cluster::restore(snap);
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn invalid_replication_rejected() {
        let mut cfg = ClusterConfig::small(1 << 30);
        cfg.replication = 99;
        let _ = Cluster::new(cfg);
    }
}
