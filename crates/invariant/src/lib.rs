//! Machine-checked contract invariants.
//!
//! The paper's "unwritten contract" is enforced numerically in
//! `uc_core::contract::thresholds`, but the *structural* invariants behind
//! those numbers — L2P/P2L bijectivity in the FTL, token-bucket
//! conservation, checkpoint freeze/thaw exactness, trace monotonicity —
//! were previously implicit. This crate makes them first-class:
//!
//! - [`Contract`] is implemented by any type whose internal consistency
//!   can be audited; [`Contract::check`] walks the full structure and
//!   reports the first [`Violation`] found.
//! - [`enforce`] / [`debug_check`] are the hook points other crates call
//!   on their hot seams. They compile to nothing in ordinary release
//!   builds; debug builds and the `strict-invariants` feature turn them
//!   into hard panics with a structured report.
//! - [`ensure!`] keeps `check` implementations terse.
//!
//! Full-structure audits are O(n); the seam hooks therefore only run the
//! cheap O(1) local checks inline, and the property suites in
//! `tests/invariants.rs` call [`Contract::check`] after every step of
//! randomized op sequences (shrunk to minimal counterexamples by the
//! vendored proptest).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A structured report of one broken invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which contract was audited (e.g. `"uc-ftl/Ftl"`).
    pub contract: &'static str,
    /// Which invariant failed (e.g. `"l2p-p2l-bijective"`).
    pub invariant: &'static str,
    /// Human-readable specifics: offending indices, expected vs actual.
    pub detail: String,
}

impl Violation {
    /// Builds a violation report.
    pub fn new(contract: &'static str, invariant: &'static str, detail: impl Into<String>) -> Self {
        Self {
            contract,
            invariant,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "contract violation in {} [{}]: {}",
            self.contract, self.invariant, self.detail
        )
    }
}

impl std::error::Error for Violation {}

/// A type whose structural invariants can be audited on demand.
pub trait Contract {
    /// Stable name used in [`Violation`] reports, `"crate/Type"` style.
    fn contract_name(&self) -> &'static str;

    /// Audits the full structure; `Ok(())` when every invariant holds,
    /// otherwise the first violation found. May be O(n) in the structure
    /// size — call from tests and strict builds, not per-op hot paths.
    fn check(&self) -> Result<(), Violation>;
}

/// Whether contract hooks are enforced in this build: true under
/// `debug_assertions` or with the `strict-invariants` feature.
#[inline(always)]
pub const fn strict_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "strict-invariants"))
}

/// Whether the *expensive* hooks (full re-audits on hot paths, freeze/thaw
/// re-snapshot comparisons) are enforced. Only the explicit
/// `strict-invariants` feature turns these on — they are too slow for
/// every debug build.
#[inline(always)]
pub const fn deep_enabled() -> bool {
    cfg!(feature = "strict-invariants")
}

/// Seam hook: panics with the violation report when hooks are enforced
/// ([`strict_enabled`]); free otherwise. `violation` is only evaluated in
/// enforcing builds.
#[inline(always)]
pub fn enforce(violation: impl FnOnce() -> Result<(), Violation>) {
    if strict_enabled() {
        if let Err(v) = violation() {
            panic!("{v}");
        }
    }
}

/// Expensive seam hook: like [`enforce`] but only active with the
/// `strict-invariants` feature (see [`deep_enabled`]).
#[inline(always)]
pub fn deep_enforce(violation: impl FnOnce() -> Result<(), Violation>) {
    if deep_enabled() {
        if let Err(v) = violation() {
            panic!("{v}");
        }
    }
}

/// Audits `subject` and panics on violation when hooks are enforced; a
/// convenience wrapper over [`enforce`] + [`Contract::check`].
#[inline(always)]
pub fn debug_check<C: Contract + ?Sized>(subject: &C) {
    enforce(|| subject.check());
}

/// Early-returns a [`Violation`] when `cond` is false; sugar for `check`
/// implementations.
///
/// ```
/// use uc_invariant::{ensure, Contract, Violation};
///
/// struct Bucket { level: f64, cap: f64 }
///
/// impl Contract for Bucket {
///     fn contract_name(&self) -> &'static str { "doc/Bucket" }
///     fn check(&self) -> Result<(), Violation> {
///         ensure!(self, "level-in-bounds",
///                 self.level >= 0.0 && self.level <= self.cap,
///                 "level {} outside [0, {}]", self.level, self.cap);
///         Ok(())
///     }
/// }
///
/// assert!(Bucket { level: 2.0, cap: 1.0 }.check().is_err());
/// ```
#[macro_export]
macro_rules! ensure {
    ($self:expr, $invariant:expr, $cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::Violation::new(
                $crate::Contract::contract_name($self),
                $invariant,
                format!($($fmt)+),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter {
        used: u32,
        cap: u32,
    }

    impl Contract for Counter {
        fn contract_name(&self) -> &'static str {
            "uc-invariant/Counter"
        }
        fn check(&self) -> Result<(), Violation> {
            ensure!(
                self,
                "used-le-cap",
                self.used <= self.cap,
                "used {} exceeds cap {}",
                self.used,
                self.cap
            );
            Ok(())
        }
    }

    #[test]
    fn passing_contract_checks_clean() {
        assert_eq!(Counter { used: 3, cap: 4 }.check(), Ok(()));
    }

    #[test]
    fn violation_reports_contract_invariant_and_detail() {
        let v = Counter { used: 5, cap: 4 }.check().unwrap_err();
        assert_eq!(v.contract, "uc-invariant/Counter");
        assert_eq!(v.invariant, "used-le-cap");
        assert!(v.detail.contains("used 5 exceeds cap 4"));
        assert!(v
            .to_string()
            .contains("contract violation in uc-invariant/Counter"));
    }

    #[test]
    #[cfg(debug_assertions)]
    fn debug_check_panics_on_violation_in_debug_builds() {
        let err = std::panic::catch_unwind(|| debug_check(&Counter { used: 9, cap: 4 }))
            .expect_err("must panic under debug_assertions");
        let msg = err.downcast_ref::<String>().expect("formatted message");
        assert!(msg.contains("used-le-cap"), "{msg}");
    }

    #[test]
    fn strictness_is_consistent_with_build_flags() {
        assert_eq!(
            strict_enabled(),
            cfg!(any(debug_assertions, feature = "strict-invariants"))
        );
        assert_eq!(deep_enabled(), cfg!(feature = "strict-invariants"));
        // deep implies strict.
        assert!(!deep_enabled() || strict_enabled());
    }
}
