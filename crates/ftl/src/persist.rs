//! [`Persist`] codecs for the FTL's checkpoint types.
//!
//! An [`FtlCheckpoint`] is the largest leaf of a device checkpoint — the
//! full logical↔physical mapping plus per-block bookkeeping — so its wire
//! form is a straight field-by-field dump of the plain-data snapshot.
//! Structural invariants that [`Ftl::restore`](crate::Ftl::restore)
//! relies on (map and block-table lengths matching the geometry) are
//! validated on decode, so corrupted bytes surface as typed errors.

use crate::{BlockState, FtlCheckpoint, FtlConfig, FtlStats, GcPolicy};
use uc_flash::{FlashArraySnapshot, FlashGeometry, FlashTiming};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};

impl Persist for GcPolicy {
    fn encode(&self, w: &mut Encoder) {
        w.put_u8(match self {
            GcPolicy::Greedy => 0,
            GcPolicy::CostBenefit => 1,
            GcPolicy::Fifo => 2,
        });
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(GcPolicy::Greedy),
            1 => Ok(GcPolicy::CostBenefit),
            2 => Ok(GcPolicy::Fifo),
            _ => Err(DecodeError::InvalidValue {
                what: "GcPolicy tag",
            }),
        }
    }
}

impl Persist for FtlConfig {
    fn encode(&self, w: &mut Encoder) {
        self.geometry.encode(w);
        self.timing.encode(w);
        w.put_f64(self.over_provisioning);
        w.put_u32(self.gc_trigger_free);
        w.put_u32(self.gc_target_free);
        self.gc_policy.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FtlConfig {
            geometry: FlashGeometry::decode(r)?,
            timing: FlashTiming::decode(r)?,
            over_provisioning: r.get_f64()?,
            gc_trigger_free: r.get_u32()?,
            gc_target_free: r.get_u32()?,
            gc_policy: GcPolicy::decode(r)?,
        })
    }
}

impl Persist for BlockState {
    fn encode(&self, w: &mut Encoder) {
        w.put_u32(self.written);
        w.put_u32(self.valid);
        w.put_u32(self.erase_count);
        w.put_u64(self.opened_seq);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(BlockState {
            written: r.get_u32()?,
            valid: r.get_u32()?,
            erase_count: r.get_u32()?,
            opened_seq: r.get_u64()?,
        })
    }
}

impl Persist for FtlStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.host_pages_written);
        w.put_u64(self.gc_pages_relocated);
        w.put_u64(self.gc_blocks_erased);
        w.put_u64(self.host_pages_read);
        w.put_u64(self.pages_trimmed);
        w.put_u64(self.gc_invocations);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(FtlStats {
            host_pages_written: r.get_u64()?,
            gc_pages_relocated: r.get_u64()?,
            gc_blocks_erased: r.get_u64()?,
            host_pages_read: r.get_u64()?,
            pages_trimmed: r.get_u64()?,
            gc_invocations: r.get_u64()?,
        })
    }
}

impl Persist for FtlCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.flash.encode(w);
        self.l2p.encode(w);
        self.p2l.encode(w);
        self.blocks.encode(w);
        self.free.encode(w);
        self.open_host.encode(w);
        self.open_gc.encode(w);
        w.put_u32(self.cursor);
        w.put_u64(self.seq);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let checkpoint = FtlCheckpoint {
            config: FtlConfig::decode(r)?,
            flash: FlashArraySnapshot::decode(r)?,
            l2p: Vec::<u64>::decode(r)?,
            p2l: Vec::<u64>::decode(r)?,
            blocks: Vec::<BlockState>::decode(r)?,
            free: Vec::<Vec<u32>>::decode(r)?,
            open_host: Vec::<u32>::decode(r)?,
            open_gc: Vec::<u32>::decode(r)?,
            cursor: r.get_u32()?,
            seq: r.get_u64()?,
            stats: FtlStats::decode(r)?,
        };
        let g = checkpoint.config.geometry;
        let dies = g.total_dies() as usize;
        if checkpoint.l2p.len() as u64 != checkpoint.config.effective_logical_pages() {
            return Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint.l2p",
            });
        }
        if checkpoint.p2l.len() != g.total_pages() as usize {
            return Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint.p2l",
            });
        }
        if checkpoint.blocks.len() != g.total_blocks() as usize {
            return Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint.blocks",
            });
        }
        if checkpoint.free.len() != dies
            || checkpoint.open_host.len() != dies
            || checkpoint.open_gc.len() != dies
        {
            return Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint per-die tables",
            });
        }
        Ok(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ftl;
    use uc_sim::SimTime;

    fn busy_ftl() -> Ftl {
        let geometry = FlashGeometry::new(2, 2, 1, 16, 32, 4096).unwrap();
        let mut ftl =
            Ftl::new(FtlConfig::new(geometry, FlashTiming::slc()).with_over_provisioning(0.12));
        let pages = ftl.logical_pages();
        let mut now = SimTime::ZERO;
        let mut state = 3u64;
        for _ in 0..3000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            now = ftl.write_page(now, state % pages);
        }
        ftl
    }

    #[test]
    fn checkpoint_round_trips_after_gc_activity() {
        let ftl = busy_ftl();
        let checkpoint = ftl.checkpoint();
        assert!(checkpoint.stats.gc_invocations > 0, "exercise GC state");
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = FtlCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, checkpoint);
        // The decoded checkpoint restores into a working FTL.
        let restored = Ftl::restore(back);
        assert_eq!(restored.stats(), ftl.stats());
    }

    #[test]
    fn mismatched_tables_are_rejected() {
        let mut checkpoint = busy_ftl().checkpoint();
        checkpoint.blocks.pop();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            FtlCheckpoint::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint.blocks"
            })
        );
    }

    #[test]
    fn shortened_l2p_is_rejected() {
        // A CRC-valid but shortened logical map must fail at decode time,
        // not panic later inside `Ftl::write_page`.
        let mut checkpoint = busy_ftl().checkpoint();
        checkpoint.l2p.pop();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            FtlCheckpoint::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "FtlCheckpoint.l2p"
            })
        );
    }

    #[test]
    fn effective_logical_pages_matches_built_ftl() {
        for (op, trigger, target) in [(0.12, 4, 6), (0.0, 1, 1), (0.3, 8, 20)] {
            let geometry = FlashGeometry::new(2, 2, 1, 32, 32, 4096).unwrap();
            let config = FtlConfig::new(geometry, FlashTiming::slc())
                .with_over_provisioning(op)
                .with_gc_watermarks(trigger, target);
            let ftl = Ftl::new(config);
            assert_eq!(
                config.effective_logical_pages(),
                ftl.logical_pages(),
                "op={op} trigger={trigger} target={target}"
            );
        }
    }

    #[test]
    fn gc_policy_tags_round_trip() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
            let mut w = Encoder::new();
            policy.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(GcPolicy::decode(&mut Decoder::new(&bytes)), Ok(policy));
        }
        assert_eq!(
            GcPolicy::decode(&mut Decoder::new(&[9])),
            Err(DecodeError::InvalidValue {
                what: "GcPolicy tag"
            })
        );
    }
}
