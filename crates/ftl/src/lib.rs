//! Flash translation layer (FTL).
//!
//! The FTL bridges the block interface to raw NAND (§II-A of the paper):
//! it keeps a page-level logical-to-physical map, allocates program
//! locations striped across dies for parallelism, and reclaims invalidated
//! space with garbage collection. GC relocations and erases are scheduled
//! on the *same* die/channel timelines as host operations, so GC pressure
//! degrades foreground throughput exactly the way the paper's Figure 3
//! shows for the local SSD.
//!
//! Three victim-selection policies are provided for the ablation benches:
//! greedy (min valid pages), cost-benefit, and FIFO.
//!
//! # Example
//!
//! ```
//! use uc_flash::{FlashGeometry, FlashTiming};
//! use uc_ftl::{Ftl, FtlConfig};
//! use uc_sim::SimTime;
//!
//! let geometry = FlashGeometry::new(2, 2, 1, 16, 64, 4096)?;
//! let mut ftl = Ftl::new(FtlConfig::new(geometry, FlashTiming::mlc()));
//! let done = ftl.write_page(SimTime::ZERO, 0);
//! assert!(done > SimTime::ZERO);
//! let read_done = ftl.read_page(done, 0);
//! assert!(read_done > done);
//! assert_eq!(ftl.stats().host_pages_written, 1);
//! # Ok::<(), uc_flash::GeometryError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod blocks;
mod config;
mod ftl;
mod gc;
mod persist;
mod stats;

pub use blocks::{BlockId, BlockState};
pub use config::FtlConfig;
#[cfg(feature = "fault-injection")]
pub use ftl::MapFault;
pub use ftl::{Ftl, FtlCheckpoint};
pub use gc::GcPolicy;
pub use stats::{FtlStats, WearStats};
