//! Garbage-collection victim selection policies.

use crate::BlockState;

/// How GC chooses its victim block among the full blocks of a die.
///
/// * [`GcPolicy::Greedy`] — fewest valid pages; minimizes immediate copy
///   cost and is the de-facto standard baseline.
/// * [`GcPolicy::CostBenefit`] — classic LFS cost-benefit score
///   `(1 - u) · age / (1 + u)`; ages cold blocks into cheaper victims.
/// * [`GcPolicy::Fifo`] — oldest opened block first, regardless of valid
///   count; the worst case, included for the ablation bench.
///
/// # Example
///
/// ```
/// use uc_ftl::{BlockState, GcPolicy};
///
/// let cold_full = BlockState { written: 64, valid: 60, erase_count: 0, opened_seq: 1 };
/// let hot_empty = BlockState { written: 64, valid: 4, erase_count: 0, opened_seq: 9 };
/// let blocks = [cold_full, hot_empty];
/// let pick = GcPolicy::Greedy.pick(blocks.iter().enumerate(), 64, 10);
/// assert_eq!(pick, Some(1)); // greedy takes the 4-valid block
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum GcPolicy {
    /// Fewest valid pages first.
    #[default]
    Greedy,
    /// LFS cost-benefit: `(1 - u) · age / (1 + u)`.
    CostBenefit,
    /// Oldest block first.
    Fifo,
}

impl GcPolicy {
    /// Picks a victim among `(index, state)` pairs of *full* candidate
    /// blocks; returns the chosen index, or `None` if the iterator is
    /// empty.
    ///
    /// `pages_per_block` is needed for utilization; `now_seq` is the
    /// current open-sequence counter used as the age reference.
    pub fn pick<'a, I>(&self, candidates: I, pages_per_block: u32, now_seq: u64) -> Option<usize>
    where
        I: IntoIterator<Item = (usize, &'a BlockState)>,
    {
        let mut best: Option<(usize, f64)> = None;
        for (idx, state) in candidates {
            let score = self.score(state, pages_per_block, now_seq);
            match best {
                Some((_, s)) if s >= score => {}
                _ => best = Some((idx, score)),
            }
        }
        best.map(|(idx, _)| idx)
    }

    /// The desirability score of a candidate (higher is a better victim).
    fn score(&self, state: &BlockState, pages_per_block: u32, now_seq: u64) -> f64 {
        let u = state.utilization(pages_per_block);
        match self {
            GcPolicy::Greedy => 1.0 - u,
            GcPolicy::CostBenefit => {
                let age = (now_seq.saturating_sub(state.opened_seq)) as f64 + 1.0;
                (1.0 - u) * age / (1.0 + u)
            }
            GcPolicy::Fifo => (now_seq.saturating_sub(state.opened_seq)) as f64,
        }
    }
}

impl std::fmt::Display for GcPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GcPolicy::Greedy => write!(f, "greedy"),
            GcPolicy::CostBenefit => write!(f, "cost-benefit"),
            GcPolicy::Fifo => write!(f, "fifo"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(valid: u32, opened_seq: u64) -> BlockState {
        BlockState {
            written: 64,
            valid,
            erase_count: 0,
            opened_seq,
        }
    }

    #[test]
    fn greedy_picks_min_valid() {
        let blocks = [block(60, 0), block(10, 5), block(30, 9)];
        let pick = GcPolicy::Greedy.pick(blocks.iter().enumerate(), 64, 10);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn fifo_picks_oldest() {
        let blocks = [block(1, 7), block(60, 2), block(30, 9)];
        let pick = GcPolicy::Fifo.pick(blocks.iter().enumerate(), 64, 10);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn cost_benefit_prefers_old_sparse_blocks() {
        // Equal valid counts: age must break the tie toward the older block.
        let blocks = [block(32, 9), block(32, 1)];
        let pick = GcPolicy::CostBenefit.pick(blocks.iter().enumerate(), 64, 10);
        assert_eq!(pick, Some(1));
        // A fully-valid ancient block loses to a sparse young one.
        let blocks = [block(64, 0), block(4, 9)];
        let pick = GcPolicy::CostBenefit.pick(blocks.iter().enumerate(), 64, 10);
        assert_eq!(pick, Some(1));
    }

    #[test]
    fn empty_candidate_set_yields_none() {
        let pick = GcPolicy::Greedy.pick(std::iter::empty(), 64, 0);
        assert_eq!(pick, None);
    }

    #[test]
    fn display_names() {
        assert_eq!(GcPolicy::Greedy.to_string(), "greedy");
        assert_eq!(GcPolicy::CostBenefit.to_string(), "cost-benefit");
        assert_eq!(GcPolicy::Fifo.to_string(), "fifo");
    }
}
