//! FTL statistics: write amplification and wear.

/// Cumulative FTL activity counters.
///
/// The headline derived quantity is [write amplification], the ratio of
/// total pages programmed (host + GC relocation) to host pages programmed.
/// It is the mechanism behind the paper's Figure 3: when GC starts, WA
/// rises above 1 and foreground throughput falls by roughly that factor.
///
/// [write amplification]: FtlStats::write_amplification
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FtlStats {
    /// Pages programmed on behalf of host writes.
    pub host_pages_written: u64,
    /// Pages relocated by garbage collection.
    pub gc_pages_relocated: u64,
    /// Blocks erased by garbage collection.
    pub gc_blocks_erased: u64,
    /// Host page reads served.
    pub host_pages_read: u64,
    /// Logical pages invalidated by TRIM.
    pub pages_trimmed: u64,
    /// Number of GC victim selections performed.
    pub gc_invocations: u64,
}

impl FtlStats {
    /// Total pages programmed (host plus GC).
    pub fn total_pages_written(&self) -> u64 {
        self.host_pages_written + self.gc_pages_relocated
    }

    /// Write amplification factor; `1.0` when GC has relocated nothing,
    /// and `0.0` before any host write.
    pub fn write_amplification(&self) -> f64 {
        if self.host_pages_written == 0 {
            0.0
        } else {
            self.total_pages_written() as f64 / self.host_pages_written as f64
        }
    }

    /// Total L2P map mutations: every host program, GC rebinding, and TRIM
    /// unmap rewrites exactly one map entry, so map churn is derivable
    /// rather than stored (keeping the persisted checkpoint layout fixed).
    pub fn map_updates(&self) -> u64 {
        self.host_pages_written + self.gc_pages_relocated + self.pages_trimmed
    }

    /// Write amplification in milli-units (×1000, truncated) — the
    /// integer form telemetry snapshots use to stay byte-stable.
    pub fn wa_milli(&self) -> u64 {
        (self.total_pages_written() * 1000)
            .checked_div(self.host_pages_written)
            .unwrap_or(0)
    }
}

/// Wear-leveling summary across all blocks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WearStats {
    /// Smallest per-block erase count.
    pub min_erases: u32,
    /// Largest per-block erase count.
    pub max_erases: u32,
    /// Mean per-block erase count.
    pub mean_erases: f64,
}

impl WearStats {
    /// Computes wear statistics from per-block erase counts.
    ///
    /// Returns all zeros for an empty iterator.
    pub fn from_counts<I: IntoIterator<Item = u32>>(counts: I) -> Self {
        let mut min = u32::MAX;
        let mut max = 0u32;
        let mut sum = 0u64;
        let mut n = 0u64;
        for c in counts {
            min = min.min(c);
            max = max.max(c);
            sum += c as u64;
            n += 1;
        }
        if n == 0 {
            return WearStats::default();
        }
        WearStats {
            min_erases: min,
            max_erases: max,
            mean_erases: sum as f64 / n as f64,
        }
    }

    /// Max-minus-min erase spread; a proxy for wear-leveling quality.
    pub fn spread(&self) -> u32 {
        self.max_erases - self.min_erases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wa_is_one_without_gc() {
        let s = FtlStats {
            host_pages_written: 100,
            ..Default::default()
        };
        assert_eq!(s.write_amplification(), 1.0);
    }

    #[test]
    fn wa_reflects_relocations() {
        let s = FtlStats {
            host_pages_written: 100,
            gc_pages_relocated: 150,
            ..Default::default()
        };
        assert_eq!(s.write_amplification(), 2.5);
        assert_eq!(s.total_pages_written(), 250);
    }

    #[test]
    fn wa_zero_before_writes() {
        assert_eq!(FtlStats::default().write_amplification(), 0.0);
    }

    #[test]
    fn map_updates_counts_every_l2p_mutation() {
        let s = FtlStats {
            host_pages_written: 10,
            gc_pages_relocated: 4,
            pages_trimmed: 3,
            host_pages_read: 99, // reads never touch the map
            ..Default::default()
        };
        assert_eq!(s.map_updates(), 17);
    }

    #[test]
    fn wa_milli_matches_float_wa() {
        let s = FtlStats {
            host_pages_written: 100,
            gc_pages_relocated: 150,
            ..Default::default()
        };
        assert_eq!(s.wa_milli(), 2500);
        assert_eq!(FtlStats::default().wa_milli(), 0);
    }

    #[test]
    fn wear_from_counts() {
        let w = WearStats::from_counts([1, 3, 5]);
        assert_eq!(w.min_erases, 1);
        assert_eq!(w.max_erases, 5);
        assert_eq!(w.mean_erases, 3.0);
        assert_eq!(w.spread(), 4);
    }

    #[test]
    fn wear_empty_is_zero() {
        let w = WearStats::from_counts(std::iter::empty());
        assert_eq!(w, WearStats::default());
    }
}
