//! FTL configuration.

use crate::GcPolicy;
use uc_flash::{FlashGeometry, FlashTiming};

/// Parameters of an [`Ftl`](crate::Ftl).
///
/// Construct with [`FtlConfig::new`] and adjust with the builder-style
/// `with_*` methods.
///
/// # Example
///
/// ```
/// use uc_flash::{FlashGeometry, FlashTiming};
/// use uc_ftl::{FtlConfig, GcPolicy};
///
/// let g = FlashGeometry::new(4, 2, 1, 32, 128, 4096)?;
/// let cfg = FtlConfig::new(g, FlashTiming::mlc())
///     .with_over_provisioning(0.10)
///     .with_gc_policy(GcPolicy::CostBenefit);
/// assert!(cfg.logical_pages() < g.total_pages());
/// # Ok::<(), uc_flash::GeometryError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// Physical array geometry.
    pub geometry: FlashGeometry,
    /// NAND operation timing.
    pub timing: FlashTiming,
    /// Fraction of raw capacity reserved as over-provisioning, in `[0, 0.5]`.
    pub over_provisioning: f64,
    /// Per-die free-block low watermark that triggers garbage collection.
    ///
    /// [`Ftl::new`](crate::Ftl::new) raises this to at least 3 so the host
    /// and GC write frontiers can always rotate.
    pub gc_trigger_free: u32,
    /// Per-die free-block count GC tries to restore; sanitized to lie in
    /// `(trigger, trigger + 3]`.
    pub gc_target_free: u32,
    /// Victim-selection policy.
    pub gc_policy: GcPolicy,
}

impl FtlConfig {
    /// A configuration with conventional defaults: 6.7 % over-provisioning
    /// (1 / 15, in the range of consumer NVMe drives), greedy GC, trigger
    /// at 4 free blocks per die.
    pub fn new(geometry: FlashGeometry, timing: FlashTiming) -> Self {
        FtlConfig {
            geometry,
            timing,
            over_provisioning: 1.0 / 15.0,
            gc_trigger_free: 4,
            gc_target_free: 6,
            gc_policy: GcPolicy::Greedy,
        }
    }

    /// Sets the over-provisioning fraction (clamped to `[0.0, 0.5]`).
    pub fn with_over_provisioning(mut self, fraction: f64) -> Self {
        self.over_provisioning = fraction.clamp(0.0, 0.5);
        self
    }

    /// Sets the GC victim-selection policy.
    pub fn with_gc_policy(mut self, policy: GcPolicy) -> Self {
        self.gc_policy = policy;
        self
    }

    /// Sets the GC trigger and target free-block watermarks.
    ///
    /// `target` is raised to at least `trigger`.
    pub fn with_gc_watermarks(mut self, trigger: u32, target: u32) -> Self {
        self.gc_trigger_free = trigger.max(1);
        self.gc_target_free = target.max(self.gc_trigger_free);
        self
    }

    /// Number of logical (host-visible) pages after subtracting
    /// over-provisioning, rounded down to a whole number of pages.
    pub fn logical_pages(&self) -> u64 {
        let raw = self.geometry.total_pages() as f64;
        (raw * (1.0 - self.over_provisioning)) as u64
    }

    /// This configuration with the watermark sanitization
    /// [`Ftl::new`](crate::Ftl::new) applies: trigger raised to at least
    /// 3, target clamped into `(trigger, trigger + 3]`.
    pub fn sanitized(&self) -> FtlConfig {
        let mut config = *self;
        config.gc_trigger_free = config.gc_trigger_free.max(3);
        config.gc_target_free = config
            .gc_target_free
            .clamp(config.gc_trigger_free + 1, config.gc_trigger_free + 3);
        config
    }

    /// The logical page count an FTL built from this configuration
    /// actually exposes: [`FtlConfig::logical_pages`] clamped (after
    /// watermark sanitization) so that, even fully mapped, each die keeps
    /// its two write frontiers plus the GC target watermark free.
    ///
    /// This is the single source of truth shared by
    /// [`Ftl::new`](crate::Ftl::new) and the checkpoint decoder (which
    /// rejects an `l2p` table of any other length), so the two can never
    /// drift apart.
    pub fn effective_logical_pages(&self) -> u64 {
        let config = self.sanitized();
        let g = config.geometry;
        let max_blocks_per_die = g.blocks_per_die().saturating_sub(2 + config.gc_target_free);
        let max_logical =
            g.total_dies() as u64 * max_blocks_per_die as u64 * g.pages_per_block() as u64;
        config.logical_pages().min(max_logical)
    }

    /// Host-visible capacity in bytes.
    pub fn logical_capacity(&self) -> u64 {
        self.logical_pages() * self.geometry.page_size() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> FlashGeometry {
        FlashGeometry::new(2, 2, 1, 16, 64, 4096).unwrap()
    }

    #[test]
    fn defaults_are_sane() {
        let c = FtlConfig::new(geometry(), FlashTiming::mlc());
        assert!(c.over_provisioning > 0.0 && c.over_provisioning < 0.2);
        assert!(c.gc_target_free >= c.gc_trigger_free);
        assert!(c.logical_pages() < geometry().total_pages());
    }

    #[test]
    fn over_provisioning_is_clamped() {
        let c = FtlConfig::new(geometry(), FlashTiming::mlc()).with_over_provisioning(0.9);
        assert_eq!(c.over_provisioning, 0.5);
        let c = FtlConfig::new(geometry(), FlashTiming::mlc()).with_over_provisioning(-1.0);
        assert_eq!(c.over_provisioning, 0.0);
    }

    #[test]
    fn watermarks_keep_target_above_trigger() {
        let c = FtlConfig::new(geometry(), FlashTiming::mlc()).with_gc_watermarks(8, 2);
        assert_eq!(c.gc_trigger_free, 8);
        assert_eq!(c.gc_target_free, 8);
    }

    #[test]
    fn logical_capacity_matches_pages() {
        let c = FtlConfig::new(geometry(), FlashTiming::mlc());
        assert_eq!(c.logical_capacity(), c.logical_pages() * 4096);
    }
}
