//! Per-block bookkeeping.

use std::fmt;

/// Identifies a physical block: die index and block slot within the die.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId {
    /// Die index in `[0, total_dies)`.
    pub die: u32,
    /// Block slot within the die, in `[0, blocks_per_die)`.
    pub slot: u32,
}

impl BlockId {
    /// Creates a block id.
    pub fn new(die: u32, slot: u32) -> Self {
        BlockId { die, slot }
    }
}

impl fmt::Display for BlockId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}b{}", self.die, self.slot)
    }
}

/// Mutable state of one physical block.
///
/// A block is written strictly page 0, 1, 2… (`written` is the write
/// frontier); pages invalidate out of order as the host overwrites or trims
/// their logical pages (`valid` counts survivors).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockState {
    /// Pages programmed so far (the in-block write frontier).
    pub written: u32,
    /// Programmed pages still holding live data.
    pub valid: u32,
    /// Times this block has been erased (wear).
    pub erase_count: u32,
    /// Monotonic sequence number of when this block was last opened for
    /// writing; used by the FIFO victim policy.
    pub opened_seq: u64,
}

impl BlockState {
    /// `true` once every page has been programmed.
    pub fn is_full(&self, pages_per_block: u32) -> bool {
        self.written >= pages_per_block
    }

    /// Fraction of programmed pages still valid, in `[0, 1]`; zero for an
    /// unwritten block.
    pub fn utilization(&self, pages_per_block: u32) -> f64 {
        if pages_per_block == 0 {
            0.0
        } else {
            self.valid as f64 / pages_per_block as f64
        }
    }

    /// Resets write/valid state after an erase, incrementing wear.
    pub fn erase(&mut self) {
        debug_assert_eq!(self.valid, 0, "erasing a block with live data");
        self.written = 0;
        self.valid = 0;
        self.erase_count += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_id_display_and_order() {
        let a = BlockId::new(0, 5);
        let b = BlockId::new(1, 0);
        assert!(a < b);
        assert_eq!(a.to_string(), "d0b5");
    }

    #[test]
    fn full_and_utilization() {
        let mut s = BlockState::default();
        assert!(!s.is_full(4));
        s.written = 4;
        s.valid = 2;
        assert!(s.is_full(4));
        assert_eq!(s.utilization(4), 0.5);
    }

    #[test]
    fn erase_resets_and_counts_wear() {
        let mut s = BlockState {
            written: 4,
            valid: 0,
            erase_count: 1,
            opened_seq: 9,
        };
        s.erase();
        assert_eq!(s.written, 0);
        assert_eq!(s.erase_count, 2);
    }

    #[test]
    fn utilization_handles_zero_pages() {
        let s = BlockState::default();
        assert_eq!(s.utilization(0), 0.0);
    }
}
