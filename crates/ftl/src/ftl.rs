//! The page-mapping FTL itself.

use crate::{BlockState, FtlConfig, FtlStats, GcPolicy, WearStats};
use uc_flash::{FlashArray, FlashArraySnapshot, FlashOpStats};
use uc_invariant::{ensure, Contract, Violation};
use uc_sim::SimTime;

const UNMAPPED: u64 = u64::MAX;

/// A deterministic, one-shot map-corruption fault for invariant testing.
///
/// Only exists with the test-only `fault-injection` feature; the invariant
/// property suites arm one of these and prove the [`Contract`] audit
/// catches the corruption with a shrunk minimal repro.
#[cfg(feature = "fault-injection")]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MapFault {
    /// The next host write updates L2P but leaves the reverse map stale —
    /// the classic torn-map-update bug.
    DropReverseMapping,
    /// The next host write forgets the block's valid-count increment,
    /// breaking valid-count conservation.
    SkipValidCount,
}

/// A page-level flash translation layer over a [`FlashArray`].
///
/// Host writes are striped round-robin across dies (one open "host
/// frontier" block per die); GC relocations stay within their die (one open
/// "GC frontier" block per die). All NAND operations — host, relocation and
/// erase — share the same die/channel timelines, so GC pressure shows up as
/// foreground latency exactly as on a real drive.
///
/// # Page-granular interface
///
/// The FTL works in whole pages; callers (the SSD device model) split byte
/// requests into page operations.
///
/// # Example
///
/// ```
/// use uc_flash::{FlashGeometry, FlashTiming};
/// use uc_ftl::{Ftl, FtlConfig};
/// use uc_sim::SimTime;
///
/// let g = FlashGeometry::new(2, 2, 1, 16, 64, 4096)?;
/// let mut ftl = Ftl::new(FtlConfig::new(g, FlashTiming::mlc()));
/// let mut now = SimTime::ZERO;
/// for lpn in 0..100 {
///     now = ftl.write_page(now, lpn);
/// }
/// assert_eq!(ftl.stats().host_pages_written, 100);
/// assert!(ftl.stats().write_amplification() >= 1.0);
/// # Ok::<(), uc_flash::GeometryError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    config: FtlConfig,
    flash: FlashArray,
    /// Logical page -> physical page (or `UNMAPPED`).
    l2p: Vec<u64>,
    /// Physical page -> logical page (or `UNMAPPED` if the page is stale).
    p2l: Vec<u64>,
    /// All block states, indexed `die * blocks_per_die + slot`.
    blocks: Vec<BlockState>,
    /// Per-die stacks of free block slots.
    free: Vec<Vec<u32>>,
    /// Per-die open block receiving host writes.
    open_host: Vec<u32>,
    /// Per-die open block receiving GC relocations.
    open_gc: Vec<u32>,
    /// Round-robin die cursor for host writes.
    cursor: u32,
    /// Monotonic open-sequence counter (GC age reference).
    seq: u64,
    stats: FtlStats,
    /// One-shot fault armed by the invariant test suites.
    #[cfg(feature = "fault-injection")]
    armed_fault: Option<MapFault>,
}

/// The complete serializable state of an [`Ftl`]: the sanitized
/// configuration, the flash-array timelines, the full logical↔physical
/// mapping, per-block bookkeeping, free pools, both write frontiers, the
/// striping cursor, the GC age counter and the activity counters.
///
/// Captured by [`Ftl::checkpoint`]; [`Ftl::restore`] rebuilds an FTL whose
/// every future write, read, trim and GC decision is identical to the
/// original's.
#[derive(Debug, Clone, PartialEq)]
pub struct FtlCheckpoint {
    /// The (sanitized) configuration the FTL was built with.
    pub config: FtlConfig,
    /// Die/channel timelines and NAND operation counters.
    pub flash: FlashArraySnapshot,
    /// Logical page → physical page map (`u64::MAX` = unmapped).
    pub l2p: Vec<u64>,
    /// Physical page → logical page map (`u64::MAX` = stale).
    pub p2l: Vec<u64>,
    /// All block states, indexed `die * blocks_per_die + slot`.
    pub blocks: Vec<BlockState>,
    /// Per-die stacks of free block slots.
    pub free: Vec<Vec<u32>>,
    /// Per-die open block receiving host writes.
    pub open_host: Vec<u32>,
    /// Per-die open block receiving GC relocations.
    pub open_gc: Vec<u32>,
    /// Round-robin die cursor for host writes.
    pub cursor: u32,
    /// Monotonic open-sequence counter (GC age reference).
    pub seq: u64,
    /// Activity counters.
    pub stats: FtlStats,
}

impl Ftl {
    /// Builds an FTL with every block free except one host frontier and one
    /// GC frontier per die.
    ///
    /// Watermarks are sanitized (trigger ≥ 3; trigger < target ≤ trigger+3)
    /// and the logical capacity is clamped so that, even with every logical
    /// page mapped, each die retains at least `target` free blocks — the
    /// invariant that lets GC always terminate. On realistic geometries the
    /// over-provisioning fraction is the binding constraint; on very small
    /// test geometries the watermark clamp may shave extra capacity.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has too few blocks per die to hold the two
    /// write frontiers plus the GC watermark (needs `blocks_per_die >
    /// target + 3`).
    pub fn new(config: FtlConfig) -> Self {
        // Sanitization and the logical-capacity clamp live on `FtlConfig`
        // so the checkpoint decoder can validate against the same math.
        let config = config.sanitized();
        let g = config.geometry;
        let dies = g.total_dies() as usize;
        let bpd = g.blocks_per_die();
        let total_blocks = g.total_blocks() as usize;
        assert!(
            bpd > config.gc_target_free + 3,
            "geometry too small: {} blocks/die cannot hold frontiers + watermark {}",
            bpd,
            config.gc_target_free
        );
        let logical = config.effective_logical_pages() as usize;

        let mut free: Vec<Vec<u32>> = (0..dies)
            // Stacks pop from the back; push slots in reverse so low slots
            // are used first (purely cosmetic determinism).
            .map(|_| (0..bpd).rev().collect())
            .collect();
        let mut blocks = vec![BlockState::default(); total_blocks];
        let mut open_host = Vec::with_capacity(dies);
        let mut open_gc = Vec::with_capacity(dies);
        let mut seq = 0u64;
        for die_free in free.iter_mut() {
            let host = die_free.pop().expect("geometry has at least 2 blocks/die");
            let gc = die_free.pop().expect("geometry has at least 2 blocks/die");
            open_host.push(host);
            open_gc.push(gc);
            seq += 2;
        }
        for (die, (&h, &g_)) in open_host.iter().zip(&open_gc).enumerate() {
            blocks[die * bpd as usize + h as usize].opened_seq = 0;
            blocks[die * bpd as usize + g_ as usize].opened_seq = 1;
        }

        Ftl {
            flash: FlashArray::new(g, config.timing),
            l2p: vec![UNMAPPED; logical],
            p2l: vec![UNMAPPED; g.total_pages() as usize],
            blocks,
            free,
            open_host,
            open_gc,
            cursor: 0,
            seq,
            stats: FtlStats::default(),
            config,
            #[cfg(feature = "fault-injection")]
            armed_fault: None,
        }
    }

    /// Arms a one-shot [`MapFault`]: the next host write executes with the
    /// corresponding bookkeeping bug. Test-only.
    #[cfg(feature = "fault-injection")]
    pub fn arm_fault(&mut self, fault: MapFault) {
        self.armed_fault = Some(fault);
    }

    /// The configuration this FTL was built with.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Host-visible pages.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.config.geometry.page_size()
    }

    /// Activity counters.
    pub fn stats(&self) -> FtlStats {
        self.stats
    }

    /// Raw flash operation counters.
    pub fn flash_stats(&self) -> FlashOpStats {
        self.flash.stats()
    }

    /// Total free blocks across all dies.
    pub fn free_blocks(&self) -> u64 {
        self.free.iter().map(|f| f.len() as u64).sum()
    }

    /// Wear summary over all blocks.
    pub fn wear(&self) -> WearStats {
        WearStats::from_counts(self.blocks.iter().map(|b| b.erase_count))
    }

    /// Writes one logical page, returning the completion instant of its
    /// program operation (including any GC stall it absorbed).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn write_page(&mut self, now: SimTime, lpn: u64) -> SimTime {
        assert!(
            (lpn as usize) < self.l2p.len(),
            "lpn {lpn} out of range ({} logical pages)",
            self.l2p.len()
        );
        let die = self.cursor;
        self.cursor = (self.cursor + 1) % self.config.geometry.total_dies();

        self.ensure_free_blocks(now, die);

        // Invalidate the previous location, if any.
        let old = self.l2p[lpn as usize];
        if old != UNMAPPED {
            self.invalidate_ppn(old);
        }

        let ppn = self.allocate_host_page(die);
        self.l2p[lpn as usize] = ppn;
        self.p2l[ppn as usize] = lpn;

        #[cfg(feature = "fault-injection")]
        if let Some(fault) = self.armed_fault.take() {
            match fault {
                MapFault::DropReverseMapping => self.p2l[ppn as usize] = UNMAPPED,
                MapFault::SkipValidCount => {
                    // Undo the increment `allocate_host_page` just made.
                    let block = (ppn / self.ppb() as u64) as usize;
                    self.blocks[block].valid -= 1;
                }
            }
        }

        // Contract hook (O(1)): the map update we just made round-trips.
        uc_invariant::enforce(|| {
            ensure!(
                self,
                "map-update-roundtrip",
                self.p2l[ppn as usize] == lpn,
                "write lpn {lpn} -> ppn {ppn}, but reverse map holds {:#x}",
                self.p2l[ppn as usize]
            );
            Ok(())
        });

        self.stats.host_pages_written += 1;
        self.flash.program_page(now, die)
    }

    /// Reads one logical page, returning the completion instant.
    ///
    /// Reads of never-written pages still cost a flash access (the device
    /// cannot know the page is unmapped until it consults the out-of-band
    /// area in older parts; timing-wise we charge a read on a
    /// deterministically-hashed die).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn read_page(&mut self, now: SimTime, lpn: u64) -> SimTime {
        assert!(
            (lpn as usize) < self.l2p.len(),
            "lpn {lpn} out of range ({} logical pages)",
            self.l2p.len()
        );
        let ppn = self.l2p[lpn as usize];
        let die = if ppn == UNMAPPED {
            (lpn.wrapping_mul(0x9E37_79B9_7F4A_7C15) % self.config.geometry.total_dies() as u64)
                as u32
        } else {
            self.die_of_ppn(ppn)
        };
        self.stats.host_pages_read += 1;
        self.flash.read_page(now, die)
    }

    /// Invalidates a logical page without writing (TRIM/discard).
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range.
    pub fn trim(&mut self, lpn: u64) {
        assert!((lpn as usize) < self.l2p.len(), "lpn out of range");
        let old = self.l2p[lpn as usize];
        if old != UNMAPPED {
            self.invalidate_ppn(old);
            self.l2p[lpn as usize] = UNMAPPED;
            self.stats.pages_trimmed += 1;

            // Contract hook (O(1)): both directions of the dead mapping
            // are gone.
            uc_invariant::enforce(|| {
                ensure!(
                    self,
                    "trim-unmaps-both-directions",
                    self.l2p[lpn as usize] == UNMAPPED && self.p2l[old as usize] == UNMAPPED,
                    "trim of lpn {lpn} left l2p {:#x} / p2l[{old}] {:#x}",
                    self.l2p[lpn as usize],
                    self.p2l[old as usize]
                );
                Ok(())
            });
        }
    }

    /// `true` if `lpn` currently maps to a physical page.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.l2p.get(lpn as usize).is_some_and(|&p| p != UNMAPPED)
    }

    /// Count of currently mapped logical pages.
    pub fn mapped_pages(&self) -> u64 {
        self.l2p.iter().filter(|&&p| p != UNMAPPED).count() as u64
    }

    /// Sum of valid counts over all blocks (must equal
    /// [`Ftl::mapped_pages`]; exposed for invariant testing).
    pub fn total_valid_pages(&self) -> u64 {
        self.blocks.iter().map(|b| b.valid as u64).sum()
    }

    /// Captures the FTL's complete state.
    pub fn checkpoint(&self) -> FtlCheckpoint {
        FtlCheckpoint {
            config: self.config,
            flash: self.flash.snapshot(),
            l2p: self.l2p.clone(),
            p2l: self.p2l.clone(),
            blocks: self.blocks.clone(),
            free: self.free.clone(),
            open_host: self.open_host.clone(),
            open_gc: self.open_gc.clone(),
            cursor: self.cursor,
            seq: self.seq,
            stats: self.stats,
        }
    }

    /// Rebuilds an FTL that continues exactly where `checkpoint` was
    /// taken.
    ///
    /// The checkpoint's configuration is used verbatim (it was already
    /// sanitized by [`Ftl::new`] when the original FTL was built).
    ///
    /// # Panics
    ///
    /// Panics if the checkpoint's vector lengths disagree with its
    /// geometry (a corrupted checkpoint).
    pub fn restore(checkpoint: FtlCheckpoint) -> Self {
        let g = checkpoint.config.geometry;
        let dies = g.total_dies() as usize;
        assert_eq!(
            checkpoint.l2p.len() as u64,
            checkpoint.config.effective_logical_pages(),
            "checkpoint l2p length disagrees with configuration"
        );
        assert_eq!(
            checkpoint.p2l.len(),
            g.total_pages() as usize,
            "checkpoint p2l length disagrees with geometry"
        );
        assert_eq!(
            checkpoint.blocks.len(),
            g.total_blocks() as usize,
            "checkpoint block count disagrees with geometry"
        );
        assert!(
            checkpoint.free.len() == dies
                && checkpoint.open_host.len() == dies
                && checkpoint.open_gc.len() == dies,
            "checkpoint per-die state disagrees with geometry"
        );
        Ftl {
            flash: FlashArray::restore(checkpoint.flash),
            l2p: checkpoint.l2p,
            p2l: checkpoint.p2l,
            blocks: checkpoint.blocks,
            free: checkpoint.free,
            open_host: checkpoint.open_host,
            open_gc: checkpoint.open_gc,
            cursor: checkpoint.cursor,
            seq: checkpoint.seq,
            stats: checkpoint.stats,
            config: checkpoint.config,
            #[cfg(feature = "fault-injection")]
            armed_fault: None,
        }
    }

    // ---- internals ----------------------------------------------------

    fn bpd(&self) -> u32 {
        self.config.geometry.blocks_per_die()
    }

    fn ppb(&self) -> u32 {
        self.config.geometry.pages_per_block()
    }

    fn block_index(&self, die: u32, slot: u32) -> usize {
        (die * self.bpd() + slot) as usize
    }

    fn ppn_of(&self, die: u32, slot: u32, page: u32) -> u64 {
        (self.block_index(die, slot) as u64) * self.ppb() as u64 + page as u64
    }

    fn die_of_ppn(&self, ppn: u64) -> u32 {
        ((ppn / self.ppb() as u64) / self.bpd() as u64) as u32
    }

    fn invalidate_ppn(&mut self, ppn: u64) {
        let block = (ppn / self.ppb() as u64) as usize;
        debug_assert!(self.blocks[block].valid > 0, "double invalidation");
        self.blocks[block].valid -= 1;
        self.p2l[ppn as usize] = UNMAPPED;
    }

    /// Takes the next page of `die`'s host frontier, rotating to a fresh
    /// block when it fills.
    fn allocate_host_page(&mut self, die: u32) -> u64 {
        let slot = self.open_host[die as usize];
        let idx = self.block_index(die, slot);
        let page = self.blocks[idx].written;
        self.blocks[idx].written += 1;
        self.blocks[idx].valid += 1;
        if self.blocks[idx].is_full(self.ppb()) {
            let fresh = self.free[die as usize]
                .pop()
                .expect("ensure_free_blocks keeps at least one free block");
            self.open_host[die as usize] = fresh;
            let fidx = self.block_index(die, fresh);
            self.blocks[fidx].opened_seq = self.seq;
            self.seq += 1;
        }
        self.ppn_of(die, slot, page)
    }

    /// Runs GC on `die` until the free pool recovers to the target
    /// watermark (or no victim yields net space).
    fn ensure_free_blocks(&mut self, now: SimTime, die: u32) {
        if (self.free[die as usize].len() as u32) > self.config.gc_trigger_free {
            return;
        }
        let mut guard = self.bpd() * 2;
        while (self.free[die as usize].len() as u32) < self.config.gc_target_free && guard > 0 {
            guard -= 1;
            if !self.gc_one_block(now, die) {
                break;
            }
        }
    }

    /// Collects one victim block on `die`. Returns `false` if no victim
    /// exists or the best victim would free no space.
    fn gc_one_block(&mut self, now: SimTime, die: u32) -> bool {
        let bpd = self.bpd();
        let ppb = self.ppb();
        let host_open = self.open_host[die as usize];
        let gc_open = self.open_gc[die as usize];
        let base = self.block_index(die, 0);

        let pick_with = |blocks: &[BlockState], policy: GcPolicy, seq: u64| {
            let candidates = (0..bpd).filter_map(|slot| {
                if slot == host_open || slot == gc_open {
                    return None;
                }
                let b = &blocks[base + slot as usize];
                if b.is_full(ppb) {
                    Some((slot as usize, b))
                } else {
                    None
                }
            });
            policy.pick(candidates, ppb, seq)
        };

        let mut victim_slot = match pick_with(&self.blocks, self.config.gc_policy, self.seq) {
            Some(slot) => slot as u32,
            None => return false,
        };
        // A fully-valid victim frees no space; fall back to greedy (real
        // FIFO/cost-benefit firmwares skip such blocks too).
        if self.blocks[base + victim_slot as usize].valid >= ppb {
            victim_slot = match pick_with(&self.blocks, GcPolicy::Greedy, self.seq) {
                Some(slot) => slot as u32,
                None => return false,
            };
            if self.blocks[base + victim_slot as usize].valid >= ppb {
                return false;
            }
        }
        self.stats.gc_invocations += 1;

        let victim_idx = base + victim_slot as usize;

        // Relocate every live page of the victim into the GC frontier.
        let victim_written = self.blocks[victim_idx].written;
        for page in 0..victim_written {
            let ppn = self.ppn_of(die, victim_slot, page);
            let lpn = self.p2l[ppn as usize];
            if lpn == UNMAPPED {
                continue;
            }
            self.flash.read_page(now, die);
            let new_ppn = self.allocate_gc_page(die);
            self.flash.program_page(now, die);
            // Rebind the logical page.
            self.p2l[ppn as usize] = UNMAPPED;
            self.l2p[lpn as usize] = new_ppn;
            self.p2l[new_ppn as usize] = lpn;
            self.blocks[victim_idx].valid -= 1;
            self.stats.gc_pages_relocated += 1;

            // Contract hook (O(1)): the relocation rebound the logical
            // page and retired the old physical page.
            uc_invariant::enforce(|| {
                ensure!(
                    self,
                    "gc-relocation-rebinds",
                    self.l2p[lpn as usize] == new_ppn
                        && self.p2l[new_ppn as usize] == lpn
                        && self.p2l[ppn as usize] == UNMAPPED,
                    "GC moved lpn {lpn}: ppn {ppn} -> {new_ppn}, maps now \
                     l2p {:#x} / p2l[new] {:#x} / p2l[old] {:#x}",
                    self.l2p[lpn as usize],
                    self.p2l[new_ppn as usize],
                    self.p2l[ppn as usize]
                );
                Ok(())
            });
        }
        // Contract hook (O(1)): a collected victim holds no live data.
        uc_invariant::enforce(|| {
            ensure!(
                self,
                "gc-victim-drained",
                self.blocks[victim_idx].valid == 0,
                "victim block {victim_idx} still has {} valid pages after GC",
                self.blocks[victim_idx].valid
            );
            Ok(())
        });

        // Erase and return the victim to the free pool.
        self.flash.erase_block(now, die);
        self.blocks[victim_idx].erase();
        self.free[die as usize].push(victim_slot);
        self.stats.gc_blocks_erased += 1;
        true
    }

    /// Takes the next page of `die`'s GC frontier, rotating when full.
    fn allocate_gc_page(&mut self, die: u32) -> u64 {
        let slot = self.open_gc[die as usize];
        let idx = self.block_index(die, slot);
        let page = self.blocks[idx].written;
        self.blocks[idx].written += 1;
        self.blocks[idx].valid += 1;
        if self.blocks[idx].is_full(self.ppb()) {
            let fresh = self.free[die as usize]
                .pop()
                .expect("GC reserve guarantees a free block for the GC frontier");
            self.open_gc[die as usize] = fresh;
            let fidx = self.block_index(die, fresh);
            self.blocks[fidx].opened_seq = self.seq;
            self.seq += 1;
        }
        self.ppn_of(die, slot, page)
    }
}

/// Full structural audit of the FTL mapping machinery. O(physical pages);
/// called by the invariant property suites after every op, and manually
/// from debuggers — never from the per-op hot path.
impl Contract for Ftl {
    fn contract_name(&self) -> &'static str {
        "uc-ftl/Ftl"
    }

    fn check(&self) -> Result<(), Violation> {
        let ppb = self.ppb();
        // Forward direction: every mapped logical page round-trips.
        for (lpn, &ppn) in self.l2p.iter().enumerate() {
            if ppn == UNMAPPED {
                continue;
            }
            ensure!(
                self,
                "l2p-in-range",
                (ppn as usize) < self.p2l.len(),
                "lpn {lpn} maps to ppn {ppn} beyond {} physical pages",
                self.p2l.len()
            );
            ensure!(
                self,
                "l2p-p2l-bijective",
                self.p2l[ppn as usize] == lpn as u64,
                "lpn {lpn} -> ppn {ppn}, but reverse map holds {:#x}",
                self.p2l[ppn as usize]
            );
        }
        // Reverse direction: every live physical page round-trips.
        for (ppn, &lpn) in self.p2l.iter().enumerate() {
            if lpn == UNMAPPED {
                continue;
            }
            ensure!(
                self,
                "p2l-in-range",
                (lpn as usize) < self.l2p.len(),
                "ppn {ppn} claims lpn {lpn} beyond {} logical pages",
                self.l2p.len()
            );
            ensure!(
                self,
                "p2l-l2p-bijective",
                self.l2p[lpn as usize] == ppn as u64,
                "ppn {ppn} claims lpn {lpn}, but forward map holds {:#x}",
                self.l2p[lpn as usize]
            );
        }
        // Conservation: block valid counts account for exactly the mapped
        // pages — no leaked and no phantom liveness.
        let mapped = self.mapped_pages();
        let valid = self.total_valid_pages();
        ensure!(
            self,
            "valid-count-conservation",
            mapped == valid,
            "{mapped} mapped logical pages but block valid counts sum to {valid}"
        );
        let live = self.p2l.iter().filter(|&&l| l != UNMAPPED).count() as u64;
        ensure!(
            self,
            "live-ppn-conservation",
            live == mapped,
            "{mapped} mapped logical pages but {live} live physical pages"
        );
        // Per-block sanity.
        for (i, b) in self.blocks.iter().enumerate() {
            ensure!(
                self,
                "block-valid-le-written",
                b.valid <= b.written,
                "block {i}: {} valid pages exceed {} written",
                b.valid,
                b.written
            );
            ensure!(
                self,
                "block-written-le-capacity",
                b.written <= ppb,
                "block {i}: {} written pages exceed block capacity {ppb}",
                b.written
            );
        }
        // Free blocks are blank (erase really reset them).
        for (die, stack) in self.free.iter().enumerate() {
            for &slot in stack {
                let b = &self.blocks[die * self.bpd() as usize + slot as usize];
                ensure!(
                    self,
                    "free-block-blank",
                    b.written == 0 && b.valid == 0,
                    "free block die {die} slot {slot} has written {} / valid {}",
                    b.written,
                    b.valid
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_flash::{FlashGeometry, FlashTiming};

    fn small_ftl() -> Ftl {
        // 2 channels x 2 dies, 16 blocks/die, 64 pages, 4 KiB pages.
        let g = FlashGeometry::new(2, 2, 1, 16, 64, 4096).unwrap();
        Ftl::new(FtlConfig::new(g, FlashTiming::mlc()).with_over_provisioning(0.2))
    }

    /// A geometry large enough that over-provisioning (not the watermark
    /// clamp) bounds logical capacity, so GC behaviour is realistic.
    fn gc_ftl(op: f64, policy: GcPolicy) -> Ftl {
        let g = FlashGeometry::new(2, 2, 1, 64, 64, 4096).unwrap();
        Ftl::new(
            FtlConfig::new(g, FlashTiming::mlc())
                .with_over_provisioning(op)
                .with_gc_policy(policy),
        )
    }

    #[test]
    fn read_your_writes_mapping() {
        let mut ftl = small_ftl();
        let mut now = SimTime::ZERO;
        for lpn in 0..50 {
            now = ftl.write_page(now, lpn);
        }
        for lpn in 0..50 {
            assert!(ftl.is_mapped(lpn));
        }
        assert!(!ftl.is_mapped(50));
        assert_eq!(ftl.mapped_pages(), 50);
        assert_eq!(ftl.total_valid_pages(), 50);
    }

    #[test]
    fn overwrite_invalidates_old_location() {
        let mut ftl = small_ftl();
        let mut now = SimTime::ZERO;
        for _ in 0..10 {
            now = ftl.write_page(now, 7);
        }
        assert_eq!(ftl.mapped_pages(), 1);
        assert_eq!(ftl.total_valid_pages(), 1);
        assert_eq!(ftl.stats().host_pages_written, 10);
    }

    #[test]
    fn trim_unmaps() {
        let mut ftl = small_ftl();
        ftl.write_page(SimTime::ZERO, 3);
        ftl.trim(3);
        assert!(!ftl.is_mapped(3));
        assert_eq!(ftl.total_valid_pages(), 0);
        assert_eq!(ftl.stats().pages_trimmed, 1);
        // Trimming an unmapped page is a no-op.
        ftl.trim(3);
        assert_eq!(ftl.stats().pages_trimmed, 1);
    }

    #[test]
    fn writes_stripe_across_dies() {
        let mut ftl = small_ftl();
        // 4 dies on 2 channels (die % 2): writes 0 and 1 proceed fully in
        // parallel on separate channels; writes 2 and 3 reuse the channels,
        // queueing only behind the bus transfer, not the whole program.
        let f: Vec<SimTime> = (0..4).map(|l| ftl.write_page(SimTime::ZERO, l)).collect();
        assert_eq!(f[0], f[1]);
        assert_eq!(f[2], f[3]);
        let xfer = FlashTiming::mlc().bus_time(4096);
        assert_eq!(f[2], f[0] + xfer);
    }

    #[test]
    fn sustained_overwrites_trigger_gc_and_wa_above_one() {
        let mut ftl = gc_ftl(0.08, GcPolicy::Greedy);
        let logical = ftl.logical_pages();
        let mut now = SimTime::ZERO;
        // Write 3x the logical space with uniform random overwrites.
        let mut state = 0xDEADBEEFu64;
        for _ in 0..(logical * 3) {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let lpn = state % logical;
            now = ftl.write_page(now, lpn);
        }
        let s = ftl.stats();
        assert!(s.gc_blocks_erased > 0, "GC must have run");
        assert!(
            s.write_amplification() > 1.0,
            "random overwrites must amplify writes (wa = {})",
            s.write_amplification()
        );
        // Mapping stays coherent through GC.
        assert_eq!(ftl.mapped_pages(), ftl.total_valid_pages());
        // Free pool never exhausted.
        assert!(ftl.free_blocks() > 0);
    }

    #[test]
    fn sequential_overwrites_have_low_wa() {
        let mut ftl = small_ftl();
        let logical = ftl.logical_pages();
        let mut now = SimTime::ZERO;
        for round in 0..3 {
            for lpn in 0..logical {
                now = ftl.write_page(now, lpn);
            }
            let _ = round;
        }
        let wa = ftl.stats().write_amplification();
        assert!(
            wa < 1.2,
            "sequential overwrite should produce near-1 WA, got {wa}"
        );
    }

    #[test]
    fn gc_respects_policy_choice() {
        for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
            let g = FlashGeometry::new(2, 2, 1, 16, 64, 4096).unwrap();
            let mut ftl = Ftl::new(
                FtlConfig::new(g, FlashTiming::mlc())
                    .with_over_provisioning(0.2)
                    .with_gc_policy(policy),
            );
            let logical = ftl.logical_pages();
            let mut now = SimTime::ZERO;
            let mut state = 1u64;
            for _ in 0..(logical * 2) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                now = ftl.write_page(now, state % logical);
            }
            assert_eq!(ftl.mapped_pages(), ftl.total_valid_pages(), "{policy}");
            assert!(ftl.stats().gc_blocks_erased > 0, "{policy}");
        }
    }

    #[test]
    fn greedy_wa_not_worse_than_fifo() {
        let run = |policy: GcPolicy| {
            let mut ftl = gc_ftl(0.08, policy);
            let logical = ftl.logical_pages();
            let mut now = SimTime::ZERO;
            let mut state = 99u64;
            for _ in 0..(logical * 4) {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                now = ftl.write_page(now, state % logical);
            }
            ftl.stats().write_amplification()
        };
        let greedy = run(GcPolicy::Greedy);
        let fifo = run(GcPolicy::Fifo);
        assert!(
            greedy <= fifo + 0.05,
            "greedy WA {greedy} should not exceed FIFO WA {fifo}"
        );
    }

    #[test]
    fn reads_cost_flash_time_even_when_unmapped() {
        let mut ftl = small_ftl();
        let t = ftl.read_page(SimTime::ZERO, 123);
        assert!(t > SimTime::ZERO);
        assert_eq!(ftl.stats().host_pages_read, 1);
    }

    #[test]
    fn wear_accumulates_under_gc() {
        let mut ftl = gc_ftl(0.1, GcPolicy::Greedy);
        let logical = ftl.logical_pages();
        let mut now = SimTime::ZERO;
        let mut state = 5u64;
        for _ in 0..(logical * 4) {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            now = ftl.write_page(now, state % logical);
        }
        let wear = ftl.wear();
        assert!(wear.max_erases > 0);
        assert!(wear.mean_erases > 0.0);
    }

    #[test]
    fn checkpoint_restore_continues_identically() {
        // Drive a GC-heavy workload to a midpoint, checkpoint, and verify
        // the restored FTL makes byte-identical scheduling and GC
        // decisions from there on.
        let mut a = gc_ftl(0.08, GcPolicy::Greedy);
        let logical = a.logical_pages();
        let mut now = SimTime::ZERO;
        let mut state = 0x5EEDu64;
        let next = |state: &mut u64| {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            *state % logical
        };
        for _ in 0..(logical * 2) {
            now = a.write_page(now, next(&mut state));
        }
        let cp = a.checkpoint();
        let mut b = Ftl::restore(cp.clone());
        assert_eq!(b.checkpoint(), cp, "round trip is lossless");
        let mut state_b = state;
        let mut now_b = now;
        for _ in 0..(logical * 2) {
            now = a.write_page(now, next(&mut state));
            now_b = b.write_page(now_b, next(&mut state_b));
            assert_eq!(now, now_b);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.wear(), b.wear());
        assert_eq!(a.free_blocks(), b.free_blocks());
        assert_eq!(a.checkpoint(), b.checkpoint());
    }

    #[test]
    #[should_panic(expected = "disagrees with geometry")]
    fn corrupted_checkpoint_rejected() {
        let mut cp = small_ftl().checkpoint();
        cp.blocks.pop();
        let _ = Ftl::restore(cp);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_write_panics() {
        let mut ftl = small_ftl();
        let bad = ftl.logical_pages();
        ftl.write_page(SimTime::ZERO, bad);
    }
}
