//! The fleet simulation: N tenants interleaved onto a pool of shared
//! devices, epoch by epoch, with checkpoint-based rebalancing.
//!
//! Execution is *epoch-driven*: the arrival horizon is cut into equal
//! windows, and within each window every device independently merges its
//! residents' budget-granted arrival streams
//! ([`merge_streams`](uc_trace::merge_streams)) and drives them through
//! one shared queue-pair doorbell. Epoch boundaries are the fleet's only
//! synchronization points — where contracts are audited, interference is
//! cut into [`EpochStat`]s, the rebalancer plans, and (in the durable
//! runner) the whole fleet freezes into a resumable checkpoint.
//!
//! Everything here is a pure function of [`FleetConfig`] and the device
//! pool: two runs of the same fleet produce byte-identical snapshots and
//! reports.

use crate::metrics::{jain_index, EpochStat, FleetReport, TenantMetrics, TenantSummary};
use crate::placement::{MigrationAudit, MigrationRecord, Placement};
use crate::rebalance::RebalancePolicy;
use crate::tenant::{ShapeMix, TenantSpec};
use uc_blockdev::{
    CheckpointDevice, DeviceCheckpoint, IoBatch, IoError, IoRequest, SessionId, SharedDevice,
};
use uc_invariant::Contract;
use uc_metrics::LatencyHistogram;
use uc_obs::{CounterId, FlightRecorder, GaugeId, HistId, MetricsRegistry, ObsReport, ObsSnapshot};
use uc_persist::Encoder;
use uc_sim::{BucketSet, SimDuration, SimTime, TokenBucket, TokenBucketSnapshot};
use uc_trace::merge_streams;
use uc_workload::TraceEntry;

/// A device that can serve a fleet: block I/O plus the checkpoint seam,
/// movable across the executor boundary.
pub type FleetDevice = Box<dyn CheckpointDevice + Send>;

/// Errors from feeding a fed-mode fleet ([`FleetSim::push_entries`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedError {
    /// The sim was built with [`FleetSim::new`], which synthesizes its
    /// own tenant traces — external entries are not accepted.
    NotFed,
    /// Every epoch has already run; there is nothing left to feed.
    Finished,
    /// No such tenant in the fleet.
    UnknownTenant {
        /// The offending tenant id.
        tenant: u32,
    },
    /// An entry's arrival instant regressed below the tenant's last
    /// pushed entry — fed streams must be monotone like generated ones.
    NonMonotone {
        /// The offending tenant id.
        tenant: u32,
    },
    /// An entry reached past the tenant's region span.
    OutOfRegion {
        /// The offending tenant id.
        tenant: u32,
        /// First byte past the entry's range.
        end: u64,
        /// The per-tenant region span.
        span: u64,
    },
}

impl std::fmt::Display for FeedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeedError::NotFed => write!(f, "fleet was not built in fed mode"),
            FeedError::Finished => write!(f, "fleet already finished"),
            FeedError::UnknownTenant { tenant } => write!(f, "unknown tenant {tenant}"),
            FeedError::NonMonotone { tenant } => {
                write!(f, "tenant {tenant}: pushed entries regress in time")
            }
            FeedError::OutOfRegion { tenant, end, span } => write!(
                f,
                "tenant {tenant}: entry reaches byte {end} past the {span}-byte region"
            ),
        }
    }
}

impl std::error::Error for FeedError {}

/// Parameters of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetConfig {
    /// Number of tenants.
    pub tenants: usize,
    /// Number of shared devices in the pool.
    pub devices: usize,
    /// Arrival-shape population mix.
    pub mix: ShapeMix,
    /// Arrival horizon per tenant.
    pub duration: SimDuration,
    /// Number of epochs the horizon is cut into (each ends with a
    /// contract audit and an optional rebalance).
    pub epochs: usize,
    /// Bytes per I/O.
    pub io_size: u32,
    /// Fleet seed: drives every tenant's synthesis.
    pub seed: u64,
    /// Rebalancing policy; `None` pins tenants to their initial homes.
    pub rebalance: Option<RebalancePolicy>,
}

impl FleetConfig {
    /// A fleet of `tenants` on `devices` with the default mix, a 200 ms
    /// horizon in 4 epochs, 4 KiB I/O, and no rebalancing.
    pub fn new(tenants: usize, devices: usize) -> Self {
        FleetConfig {
            tenants,
            devices,
            mix: ShapeMix::default_mix(),
            duration: SimDuration::from_millis(200),
            epochs: 4,
            io_size: 4096,
            seed: 0xF1EE7,
            rebalance: None,
        }
    }

    /// Replaces the shape mix.
    pub fn with_mix(mut self, mix: ShapeMix) -> Self {
        self.mix = mix;
        self
    }

    /// Replaces the arrival horizon.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Replaces the epoch count.
    pub fn with_epochs(mut self, epochs: usize) -> Self {
        self.epochs = epochs;
        self
    }

    /// Replaces the fleet seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables rebalancing under `policy`.
    pub fn with_rebalance(mut self, policy: RebalancePolicy) -> Self {
        self.rebalance = Some(policy);
        self
    }
}

/// The complete resumable state of a [`FleetSim`], minus the devices
/// (whose own checkpoints the durable layer stores alongside).
///
/// Tenant *traces* are deliberately absent: they are regenerated from the
/// config on resume (same seed, same trace), so checkpoints stay small.
#[derive(Debug, Clone)]
pub struct FleetSnapshot {
    /// Completed epochs.
    pub epoch: u64,
    /// The tenant-to-slot assignment.
    pub placement: Placement,
    /// Per-tenant replay cursor (next trace entry index).
    pub cursors: Vec<u64>,
    /// Per-tenant arrival floor (migration-tail deferral).
    pub floors: Vec<SimTime>,
    /// Per-tenant high-water mark of written bytes within the region.
    pub written_highs: Vec<u64>,
    /// Per-tenant measurements.
    pub metrics: Vec<TenantMetrics>,
    /// Per-tenant budget state.
    pub buckets: Vec<TokenBucketSnapshot>,
    /// Per-epoch cuts so far.
    pub epoch_stats: Vec<EpochStat>,
    /// Completed migrations so far.
    pub migrations: Vec<MigrationRecord>,
    /// Rendered contract violations found so far.
    pub violations: Vec<String>,
    /// Per-device shared-queue heads (the doorbell clamp floor a thawed
    /// device must resume with).
    pub queue_heads: Vec<SimTime>,
    /// Last completion instant observed so far.
    pub finished_at: SimTime,
}

/// Extent-copy chunk size during migration.
const COPY_CHUNK: u64 = 1 << 20;

/// Pre-registered telemetry handles for the fleet's hot paths.
///
/// Registered once at construction (and again, identically, on resume) so
/// every epoch's recording is index-indexed — no name formatting while
/// streams are being driven.
struct FleetObsIds {
    epochs: CounterId,
    ios: CounterId,
    bytes: CounterId,
    throttle_events: CounterId,
    throttled_ns: CounterId,
    migrations: CounterId,
    migration_bytes: CounterId,
    violations: CounterId,
    grant_wait: HistId,
    latency: HistId,
    fairness_milli: GaugeId,
}

impl FleetObsIds {
    fn register(obs: &mut MetricsRegistry) -> Self {
        FleetObsIds {
            epochs: obs.counter("fleet.epochs"),
            ios: obs.counter("fleet.ios"),
            bytes: obs.counter("fleet.bytes"),
            throttle_events: obs.counter("fleet.throttle_events"),
            throttled_ns: obs.counter("fleet.throttled_ns"),
            migrations: obs.counter("fleet.migrations"),
            migration_bytes: obs.counter("fleet.migration_bytes"),
            violations: obs.counter("fleet.violations"),
            grant_wait: obs.hist("fleet.grant_wait_ns"),
            latency: obs.hist("fleet.io_latency_ns"),
            fairness_milli: obs.gauge("fleet.last_fairness_milli"),
        }
    }
}

struct TenantRun {
    spec: TenantSpec,
    entries: Vec<TraceEntry>,
    cursor: usize,
    floor: SimTime,
    written_high: u64,
    metrics: TenantMetrics,
}

/// A live fleet: devices, tenants, budgets, placement, and the epoch
/// clock. Drive it with [`run`](FleetSim::run) or epoch by epoch with
/// [`run_epoch`](FleetSim::run_epoch) (the durable runner checkpoints
/// between epochs).
pub struct FleetSim {
    config: FleetConfig,
    devices: Vec<SharedDevice<FleetDevice>>,
    placement: Placement,
    tenants: Vec<TenantRun>,
    buckets: BucketSet,
    epoch: usize,
    epoch_stats: Vec<EpochStat>,
    migrations: Vec<MigrationRecord>,
    violations: Vec<String>,
    finished_at: SimTime,
    fed: bool,
    // Telemetry is observational state: it is excluded from
    // `snapshot()`/`report()` identity and starts fresh on resume (the
    // determinism bar compares uninterrupted same-seed runs).
    obs: MetricsRegistry,
    flight: FlightRecorder,
    ids: FleetObsIds,
    #[cfg(feature = "fault-injection")]
    drop_next_migrant: bool,
}

impl FleetSim {
    /// Builds a fresh fleet on `pool`, placing tenants contiguously.
    ///
    /// The pool's smallest device determines the per-tenant region span:
    /// each device is carved into `ceil(tenants/devices) + 1` slots (one
    /// spare as migration headroom).
    ///
    /// # Panics
    ///
    /// Panics if the pool size disagrees with the config, any count is
    /// zero, or the devices are too small to give every tenant a region
    /// of at least one I/O.
    pub fn new(config: FleetConfig, pool: Vec<FleetDevice>) -> Self {
        Self::with_mode(config, pool, false)
    }

    /// Builds a *fed* fleet: the geometry, placement, budgets, and
    /// per-tenant specs are identical to [`new`](FleetSim::new), but
    /// tenant traces start empty and are supplied by an external driver
    /// via [`push_entries`](FleetSim::push_entries) — the seam a served
    /// frontend uses to mount wire clients as tenants. A fed fleet whose
    /// pushed entries equal the generated ones produces a byte-identical
    /// report.
    pub fn new_fed(config: FleetConfig, pool: Vec<FleetDevice>) -> Self {
        Self::with_mode(config, pool, true)
    }

    fn with_mode(config: FleetConfig, pool: Vec<FleetDevice>, fed: bool) -> Self {
        let (placement, tenants, buckets) = Self::build(&config, &pool, None, fed);
        let mut obs = MetricsRegistry::new();
        let ids = FleetObsIds::register(&mut obs);
        FleetSim {
            devices: pool.into_iter().map(SharedDevice::new).collect(),
            config,
            placement,
            tenants,
            buckets,
            epoch: 0,
            epoch_stats: Vec::new(),
            migrations: Vec::new(),
            violations: Vec::new(),
            finished_at: SimTime::ZERO,
            fed,
            obs,
            flight: FlightRecorder::default(),
            ids,
            #[cfg(feature = "fault-injection")]
            drop_next_migrant: false,
        }
    }

    /// Rebuilds a fleet mid-run: `pool` must hold devices already thawed
    /// from the checkpoints taken alongside `snapshot`. Tenant traces are
    /// regenerated from the config; cursors, floors, budgets, metrics,
    /// and the placement come from the snapshot.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's shape (tenant/device counts, region span)
    /// disagrees with the config and pool — resuming under a different
    /// fleet definition is a caller bug; the durable store fingerprints
    /// configs to prevent it.
    pub fn resume(config: FleetConfig, pool: Vec<FleetDevice>, snapshot: &FleetSnapshot) -> Self {
        let (_, mut tenants, _) = Self::build(&config, &pool, Some(&snapshot.placement), false);
        assert_eq!(snapshot.cursors.len(), tenants.len(), "tenant count drift");
        assert_eq!(snapshot.queue_heads.len(), pool.len(), "device count drift");
        for (t, run) in tenants.iter_mut().enumerate() {
            run.cursor = snapshot.cursors[t] as usize;
            assert!(run.cursor <= run.entries.len(), "cursor past trace end");
            run.floor = snapshot.floors[t];
            run.written_high = snapshot.written_highs[t];
            run.metrics = snapshot.metrics[t].clone();
        }
        let buckets = BucketSet::restore(&snapshot.buckets);
        let devices = pool
            .into_iter()
            .zip(&snapshot.queue_heads)
            .map(|(d, &head)| SharedDevice::with_queue_head(d, head))
            .collect();
        let mut obs = MetricsRegistry::new();
        let ids = FleetObsIds::register(&mut obs);
        FleetSim {
            devices,
            config,
            placement: snapshot.placement.clone(),
            tenants,
            buckets,
            epoch: snapshot.epoch as usize,
            epoch_stats: snapshot.epoch_stats.clone(),
            migrations: snapshot.migrations.clone(),
            violations: snapshot.violations.clone(),
            finished_at: snapshot.finished_at,
            fed: false,
            obs,
            flight: FlightRecorder::default(),
            ids,
            #[cfg(feature = "fault-injection")]
            drop_next_migrant: false,
        }
    }

    /// Shared construction: geometry, tenant synthesis, placement,
    /// budgets. When `resumed` placement is given, validates the
    /// regenerated geometry against it instead of placing fresh.
    fn build(
        config: &FleetConfig,
        pool: &[FleetDevice],
        resumed: Option<&Placement>,
        fed: bool,
    ) -> (Placement, Vec<TenantRun>, BucketSet) {
        assert!(config.tenants > 0, "fleet needs tenants");
        assert!(config.epochs > 0, "fleet needs at least one epoch");
        assert_eq!(pool.len(), config.devices, "pool size != config.devices");
        assert!(!pool.is_empty(), "fleet needs devices");
        let min_cap = pool.iter().map(|d| d.info().capacity()).min().unwrap();
        let align = pool.iter().map(|d| d.info().logical_block()).max().unwrap() as u64;
        for d in pool {
            assert!(
                (config.io_size as u64).is_multiple_of(d.info().logical_block() as u64),
                "io_size {} misaligned for {}",
                config.io_size,
                d.info().name()
            );
        }
        let slots = config.tenants.div_ceil(config.devices) + 1;
        let region_span = (min_cap / slots as u64) / align * align;
        assert!(
            region_span >= config.io_size as u64,
            "devices too small: {region_span}-byte regions cannot hold one {}-byte i/o",
            config.io_size
        );
        let placement = match resumed {
            Some(p) => {
                assert_eq!(p.region_span(), region_span, "region span drift on resume");
                assert_eq!(p.device_count(), config.devices, "device count drift");
                assert_eq!(p.tenant_count(), config.tenants, "tenant count drift");
                p.clone()
            }
            None => Placement::contiguous(config.tenants, config.devices, slots, region_span),
        };
        let mut tenants = Vec::with_capacity(config.tenants);
        let mut buckets = BucketSet::new();
        for id in 0..config.tenants {
            let spec = TenantSpec::synthesize(
                id as u32,
                &config.mix,
                config.seed,
                region_span,
                config.duration,
                config.io_size,
            );
            buckets.push(TokenBucket::new(spec.burst_bytes, spec.rate_bytes_per_sec));
            tenants.push(TenantRun {
                entries: if fed {
                    Vec::new()
                } else {
                    spec.trace.generate().entries().to_vec()
                },
                spec,
                cursor: 0,
                floor: SimTime::ZERO,
                written_high: 0,
                metrics: TenantMetrics::new(),
            });
        }
        (placement, tenants, buckets)
    }

    /// Completed epochs.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// `true` once every epoch has run.
    pub fn is_finished(&self) -> bool {
        self.epoch >= self.config.epochs
    }

    /// The per-tenant region span, in bytes.
    pub fn region_span(&self) -> u64 {
        self.placement.region_span()
    }

    /// The current placement.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// The fleet's configuration.
    pub fn config(&self) -> &FleetConfig {
        &self.config
    }

    /// Completed migrations so far, in completion order.
    pub fn migrations(&self) -> &[MigrationRecord] {
        &self.migrations
    }

    /// Appends externally supplied arrival entries to a fed tenant's
    /// stream (see [`new_fed`](FleetSim::new_fed)). Entries are taken in
    /// region-relative offsets, exactly like generated traces, and must
    /// keep the tenant's arrival axis monotone.
    ///
    /// # Errors
    ///
    /// Typed [`FeedError`]s: rejects non-fed fleets, finished fleets,
    /// unknown tenants, time regressions, and entries past the region
    /// span. On error nothing is appended.
    pub fn push_entries(&mut self, tenant: u32, entries: &[TraceEntry]) -> Result<(), FeedError> {
        if !self.fed {
            return Err(FeedError::NotFed);
        }
        if self.is_finished() {
            return Err(FeedError::Finished);
        }
        let span = self.placement.region_span();
        let run = self
            .tenants
            .get_mut(tenant as usize)
            .ok_or(FeedError::UnknownTenant { tenant })?;
        let mut floor = run.entries.last().map_or(SimTime::ZERO, |e| e.at);
        for e in entries {
            if e.at < floor {
                return Err(FeedError::NonMonotone { tenant });
            }
            let end = e.offset + e.len as u64;
            if end > span {
                return Err(FeedError::OutOfRegion { tenant, end, span });
            }
            floor = e.at;
        }
        run.entries.extend_from_slice(entries);
        Ok(())
    }

    /// Arms a one-shot fault: the next migration "forgets" to re-home
    /// the migrant, so the tenant-conservation contract must report it
    /// at the following epoch boundary.
    #[cfg(feature = "fault-injection")]
    pub fn arm_migration_fault(&mut self) {
        self.drop_next_migrant = true;
    }

    /// Nominal end of epoch `e` on the arrival axis.
    fn window_end(&self, e: usize) -> SimTime {
        SimTime::from_nanos(
            (self.config.duration.as_nanos() as u128 * (e as u128 + 1) / self.config.epochs as u128)
                as u64,
        )
    }

    /// Runs the next epoch: merge, drive, audit, rebalance.
    ///
    /// # Errors
    ///
    /// Propagates the first device [`IoError`] (a placement/geometry bug;
    /// healthy fleets never hit one).
    ///
    /// # Panics
    ///
    /// Panics if the fleet already finished.
    pub fn run_epoch(&mut self) -> Result<(), IoError> {
        assert!(!self.is_finished(), "fleet already finished");
        let e = self.epoch;
        let cut = if e + 1 == self.config.epochs {
            SimTime::MAX // final epoch drains everything
        } else {
            self.window_end(e)
        };
        let n = self.tenants.len();
        let mut ep_bytes = vec![0u64; n];
        let mut ep_ios = vec![0u64; n];
        let mut ep_lat_ns = vec![0u128; n];
        let mut dev_bytes = vec![0u64; self.devices.len()];
        for (dev, dev_total) in dev_bytes.iter_mut().enumerate() {
            let residents = self.placement.residents(dev);
            // Per-tenant granted streams with region-absolute offsets.
            let mut streams: Vec<(u32, Vec<TraceEntry>)> = Vec::with_capacity(residents.len());
            for &t in &residents {
                let base = self
                    .placement
                    .base(self.placement.home(t).expect("resident has a home").1);
                let run = &mut self.tenants[t as usize];
                let mut stream = Vec::new();
                while run.cursor < run.entries.len() && run.entries[run.cursor].at < cut {
                    let entry = run.entries[run.cursor];
                    let arrival = entry.at.max(run.floor);
                    let grant = self.buckets.reserve(t as usize, arrival, entry.len as u64);
                    // Grant latency: how long the budget made this entry
                    // wait (zero for unthrottled entries, so the histogram
                    // covers the whole population).
                    let wait = grant.saturating_since(arrival);
                    self.obs.record(self.ids.grant_wait, wait);
                    if grant > arrival {
                        run.metrics.throttle_events += 1;
                        run.metrics.throttled += wait;
                        self.obs.inc(self.ids.throttle_events);
                        self.obs.add(self.ids.throttled_ns, wait.as_nanos());
                    }
                    stream.push(TraceEntry {
                        at: grant,
                        kind: entry.kind,
                        offset: base + entry.offset,
                        len: entry.len,
                    });
                    run.cursor += 1;
                }
                streams.push((t, stream));
            }
            let refs: Vec<(u32, &[TraceEntry])> =
                streams.iter().map(|(t, s)| (*t, s.as_slice())).collect();
            let merged = merge_streams(&refs).expect("granted streams are monotone per tenant");
            if merged.is_empty() {
                continue;
            }
            // One session per resident, one doorbell ring for the window.
            let mut sessions: Vec<(u32, SessionId)> = Vec::with_capacity(residents.len());
            for &t in &residents {
                sessions.push((t, self.devices[dev].open_session()));
            }
            let session_of = |tenant: u32| {
                sessions
                    .iter()
                    .find(|(t, _)| *t == tenant)
                    .expect("merged entry from a resident")
                    .1
            };
            let mut batch = IoBatch::with_capacity(merged.len());
            let mut owners = Vec::with_capacity(merged.len());
            for m in &merged {
                batch.push(IoRequest {
                    kind: m.entry.kind,
                    offset: m.entry.offset,
                    len: m.entry.len,
                    submit_time: m.entry.at,
                });
                owners.push(session_of(m.tenant));
            }
            let completions = self.devices[dev].submit_batch_shared(&owners, &batch)?;
            for (m, c) in merged.iter().zip(&completions) {
                let base = self
                    .placement
                    .base(self.placement.home(m.tenant).expect("resident").1);
                let run = &mut self.tenants[m.tenant as usize];
                // Latency from the budget grant: the shared-queue clamp
                // (waiting behind other tenants) counts as interference.
                let lat = c.completes - m.entry.at;
                run.metrics.latency.record(lat);
                run.metrics.ios += 1;
                run.metrics.bytes += c.len as u64;
                self.obs.record(self.ids.latency, lat);
                self.obs.inc(self.ids.ios);
                self.obs.add(self.ids.bytes, c.len as u64);
                if m.entry.kind.is_write() {
                    run.written_high = run.written_high.max(m.entry.offset - base + c.len as u64);
                }
                ep_bytes[m.tenant as usize] += c.len as u64;
                ep_ios[m.tenant as usize] += 1;
                ep_lat_ns[m.tenant as usize] += lat.as_nanos() as u128;
                *dev_total += c.len as u64;
                self.finished_at = self.finished_at.max(c.completes);
            }
        }
        // Epoch cut: fairness over inverse mean latencies (equal service
        // quality -> 1.0; a tenant queueing behind a noisy neighbor drags
        // the index down). Budget self-throttling is excluded by
        // construction (latency is measured from the grant).
        let shares: Vec<f64> = (0..n)
            .filter(|&t| ep_ios[t] > 0)
            .map(|t| ep_ios[t] as f64 / ep_lat_ns[t] as f64)
            .collect();
        let fairness = jain_index(&shares);
        let epoch_ios: u64 = ep_ios.iter().sum();
        self.epoch_stats.push(EpochStat {
            tenant_bytes: ep_bytes,
            device_bytes: dev_bytes,
            fairness,
        });
        self.obs.inc(self.ids.epochs);
        // Fairness is an f64 in [0,1]; milli-units keep the snapshot
        // integer-only (truncation of a deterministic computation).
        self.obs
            .set(self.ids.fairness_milli, (fairness * 1000.0) as i64);
        self.flight
            .record(self.finished_at, "epoch-end", e as u64, epoch_ios);
        self.audit_boundary();
        if let Some(policy) = self.config.rebalance {
            if e + 1 < self.config.epochs {
                let stat = self.epoch_stats.last().expect("just pushed").clone();
                for mv in policy.plan(&stat, &self.placement) {
                    self.migrate(mv.tenant, mv.to)?;
                }
            }
        }
        self.epoch += 1;
        Ok(())
    }

    /// Collects boundary contract audits into the violations log (never
    /// panics — violations are findings, reported at the end).
    fn audit_boundary(&mut self) {
        let mut found = Vec::new();
        if let Err(v) = self.placement.check() {
            found.push(v.to_string());
        }
        if let Err(v) = self.buckets.check() {
            found.push(v.to_string());
        }
        for d in &self.devices {
            if let Err(v) = d.check() {
                found.push(v.to_string());
            }
        }
        for v in &found {
            self.record_violation(v);
        }
        self.violations.extend(found);
    }

    /// Puts a contract violation on the flight recorder so a postmortem
    /// dump's last events name the violating seam verbatim.
    fn record_violation(&mut self, rendered: &str) {
        self.obs.inc(self.ids.violations);
        self.flight.record(
            self.finished_at,
            format!("contract-violation: {rendered}"),
            self.epoch as u64,
            0,
        );
    }

    /// Migrates `tenant` to `to_device` through the checkpoint seam:
    /// freeze the source state (fingerprinted into the record), copy the
    /// tenant's written extent to its new region, and defer the tenant's
    /// tail to the copy's completion instant.
    fn migrate(&mut self, tenant: u32, to_device: usize) -> Result<(), IoError> {
        let (from_device, from_slot) = self.placement.home(tenant).expect("migrant has a home");
        let to_slot = match self.placement.free_slot(to_device) {
            Some(s) => s,
            None => return Ok(()), // plan raced headroom; skip, stay consistent
        };
        let boundary = self.window_end(self.epoch);
        // Freeze: checkpoint the source device's complete state. The
        // fingerprint lands in the migration record, so two runs of the
        // same fleet prove they froze identical state.
        let frozen_at = self.devices[from_device].queue_head().max(boundary);
        let freeze_crc = {
            let cp: DeviceCheckpoint = self.devices[from_device].inner().checkpoint();
            let mut enc = Encoder::new();
            match cp.encode_into(&mut enc) {
                Ok(()) => uc_persist::crc32(enc.as_bytes()),
                Err(_) => 0, // device without a persist codec
            }
        };
        self.flight.record(
            frozen_at,
            "migration-freeze",
            tenant as u64,
            from_device as u64,
        );
        #[cfg(feature = "fault-injection")]
        if self.drop_next_migrant {
            self.drop_next_migrant = false;
            // The injected bug: the migrant is dropped instead of
            // re-homed. The conservation contract must catch this at the
            // next boundary audit.
            self.placement.drop_tenant(tenant);
            return Ok(());
        }
        let src_base = self.placement.base(from_slot);
        let dst_base = self.placement.base(to_slot);
        let extent = self.tenants[tenant as usize].written_high;
        let mut completed_at = frozen_at;
        let mut copied = 0u64;
        if extent > 0 {
            // Read the written extent off the frozen source...
            let src = &mut self.devices[from_device];
            let session = src.open_session();
            let mut reads = IoBatch::new();
            let mut owners = Vec::new();
            let mut off = 0u64;
            while off < extent {
                let len = COPY_CHUNK.min(extent - off) as u32;
                reads.push(IoRequest::read(src_base + off, len, frozen_at));
                owners.push(session);
                off += len as u64;
                copied += len as u64;
            }
            let read_done = src
                .submit_batch_shared(&owners, &reads)?
                .iter()
                .fold(frozen_at, |acc, c| acc.max(c.completes));
            // ...and thaw it onto the target region.
            let dst = &mut self.devices[to_device];
            let session = dst.open_session();
            let start = dst.queue_head().max(read_done);
            let mut writes = IoBatch::new();
            let mut owners = Vec::new();
            let mut off = 0u64;
            while off < extent {
                let len = COPY_CHUNK.min(extent - off) as u32;
                writes.push(IoRequest::write(dst_base + off, len, start));
                owners.push(session);
                off += len as u64;
            }
            completed_at = dst
                .submit_batch_shared(&owners, &writes)?
                .iter()
                .fold(start, |acc, c| acc.max(c.completes));
        }
        let before = self.placement.homes().to_vec();
        self.placement.migrate(tenant, to_device, to_slot);
        let audit_result = {
            let audit = MigrationAudit {
                tenant,
                before: &before,
                after: self.placement.homes(),
            };
            audit.check().and_then(|()| self.placement.check())
        };
        if let Err(v) = audit_result {
            let rendered = v.to_string();
            self.record_violation(&rendered);
            self.violations.push(rendered);
        }
        // Replay the tail: entries that arrived during the copy defer to
        // its completion.
        let run = &mut self.tenants[tenant as usize];
        run.floor = run.floor.max(completed_at);
        self.finished_at = self.finished_at.max(completed_at);
        self.obs.inc(self.ids.migrations);
        self.obs.add(self.ids.migration_bytes, copied);
        self.flight
            .record(completed_at, "migration-complete", tenant as u64, copied);
        self.migrations.push(MigrationRecord {
            epoch: self.epoch as u64,
            tenant,
            from: (from_device, from_slot),
            to: (to_device, to_slot),
            frozen_at,
            completed_at,
            bytes_copied: copied,
            freeze_crc,
        });
        Ok(())
    }

    /// Runs every remaining epoch and reports.
    ///
    /// # Errors
    ///
    /// Propagates the first device [`IoError`].
    pub fn run(&mut self) -> Result<FleetReport, IoError> {
        while !self.is_finished() {
            self.run_epoch()?;
        }
        Ok(self.report())
    }

    /// The report of everything run so far.
    pub fn report(&self) -> FleetReport {
        let per_tenant = self
            .tenants
            .iter()
            .enumerate()
            .map(|(t, run)| TenantSummary {
                id: t as u32,
                device: self.placement.home(t as u32).map_or(usize::MAX, |h| h.0),
                ios: run.metrics.ios,
                bytes: run.metrics.bytes,
                mean_latency: run.metrics.latency.mean(),
                p99_latency: run.metrics.latency.percentile(99.0),
                max_latency: run.metrics.latency.max(),
                throttle_events: run.metrics.throttle_events,
                throttled: run.metrics.throttled,
            })
            .collect::<Vec<_>>();
        FleetReport {
            tenants: self.config.tenants,
            devices: self.config.devices,
            epochs: self.epoch,
            fairness_per_epoch: self.epoch_stats.iter().map(|s| s.fairness).collect(),
            migrations: self.migrations.clone(),
            violations: self.violations.clone(),
            total_ios: per_tenant.iter().map(|t| t.ios).sum(),
            total_bytes: per_tenant.iter().map(|t| t.bytes).sum(),
            finished_at: self.finished_at,
            per_tenant,
        }
    }

    /// Captures the fleet's resumable state (pair with
    /// [`checkpoint_devices`](Self::checkpoint_devices) for a durable
    /// cut).
    pub fn snapshot(&self) -> FleetSnapshot {
        FleetSnapshot {
            epoch: self.epoch as u64,
            placement: self.placement.clone(),
            cursors: self.tenants.iter().map(|r| r.cursor as u64).collect(),
            floors: self.tenants.iter().map(|r| r.floor).collect(),
            written_highs: self.tenants.iter().map(|r| r.written_high).collect(),
            metrics: self.tenants.iter().map(|r| r.metrics.clone()).collect(),
            buckets: self.buckets.snapshot(),
            epoch_stats: self.epoch_stats.clone(),
            migrations: self.migrations.clone(),
            violations: self.violations.clone(),
            queue_heads: self.devices.iter().map(|d| d.queue_head()).collect(),
            finished_at: self.finished_at,
        }
    }

    /// Freezes every device in the pool (the durable layer stores these
    /// alongside the [`FleetSnapshot`]).
    pub fn checkpoint_devices(&self) -> Vec<DeviceCheckpoint> {
        self.devices
            .iter()
            .map(|d| d.inner().checkpoint())
            .collect()
    }

    /// The per-tenant specs (for rendering: shape, budget).
    pub fn tenant_spec(&self, tenant: u32) -> &TenantSpec {
        &self.tenants[tenant as usize].spec
    }

    /// Telemetry snapshot: fleet-level rows, the merged per-tenant latency
    /// distribution, then every device's internals (FTL/cluster counters)
    /// in roster order under `fleet.device{i}.…`.
    pub fn obs_snapshot(&self) -> ObsSnapshot {
        let mut reg = self.obs.clone();
        // Pool-level tenant latency: per-tenant histograms merged into one
        // (the aggregation seam `LatencyHistogram::merge` exists for).
        let mut merged = LatencyHistogram::new();
        for run in &self.tenants {
            merged.merge(&run.metrics.latency);
        }
        let id = reg.hist("fleet.tenant_latency_ns");
        *reg.hist_mut(id) = merged;
        for (i, dev) in self.devices.iter().enumerate() {
            dev.inner()
                .observe_into(&format!("fleet.device{i}"), &mut reg);
        }
        reg.snapshot()
    }

    /// Full telemetry report: [`obs_snapshot`](Self::obs_snapshot) plus
    /// the flight-recorder tail (dump this as `uc.obs.v1` on violation,
    /// crash-hook exit, or demand).
    pub fn obs_report(&self) -> ObsReport {
        ObsReport {
            snapshot: self.obs_snapshot(),
            events: self.flight.to_vec(),
            dropped_events: self.flight.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_essd::{Essd, EssdConfig};
    use uc_persist::Persist;

    fn pool(devices: usize, capacity: u64, seed: u64) -> Vec<FleetDevice> {
        (0..devices)
            .map(|i| {
                let config = EssdConfig::alibaba_pl3(capacity)
                    .with_name(format!("fleet-essd-{i}"))
                    .with_seed(seed ^ i as u64);
                Box::new(Essd::new(config)) as FleetDevice
            })
            .collect()
    }

    fn small_config() -> FleetConfig {
        FleetConfig::new(12, 2).with_duration(SimDuration::from_millis(20))
    }

    fn encoded(snapshot: &FleetSnapshot) -> Vec<u8> {
        let mut w = Encoder::new();
        snapshot.encode(&mut w);
        w.into_bytes()
    }

    #[test]
    fn two_runs_are_byte_identical() {
        let mut a = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        let mut b = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        let ra = a.run().expect("fleet a runs");
        let rb = b.run().expect("fleet b runs");
        assert_eq!(ra, rb);
        assert_eq!(encoded(&a.snapshot()), encoded(&b.snapshot()));
        assert!(ra.violations.is_empty(), "{:?}", ra.violations);
        assert!(ra.total_ios > 0);
        assert!(ra.min_fairness() > 0.0 && ra.min_fairness() <= 1.0);
    }

    #[test]
    fn fed_fleet_matches_generated_fleet_byte_for_byte() {
        let mut generated = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        let mut fed = FleetSim::new_fed(small_config(), pool(2, 64 << 20, 7));
        // Feed exactly the entries the generated fleet synthesized,
        // chunked to exercise incremental pushes.
        for t in 0..small_config().tenants as u32 {
            let entries = fed.tenant_spec(t).trace.generate().entries().to_vec();
            for chunk in entries.chunks(7) {
                fed.push_entries(t, chunk).expect("valid feed");
            }
        }
        let ra = generated.run().expect("generated runs");
        let rb = fed.run().expect("fed runs");
        assert_eq!(ra, rb);
        assert_eq!(encoded(&generated.snapshot()), encoded(&fed.snapshot()));
    }

    #[test]
    fn feed_errors_are_typed() {
        let mut generated = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        let entry = TraceEntry {
            at: SimTime::from_nanos(10),
            kind: uc_blockdev::IoKind::Write,
            offset: 0,
            len: 4096,
        };
        assert_eq!(generated.push_entries(0, &[entry]), Err(FeedError::NotFed));

        let mut fed = FleetSim::new_fed(small_config(), pool(2, 64 << 20, 7));
        assert_eq!(
            fed.push_entries(99, &[entry]),
            Err(FeedError::UnknownTenant { tenant: 99 })
        );
        let span = fed.region_span();
        assert_eq!(
            fed.push_entries(
                0,
                &[TraceEntry {
                    offset: span,
                    ..entry
                }]
            ),
            Err(FeedError::OutOfRegion {
                tenant: 0,
                end: span + 4096,
                span,
            })
        );
        fed.push_entries(0, &[entry]).expect("in-region feed");
        assert_eq!(
            fed.push_entries(
                0,
                &[TraceEntry {
                    at: SimTime::from_nanos(5),
                    ..entry
                }]
            ),
            Err(FeedError::NonMonotone { tenant: 0 })
        );
        fed.run().expect("fed fleet drains");
        assert_eq!(fed.push_entries(0, &[entry]), Err(FeedError::Finished));
    }

    #[test]
    fn skewed_fleet_rebalances_cleanly() {
        // All-steady mix plus heavy-tail hot tenants: contiguous
        // placement concentrates load, so the planner must fire.
        let config = small_config().with_rebalance(RebalancePolicy::default());
        let mut sim = FleetSim::new(config, pool(2, 64 << 20, 7));
        let report = sim.run().expect("fleet runs");
        assert!(
            !report.migrations.is_empty(),
            "no migration despite skew: {:?}",
            report.fairness_per_epoch
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let mv = &report.migrations[0];
        assert_ne!(mv.from.0, mv.to.0, "migration must change device");
        assert!(mv.completed_at >= mv.frozen_at);
        assert!(mv.bytes_copied > 0, "hot tenant had written an extent");
    }

    #[test]
    fn kill_and_resume_is_byte_identical() {
        let config = small_config().with_rebalance(RebalancePolicy::default());
        // Straight-through reference run.
        let mut whole = FleetSim::new(config.clone(), pool(2, 64 << 20, 7));
        let whole_report = whole.run().expect("reference runs");

        // Interrupted run: stop after 2 epochs, freeze, thaw, finish.
        let mut first = FleetSim::new(config.clone(), pool(2, 64 << 20, 7));
        first.run_epoch().expect("epoch 0");
        first.run_epoch().expect("epoch 1");
        let snapshot = first.snapshot();
        let frozen = first.checkpoint_devices();
        drop(first); // the "kill"

        let mut thawed = pool(2, 64 << 20, 7);
        for (device, checkpoint) in thawed.iter_mut().zip(frozen) {
            device.restore_from(checkpoint).expect("thaws");
        }
        let mut resumed = FleetSim::resume(config, thawed, &snapshot);
        assert_eq!(resumed.epoch(), 2);
        let resumed_report = resumed.run().expect("resumed runs");

        assert_eq!(whole_report, resumed_report);
        assert_eq!(encoded(&whole.snapshot()), encoded(&resumed.snapshot()));
    }

    #[test]
    fn snapshot_roundtrips_through_persist() {
        let mut sim = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        sim.run_epoch().expect("epoch 0");
        let snapshot = sim.snapshot();
        let bytes = encoded(&snapshot);
        let mut r = uc_persist::Decoder::new(&bytes);
        let back = FleetSnapshot::decode(&mut r).expect("decodes");
        r.finish().expect("no trailing bytes");
        assert_eq!(encoded(&back), bytes);
    }

    #[test]
    fn obs_reports_are_byte_identical_across_same_seed_runs() {
        let mut a = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        let mut b = FleetSim::new(small_config(), pool(2, 64 << 20, 7));
        a.run().expect("fleet a runs");
        b.run().expect("fleet b runs");
        let ra = a.obs_report();
        let rb = b.obs_report();
        assert_eq!(ra.render_text(), rb.render_text());
        assert_eq!(ra.to_record_bytes(), rb.to_record_bytes());
        // The instrumentation actually measured the run.
        assert!(ra.snapshot.counter("fleet.ios").unwrap() > 0);
        assert_eq!(ra.snapshot.counter("fleet.ios"), Some(a.report().total_ios));
        let lat = ra.snapshot.histogram("fleet.io_latency_ns").unwrap();
        assert_eq!(lat.count, a.report().total_ios);
        assert!(lat.p99_ns >= lat.p50_ns);
        // Merged per-tenant latency covers the same population.
        let merged = ra.snapshot.histogram("fleet.tenant_latency_ns").unwrap();
        assert_eq!(merged.count, lat.count);
        // Per-device internals came through the observe seam.
        assert!(
            ra.snapshot
                .counter("fleet.device0.cluster.bytes_written")
                .unwrap()
                > 0
        );
        // Every epoch left a flight event.
        assert_eq!(
            ra.events.iter().filter(|e| e.what == "epoch-end").count(),
            small_config().epochs
        );
    }

    #[test]
    fn migrations_leave_phase_events_on_the_flight_recorder() {
        let config = small_config().with_rebalance(RebalancePolicy::default());
        let mut sim = FleetSim::new(config, pool(2, 64 << 20, 7));
        let report = sim.run().expect("fleet runs");
        assert!(!report.migrations.is_empty());
        let obs = sim.obs_report();
        let freezes = obs
            .events
            .iter()
            .filter(|e| e.what == "migration-freeze")
            .count();
        let completes = obs
            .events
            .iter()
            .filter(|e| e.what == "migration-complete")
            .count();
        assert_eq!(freezes, report.migrations.len());
        assert_eq!(completes, report.migrations.len());
        assert_eq!(
            obs.snapshot.counter("fleet.migrations"),
            Some(report.migrations.len() as u64)
        );
    }

    #[test]
    #[cfg(feature = "fault-injection")]
    fn violation_dump_names_the_violating_seam() {
        let config = small_config().with_rebalance(RebalancePolicy::default());
        let mut sim = FleetSim::new(config, pool(2, 64 << 20, 7));
        sim.arm_migration_fault();
        let report = sim.run().expect("violations are findings");
        assert!(!report.violations.is_empty());
        let obs = sim.obs_report();
        // The flight tail must carry the violation verbatim — a postmortem
        // reader sees which contract fired without any other artifact.
        assert!(
            obs.events
                .iter()
                .any(|e| e.what.starts_with("contract-violation:")
                    && e.what.contains("every-tenant-placed")),
            "flight tail misses the violating seam: {:#?}",
            obs.events
        );
        assert!(obs.snapshot.counter("fleet.violations").unwrap() > 0);
    }

    #[test]
    #[cfg(feature = "fault-injection")]
    fn dropped_migrant_is_caught_by_the_conservation_contract() {
        let config = small_config().with_rebalance(RebalancePolicy::default());
        let mut sim = FleetSim::new(config, pool(2, 64 << 20, 7));
        sim.arm_migration_fault();
        let report = sim.run().expect("fleet runs; violations are findings");
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.contains("every-tenant-placed")),
            "conservation contract missed the dropped tenant: {:?}",
            report.violations
        );
    }
}
