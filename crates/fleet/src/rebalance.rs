//! Hot-device detection and migration planning.
//!
//! At each epoch boundary the rebalancer looks at the epoch's per-device
//! byte counts: when the hottest device outweighs the coldest device
//! with free capacity by more than `hot_ratio`, it plans to move the
//! hottest device's busiest tenant there. Planning is a pure function of
//! the epoch stats and the placement — deterministic tie-breaks (lowest
//! device index, lowest tenant id) keep two runs of the same fleet
//! byte-identical.

use crate::metrics::EpochStat;
use crate::placement::Placement;

/// When and how much to rebalance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebalancePolicy {
    /// Trigger threshold: plan a move when the hottest device's epoch
    /// bytes exceed `hot_ratio` times the coldest candidate's.
    pub hot_ratio: f64,
    /// At most this many migrations per epoch boundary.
    pub max_moves: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            hot_ratio: 1.15,
            max_moves: 1,
        }
    }
}

/// One planned migration: move `tenant` from device `from` to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlannedMove {
    /// The tenant to migrate.
    pub tenant: u32,
    /// Source device.
    pub from: usize,
    /// Target device.
    pub to: usize,
}

impl RebalancePolicy {
    /// Plans up to [`max_moves`](Self::max_moves) migrations from the
    /// epoch's load distribution. Device loads are adjusted after each
    /// planned move so one boundary never stampedes a single cold
    /// device.
    pub fn plan(&self, stat: &EpochStat, placement: &Placement) -> Vec<PlannedMove> {
        let mut loads: Vec<u64> = stat.device_bytes.clone();
        let mut placed = placement.clone();
        let mut moves = Vec::new();
        for _ in 0..self.max_moves {
            // Hottest device: most epoch bytes, lowest index on ties.
            let Some(hot) = (0..loads.len()).max_by_key(|&d| (loads[d], usize::MAX - d)) else {
                break;
            };
            // Coldest target with a free slot, excluding the hot device.
            let Some(cold) = (0..loads.len())
                .filter(|&d| d != hot && placed.free_slot(d).is_some())
                .min_by_key(|&d| (loads[d], d))
            else {
                break;
            };
            if (loads[hot] as f64) <= self.hot_ratio * (loads[cold].max(1) as f64) {
                break; // balanced enough
            }
            // The hot device's busiest tenant this epoch, lowest id on
            // ties; a tenant that moved nothing is never worth moving.
            let Some(tenant) = placed
                .residents(hot)
                .into_iter()
                .filter(|&t| stat.tenant_bytes[t as usize] > 0)
                .max_by_key(|&t| (stat.tenant_bytes[t as usize], u32::MAX - t))
            else {
                break;
            };
            let slot = placed.free_slot(cold).expect("filtered for a free slot");
            placed.migrate(tenant, cold, slot);
            let moved = stat.tenant_bytes[tenant as usize];
            loads[hot] -= moved.min(loads[hot]);
            loads[cold] += moved;
            moves.push(PlannedMove {
                tenant,
                from: hot,
                to: cold,
            });
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stat(device_bytes: Vec<u64>, tenant_bytes: Vec<u64>) -> EpochStat {
        EpochStat {
            tenant_bytes,
            device_bytes,
            fairness: 1.0,
        }
    }

    #[test]
    fn plans_nothing_when_balanced() {
        let p = Placement::contiguous(4, 2, 3, 1 << 20);
        let s = stat(vec![1000, 1000], vec![500, 500, 500, 500]);
        assert!(RebalancePolicy::default().plan(&s, &p).is_empty());
    }

    #[test]
    fn moves_the_busiest_tenant_off_the_hot_device() {
        // Tenants 0,1 on device 0; 2,3 on device 1. Device 0 is hot and
        // tenant 1 is its biggest contributor.
        let p = Placement::contiguous(4, 2, 3, 1 << 20);
        let s = stat(vec![9000, 1000], vec![3000, 6000, 600, 400]);
        let moves = RebalancePolicy::default().plan(&s, &p);
        assert_eq!(
            moves,
            vec![PlannedMove {
                tenant: 1,
                from: 0,
                to: 1
            }]
        );
    }

    #[test]
    fn planning_is_deterministic_on_ties() {
        // Devices 1 and 2 equally cold: lowest index wins. Tenants 0 and
        // 1 equally busy: lowest id moves.
        let p = Placement::contiguous(6, 3, 3, 1 << 20);
        let s = stat(vec![9000, 100, 100], vec![4500, 4500, 50, 50, 50, 50]);
        let a = RebalancePolicy::default().plan(&s, &p);
        let b = RebalancePolicy::default().plan(&s, &p);
        assert_eq!(a, b);
        assert_eq!(a[0].tenant, 0);
        assert_eq!(a[0].to, 1);
    }

    #[test]
    fn respects_max_moves_and_adjusts_loads() {
        let p = Placement::contiguous(6, 3, 4, 1 << 20);
        let s = stat(
            vec![20_000, 100, 100],
            vec![9_000, 8_000, 3_000, 50, 50, 50],
        );
        let policy = RebalancePolicy {
            hot_ratio: 1.15,
            max_moves: 2,
        };
        let moves = policy.plan(&s, &p);
        assert_eq!(moves.len(), 2);
        assert_eq!(moves[0].tenant, 0);
        // After moving tenant 0 to device 1, device 2 is the cold target.
        assert_eq!(moves[1].tenant, 1);
        assert_eq!(moves[1].to, 2);
    }
}
