//! [`Persist`] codecs for the fleet's resumable state.
//!
//! A [`FleetSnapshot`] is everything the simulation needs back besides
//! the devices themselves (whose [`DeviceCheckpoint`]s the durable layer
//! stores alongside) and the tenant traces (regenerated from the config's
//! seed). The codecs follow the workspace's canonical little-endian
//! plain-data forms, so a snapshot written by one build decodes bit-for-
//! bit in another.
//!
//! [`DeviceCheckpoint`]: uc_blockdev::DeviceCheckpoint

use crate::metrics::{EpochStat, TenantMetrics};
use crate::placement::{MigrationRecord, Placement};
use crate::sim::FleetSnapshot;
use uc_metrics::LatencyHistogram;
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{SimDuration, SimTime};

impl Persist for TenantMetrics {
    fn encode(&self, w: &mut Encoder) {
        self.latency.encode(w);
        w.put_u64(self.ios);
        w.put_u64(self.bytes);
        w.put_u64(self.throttle_events);
        self.throttled.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TenantMetrics {
            latency: LatencyHistogram::decode(r)?,
            ios: r.get_u64()?,
            bytes: r.get_u64()?,
            throttle_events: r.get_u64()?,
            throttled: SimDuration::decode(r)?,
        })
    }
}

impl Persist for EpochStat {
    fn encode(&self, w: &mut Encoder) {
        self.tenant_bytes.encode(w);
        self.device_bytes.encode(w);
        w.put_f64(self.fairness);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EpochStat {
            tenant_bytes: Vec::decode(r)?,
            device_bytes: Vec::decode(r)?,
            fairness: r.get_f64()?,
        })
    }
}

impl Persist for MigrationRecord {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.epoch);
        w.put_u32(self.tenant);
        self.from.encode(w);
        self.to.encode(w);
        self.frozen_at.encode(w);
        self.completed_at.encode(w);
        w.put_u64(self.bytes_copied);
        w.put_u32(self.freeze_crc);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(MigrationRecord {
            epoch: r.get_u64()?,
            tenant: r.get_u32()?,
            from: <(usize, usize)>::decode(r)?,
            to: <(usize, usize)>::decode(r)?,
            frozen_at: SimTime::decode(r)?,
            completed_at: SimTime::decode(r)?,
            bytes_copied: r.get_u64()?,
            freeze_crc: r.get_u32()?,
        })
    }
}

impl Persist for Placement {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.region_span());
        self.slots_per_device().encode(w);
        self.device_count().encode(w);
        self.homes().to_vec().encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let region_span = r.get_u64()?;
        let slots_per_device = usize::decode(r)?;
        let device_count = usize::decode(r)?;
        let homes: Vec<Option<(usize, usize)>> = Vec::decode(r)?;
        // Bounds are validated here; *conservation* deliberately is not —
        // a run carrying a recorded violation (e.g. under fault
        // injection) must resume and re-report it identically.
        if region_span == 0 || device_count == 0 || slots_per_device == 0 {
            return Err(DecodeError::InvalidValue {
                what: "Placement geometry",
            });
        }
        for home in homes.iter().flatten() {
            if home.0 >= device_count || home.1 >= slots_per_device {
                return Err(DecodeError::InvalidValue {
                    what: "Placement home out of bounds",
                });
            }
        }
        Ok(Placement::from_parts(
            region_span,
            slots_per_device,
            device_count,
            homes,
        ))
    }
}

impl Persist for FleetSnapshot {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.epoch);
        self.placement.encode(w);
        self.cursors.encode(w);
        self.floors.encode(w);
        self.written_highs.encode(w);
        self.metrics.encode(w);
        self.buckets.encode(w);
        self.epoch_stats.encode(w);
        self.migrations.encode(w);
        self.violations.encode(w);
        self.queue_heads.encode(w);
        self.finished_at.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = FleetSnapshot {
            epoch: r.get_u64()?,
            placement: Placement::decode(r)?,
            cursors: Vec::decode(r)?,
            floors: Vec::decode(r)?,
            written_highs: Vec::decode(r)?,
            metrics: Vec::decode(r)?,
            buckets: Vec::decode(r)?,
            epoch_stats: Vec::decode(r)?,
            migrations: Vec::decode(r)?,
            violations: Vec::decode(r)?,
            queue_heads: Vec::decode(r)?,
            finished_at: SimTime::decode(r)?,
        };
        let tenants = snapshot.placement.tenant_count();
        if snapshot.cursors.len() != tenants
            || snapshot.floors.len() != tenants
            || snapshot.written_highs.len() != tenants
            || snapshot.metrics.len() != tenants
            || snapshot.buckets.len() != tenants
        {
            return Err(DecodeError::InvalidValue {
                what: "FleetSnapshot per-tenant vector lengths",
            });
        }
        Ok(snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Persist>(value: &T) -> T {
        let mut w = Encoder::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).expect("decodes");
        r.finish().expect("no trailing bytes");
        back
    }

    #[test]
    fn placement_roundtrips() {
        let mut p = Placement::contiguous(5, 2, 4, 1 << 20);
        p.migrate(0, 1, p.free_slot(1).unwrap());
        assert_eq!(roundtrip(&p), p);
    }

    #[test]
    fn out_of_bounds_home_is_a_typed_error() {
        let p = Placement::from_parts(1 << 20, 2, 2, vec![Some((5, 0))]);
        let mut w = Encoder::new();
        p.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            Placement::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn metrics_and_records_roundtrip() {
        let mut m = TenantMetrics::new();
        m.latency.record(SimDuration::from_micros(120));
        m.ios = 1;
        m.bytes = 4096;
        m.throttle_events = 2;
        m.throttled = SimDuration::from_micros(30);
        let back = roundtrip(&m);
        assert_eq!(back.ios, 1);
        assert_eq!(back.latency.count(), 1);
        assert_eq!(back.throttled, m.throttled);

        let rec = MigrationRecord {
            epoch: 2,
            tenant: 7,
            from: (0, 3),
            to: (1, 4),
            frozen_at: SimTime::from_nanos(1000),
            completed_at: SimTime::from_nanos(5000),
            bytes_copied: 1 << 20,
            freeze_crc: 0xDEAD_BEEF,
        };
        assert_eq!(roundtrip(&rec), rec);

        let stat = EpochStat {
            tenant_bytes: vec![1, 2, 3],
            device_bytes: vec![3, 3],
            fairness: 0.87,
        };
        assert_eq!(roundtrip(&stat), stat);
    }
}
