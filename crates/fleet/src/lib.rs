//! Multi-tenant fleet simulation for the unwritten-contract stack.
//!
//! The paper measures one tenant on one elastic SSD; real eSSD deployments
//! multiplex *fleets* of tenants onto shared devices, where the contract's
//! sharp edges (budget exhaustion, burst interference) become noisy-
//! neighbor problems. This crate closes that gap:
//!
//! * **tenants** ([`TenantSpec`] / [`ShapeMix`]) — a deterministic
//!   population synthesized from one seed: steady/diurnal/bursty arrival
//!   shapes (`uc-trace` generators), heavy-tailed rates, and per-tenant
//!   token-bucket budgets;
//! * **placement** ([`Placement`]) — tenants occupy fixed capacity slots
//!   on shared devices, under a machine-checked *tenant conservation*
//!   contract (no tenant lost, duplicated, or double-placed across any
//!   migration);
//! * **interleaving** — per-device arrival streams merge through
//!   [`merge_streams`](uc_trace::merge_streams) (stable tenant-id
//!   tie-break) and drive the device through one shared queue-pair
//!   doorbell ([`SharedDevice`](uc_blockdev::SharedDevice));
//! * **metrics** ([`TenantMetrics`] / [`EpochStat`] / [`FleetReport`]) —
//!   per-tenant latency percentiles, throughput, budget-throttle counts,
//!   and per-epoch Jain fairness ([`jain_index`]) quantifying
//!   interference;
//! * **rebalancing** ([`RebalancePolicy`]) — hot-device detection from
//!   rolling epoch stats and tenant migration through the checkpoint
//!   seam: freeze the source state ([`CheckpointDevice`]), move the
//!   tenant's extent, and replay its deferred tail on the target;
//! * **resumability** ([`FleetSnapshot`]) — the whole fleet freezes at
//!   epoch boundaries into a persistable snapshot (paired with the
//!   devices' own checkpoints by `uc-core`'s durable fleet experiment),
//!   so a killed run resumes byte-identically.
//!
//! Everything is a pure function of ([`FleetConfig`], device pool): two
//! runs of the same fleet are byte-identical, which is what makes the
//! kill/resume and two-run CI identity gates meaningful.
//!
//! [`CheckpointDevice`]: uc_blockdev::CheckpointDevice

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod persist;
mod placement;
mod rebalance;
mod sim;
mod tenant;

pub use metrics::{jain_index, EpochStat, FleetReport, TenantMetrics, TenantSummary};
pub use placement::{MigrationAudit, MigrationRecord, Placement};
pub use rebalance::{PlannedMove, RebalancePolicy};
pub use sim::{FeedError, FleetConfig, FleetDevice, FleetSim, FleetSnapshot};
pub use tenant::{ShapeMix, TenantSpec};
