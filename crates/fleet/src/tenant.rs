//! Tenant synthesis: deterministic per-tenant workloads and budgets.
//!
//! A fleet is populated from a single seed: every tenant's arrival shape,
//! rate, write mix, and token-bucket budget is a pure function of
//! `(fleet seed, tenant id)`, so the same [`FleetConfig`](crate::FleetConfig)
//! always describes the same population — on every run, every resume, and
//! every machine. A heavy-tailed rate draw (a small fraction of tenants
//! run several times hotter than the rest) gives the initial contiguous
//! placement a natural imbalance for the rebalancer to find.

use uc_sim::{SimDuration, SimRng};
use uc_trace::TraceSpec;

/// How many tenants of each arrival shape a fleet synthesizes, as integer
/// weights (tenant `id` cycles through the bands).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeMix {
    /// Weight of steady-rate tenants.
    pub steady: u32,
    /// Weight of diurnal (day/night swing) tenants.
    pub diurnal: u32,
    /// Weight of bursty ON/OFF tenants.
    pub bursty: u32,
}

impl ShapeMix {
    /// The default population: half steady, a quarter diurnal, a quarter
    /// bursty.
    pub fn default_mix() -> Self {
        ShapeMix {
            steady: 2,
            diurnal: 1,
            bursty: 1,
        }
    }

    /// Sum of the weights.
    ///
    /// # Panics
    ///
    /// Panics if every weight is zero.
    pub fn total(&self) -> u32 {
        let total = self.steady + self.diurnal + self.bursty;
        assert!(total > 0, "shape mix needs at least one non-zero weight");
        total
    }
}

impl Default for ShapeMix {
    fn default() -> Self {
        ShapeMix::default_mix()
    }
}

/// Fraction of tenants drawn hot, and how much hotter they run.
const HOT_FRACTION: f64 = 0.125;
const HOT_MULTIPLIER: f64 = 6.0;

/// One synthesized tenant: its trace generator and its budget.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The tenant's id (its index in the fleet).
    pub id: u32,
    /// Generator for the tenant's arrival stream. Offsets are *relative*
    /// to the tenant's placement region (`span` = the region span); the
    /// interleaver shifts them to the region base at submit time.
    pub trace: TraceSpec,
    /// Token-bucket burst, in bytes.
    pub burst_bytes: f64,
    /// Token-bucket refill rate, in bytes per second.
    pub rate_bytes_per_sec: f64,
}

impl TenantSpec {
    /// Synthesizes tenant `id` of a fleet: shape from the mix band,
    /// rate/write-mix from a tenant-keyed RNG, budget at 1.25× the
    /// tenant's mean offered bytes/second (so bursts and diurnal crests
    /// overrun the budget and throttle, but the mean load clears it).
    pub fn synthesize(
        id: u32,
        mix: &ShapeMix,
        fleet_seed: u64,
        region_span: u64,
        duration: SimDuration,
        io_size: u32,
    ) -> Self {
        let mut rng = SimRng::new(
            fleet_seed ^ (0x7E4A_4700_0000_0000 | (id as u64).wrapping_mul(0x9E37_79B9)),
        );
        let mut iops = rng.range_u64(800, 1600) as f64;
        if rng.chance(HOT_FRACTION) {
            iops *= HOT_MULTIPLIER;
        }
        let band = id % mix.total();
        let shape = if band < mix.steady {
            TraceSpec::steady(iops)
        } else if band < mix.steady + mix.diurnal {
            // Crest at 1.5x the nominal rate (mean stays ~iops), one full
            // swing per half duration.
            TraceSpec::diurnal(iops * 0.5, iops * 1.5, duration.mul_f64(0.5))
        } else {
            // 25% duty cycle at 4x the nominal rate: mean stays ~iops but
            // each ON window overruns the budget.
            TraceSpec::bursty(
                SimDuration::from_millis(2),
                SimDuration::from_millis(6),
                iops * 4.0,
            )
        };
        let write_ratio = [1.0, 0.7, 0.5][rng.range_u64(0, 3) as usize];
        let trace = shape
            .with_duration(duration)
            .with_io_size(io_size)
            .with_write_ratio(write_ratio)
            .with_span(region_span)
            .with_seed(fleet_seed ^ (0x7E4A_0000_0000_0000 | id as u64));
        let mean_bytes_per_sec = trace.mean_iops() * io_size as f64;
        TenantSpec {
            id,
            trace,
            burst_bytes: 8.0 * io_size as f64,
            rate_bytes_per_sec: 1.25 * mean_bytes_per_sec,
        }
    }

    /// Whether this tenant drew the hot-rate multiplier (mean rate above
    /// the cold band's ceiling).
    pub fn is_hot(&self) -> bool {
        self.trace.mean_iops() >= 1600.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(id: u32) -> TenantSpec {
        TenantSpec::synthesize(
            id,
            &ShapeMix::default_mix(),
            0xF1EE7,
            16 << 20,
            SimDuration::from_millis(100),
            4096,
        )
    }

    #[test]
    fn synthesis_is_deterministic_per_tenant() {
        assert_eq!(spec(7), spec(7));
        assert_ne!(spec(7), spec(8), "different tenants draw different specs");
        assert_eq!(spec(7).trace.generate(), spec(7).trace.generate());
    }

    #[test]
    fn mix_bands_cycle_through_shapes() {
        use uc_trace::ArrivalShape;
        // Default mix 2:1:1 — ids 0,1 steady, 2 diurnal, 3 bursty, repeat.
        assert!(matches!(spec(0).trace.shape, ArrivalShape::Steady { .. }));
        assert!(matches!(spec(1).trace.shape, ArrivalShape::Steady { .. }));
        assert!(matches!(spec(2).trace.shape, ArrivalShape::Diurnal { .. }));
        assert!(matches!(spec(3).trace.shape, ArrivalShape::OnOff { .. }));
        assert!(matches!(spec(4).trace.shape, ArrivalShape::Steady { .. }));
    }

    #[test]
    fn population_has_a_heavy_tail() {
        let rates: Vec<f64> = (0..256).map(|id| spec(id).trace.mean_iops()).collect();
        let hot = rates.iter().filter(|&&r| r >= 1600.0).count();
        // ~12.5% of 256 tenants; wide tolerance, determinism is the point.
        assert!((8..=64).contains(&hot), "{hot} hot tenants");
        let max = rates.iter().cloned().fold(0.0, f64::max);
        let min = rates.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max / min > 3.0, "tail spread {min}..{max}");
    }

    #[test]
    fn budget_clears_mean_load_but_not_bursts() {
        for id in 0..16 {
            let s = spec(id);
            let mean = s.trace.mean_iops() * 4096.0;
            assert!(s.rate_bytes_per_sec > mean, "budget clears the mean");
            assert!(
                s.rate_bytes_per_sec < 2.0 * mean,
                "budget binds under bursts"
            );
        }
    }
}
