//! Per-tenant interference metrics and fleet-level fairness.
//!
//! Interference on a shared device shows up in *latency*, not byte
//! counts — every request eventually completes, so throughput shares
//! trivially mirror offered load. The fleet therefore tracks, per tenant,
//! a full latency histogram plus budget-throttle accounting, and per
//! epoch a demand-normalized progress share from which Jain's fairness
//! index is computed: a tenant whose epoch's work drags past the epoch
//! window (queueing behind a noisy neighbor) scores below 1.

use crate::placement::MigrationRecord;
use uc_metrics::LatencyHistogram;
use uc_sim::{SimDuration, SimTime};

/// One tenant's running measurements.
#[derive(Debug, Clone)]
pub struct TenantMetrics {
    /// Host-observed latency of every completed request, measured from
    /// the *budget grant* instant — so queueing behind other tenants
    /// (the shared-queue clamp) counts as interference, but the tenant's
    /// own budget throttling does not.
    pub latency: LatencyHistogram,
    /// Completed requests.
    pub ios: u64,
    /// Completed bytes.
    pub bytes: u64,
    /// Requests delayed by the tenant's own token-bucket budget.
    pub throttle_events: u64,
    /// Total budget-throttle delay across those requests.
    pub throttled: SimDuration,
}

impl TenantMetrics {
    /// An empty ledger.
    pub fn new() -> Self {
        TenantMetrics {
            latency: LatencyHistogram::new(),
            ios: 0,
            bytes: 0,
            throttle_events: 0,
            throttled: SimDuration::ZERO,
        }
    }
}

impl Default for TenantMetrics {
    fn default() -> Self {
        TenantMetrics::new()
    }
}

/// Per-epoch cut of fleet progress: what each tenant and device moved in
/// one epoch, and the epoch's fairness index.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStat {
    /// Bytes each tenant completed this epoch (indexed by tenant id).
    pub tenant_bytes: Vec<u64>,
    /// Bytes each device served this epoch (indexed by device).
    pub device_bytes: Vec<u64>,
    /// Jain's fairness index over the tenants' demand-normalized
    /// progress shares this epoch (1.0 = perfectly fair).
    pub fairness: f64,
}

/// Jain's fairness index of the shares `xs`: `(Σx)² / (n·Σx²)`.
///
/// Ranges from `1/n` (one tenant takes everything) to `1.0` (all equal).
/// Returns 1.0 for an empty or all-zero slice.
pub fn jain_index(xs: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let sum: f64 = xs.iter().sum();
    let sum_sq: f64 = xs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 1.0;
    }
    (sum * sum) / (n * sum_sq)
}

/// One tenant's row in the final fleet report.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSummary {
    /// Tenant id.
    pub id: u32,
    /// The device the tenant ended the run on.
    pub device: usize,
    /// Completed requests.
    pub ios: u64,
    /// Completed bytes.
    pub bytes: u64,
    /// Mean request latency.
    pub mean_latency: SimDuration,
    /// P99 request latency.
    pub p99_latency: SimDuration,
    /// Worst request latency.
    pub max_latency: SimDuration,
    /// Requests delayed by the tenant's own budget.
    pub throttle_events: u64,
    /// Total budget-throttle delay.
    pub throttled: SimDuration,
}

/// The final report of one fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Tenants simulated.
    pub tenants: usize,
    /// Devices in the pool.
    pub devices: usize,
    /// Epochs executed.
    pub epochs: usize,
    /// Per-tenant summaries, ascending id.
    pub per_tenant: Vec<TenantSummary>,
    /// Jain's fairness index per epoch.
    pub fairness_per_epoch: Vec<f64>,
    /// Completed migrations, in execution order.
    pub migrations: Vec<MigrationRecord>,
    /// Rendered contract violations found at epoch boundaries (empty on
    /// a healthy run).
    pub violations: Vec<String>,
    /// Total completed requests across the fleet.
    pub total_ios: u64,
    /// Total completed bytes across the fleet.
    pub total_bytes: u64,
    /// The last completion instant across the fleet.
    pub finished_at: SimTime,
}

impl FleetReport {
    /// The lowest per-epoch fairness index (1.0 if no epochs ran).
    pub fn min_fairness(&self) -> f64 {
        self.fairness_per_epoch.iter().cloned().fold(1.0, f64::min)
    }

    /// Mean of the per-tenant mean latencies, as nanoseconds — the
    /// fleet-wide baseline tenants are compared against for
    /// interference attribution.
    pub fn mean_of_tenant_means(&self) -> f64 {
        if self.per_tenant.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .per_tenant
            .iter()
            .map(|t| t.mean_latency.as_nanos() as f64)
            .sum();
        sum / self.per_tenant.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jain_index_brackets() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
        assert!((jain_index(&[1.0, 1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        // One tenant takes everything: 1/n.
        assert!((jain_index(&[1.0, 0.0, 0.0, 0.0]) - 0.25).abs() < 1e-12);
        // Skewed shares land strictly between.
        let j = jain_index(&[1.0, 0.5, 0.5, 0.5]);
        assert!(j > 0.25 && j < 1.0, "{j}");
    }

    #[test]
    fn tenant_metrics_start_empty() {
        let m = TenantMetrics::new();
        assert_eq!(m.ios, 0);
        assert_eq!(m.throttled, SimDuration::ZERO);
        assert!(m.latency.is_empty());
    }
}
