//! Tenant placement: which device and capacity slot each tenant lives on.
//!
//! Every device in a fleet pool is carved into fixed-size *slots* of
//! `region_span` bytes; a tenant occupies exactly one slot, and every
//! device keeps at least one slot of headroom so the rebalancer always
//! has somewhere to move a tenant. The assignment is audited by a
//! machine-checked [`Contract`]: across any sequence of migrations no
//! tenant may be lost, duplicated, or double-placed — the *tenant
//! conservation* invariant the rebalancer is held to.

use uc_invariant::{ensure, Contract, Violation};
use uc_sim::SimTime;

/// The tenant-to-slot assignment of a fleet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    region_span: u64,
    slots_per_device: usize,
    device_count: usize,
    /// `homes[tenant]` is the tenant's `(device, slot)`, or `None` for a
    /// tenant lost to a (deliberately injected) migration fault.
    homes: Vec<Option<(usize, usize)>>,
}

impl Placement {
    /// The initial assignment: tenants fill devices in contiguous blocks
    /// (tenant 0..k on device 0, the next k on device 1, …), leaving at
    /// least one free slot per device as migration headroom.
    ///
    /// # Panics
    ///
    /// Panics if any count is zero or the devices cannot hold every
    /// tenant plus one headroom slot each.
    pub fn contiguous(
        tenants: usize,
        device_count: usize,
        slots_per_device: usize,
        region_span: u64,
    ) -> Self {
        assert!(tenants > 0 && device_count > 0, "empty fleet");
        assert!(region_span > 0, "zero region span");
        let block = tenants.div_ceil(device_count);
        assert!(
            slots_per_device > block,
            "need {block} tenant slots plus headroom per device, have {slots_per_device}"
        );
        let homes = (0..tenants).map(|t| Some((t / block, t % block))).collect();
        Placement {
            region_span,
            slots_per_device,
            device_count,
            homes,
        }
    }

    /// Bytes per slot.
    pub fn region_span(&self) -> u64 {
        self.region_span
    }

    /// Slots carved out of each device.
    pub fn slots_per_device(&self) -> usize {
        self.slots_per_device
    }

    /// Devices in the pool.
    pub fn device_count(&self) -> usize {
        self.device_count
    }

    /// Tenants the placement was built for.
    pub fn tenant_count(&self) -> usize {
        self.homes.len()
    }

    /// The tenant's current `(device, slot)`, or `None` if a migration
    /// fault dropped it.
    pub fn home(&self, tenant: u32) -> Option<(usize, usize)> {
        self.homes[tenant as usize]
    }

    /// Byte offset of a slot's region base within its device.
    pub fn base(&self, slot: usize) -> u64 {
        slot as u64 * self.region_span
    }

    /// The tenants resident on `device`, in ascending id order (the
    /// deterministic iteration order of the fleet interleaver).
    pub fn residents(&self, device: usize) -> Vec<u32> {
        self.homes
            .iter()
            .enumerate()
            .filter(|(_, h)| matches!(h, Some((d, _)) if *d == device))
            .map(|(t, _)| t as u32)
            .collect()
    }

    /// The lowest unoccupied slot on `device`, if any.
    pub fn free_slot(&self, device: usize) -> Option<usize> {
        let mut used = vec![false; self.slots_per_device];
        for h in self.homes.iter().flatten() {
            if h.0 == device {
                used[h.1] = true;
            }
        }
        used.iter().position(|&u| !u)
    }

    /// Re-homes `tenant` to `(device, slot)`.
    ///
    /// # Panics
    ///
    /// Panics if the tenant has no current home, the target is out of
    /// bounds, or the target slot is occupied.
    pub fn migrate(&mut self, tenant: u32, device: usize, slot: usize) {
        assert!(device < self.device_count && slot < self.slots_per_device);
        assert!(
            !self.homes.iter().flatten().any(|&h| h == (device, slot)),
            "target slot ({device}, {slot}) is occupied"
        );
        let home = &mut self.homes[tenant as usize];
        assert!(home.is_some(), "tenant {tenant} has no home to migrate");
        *home = Some((device, slot));
    }

    /// Drops `tenant` from the placement without re-homing it — the
    /// seeded migration fault the conservation contract must catch.
    #[cfg(feature = "fault-injection")]
    pub fn drop_tenant(&mut self, tenant: u32) {
        self.homes[tenant as usize] = None;
    }

    /// The raw homes table (for snapshots).
    pub(crate) fn homes(&self) -> &[Option<(usize, usize)>] {
        &self.homes
    }

    /// Rebuilds a placement from snapshot fields. Used by the persist
    /// codec; the caller is expected to [`Contract::check`] the result.
    pub(crate) fn from_parts(
        region_span: u64,
        slots_per_device: usize,
        device_count: usize,
        homes: Vec<Option<(usize, usize)>>,
    ) -> Self {
        Placement {
            region_span,
            slots_per_device,
            device_count,
            homes,
        }
    }
}

/// Tenant conservation: every tenant placed exactly once, within bounds,
/// and no slot double-occupied. O(tenants).
impl Contract for Placement {
    fn contract_name(&self) -> &'static str {
        "uc-fleet/Placement"
    }

    fn check(&self) -> Result<(), Violation> {
        let mut seen = vec![false; self.device_count * self.slots_per_device];
        for (t, home) in self.homes.iter().enumerate() {
            let Some((device, slot)) = home else {
                return Err(Violation::new(
                    self.contract_name(),
                    "every-tenant-placed",
                    format!("tenant {t} has no placement (lost in migration)"),
                ));
            };
            ensure!(
                self,
                "home-in-bounds",
                *device < self.device_count && *slot < self.slots_per_device,
                "tenant {t} placed at ({device}, {slot}) outside {}x{}",
                self.device_count,
                self.slots_per_device
            );
            let key = device * self.slots_per_device + slot;
            ensure!(
                self,
                "no-double-placement",
                !seen[key],
                "slot ({device}, {slot}) holds two tenants (second is {t})"
            );
            seen[key] = true;
        }
        Ok(())
    }
}

/// The audit record of one completed migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationRecord {
    /// Epoch boundary at which the migration ran.
    pub epoch: u64,
    /// The migrated tenant.
    pub tenant: u32,
    /// Source `(device, slot)`.
    pub from: (usize, usize),
    /// Target `(device, slot)`.
    pub to: (usize, usize),
    /// The freeze instant (source state checkpointed here).
    pub frozen_at: SimTime,
    /// When the copied extent finished landing on the target — the floor
    /// from which the tenant's deferred tail replays.
    pub completed_at: SimTime,
    /// Bytes copied (the tenant's written extent).
    pub bytes_copied: u64,
    /// CRC-32 of the source device's frozen checkpoint (0 if the device
    /// has no persist codec). Two byte-identical runs freeze identical
    /// state; the CI identity gate compares these fingerprints.
    pub freeze_crc: u32,
}

/// Before/after audit of one migration against the placement.
///
/// Checked right after every migration: exactly one tenant (the migrant)
/// changed homes, onto a different device, and the population count is
/// conserved.
#[derive(Debug)]
pub struct MigrationAudit<'a> {
    /// The migrated tenant.
    pub tenant: u32,
    /// Homes before the migration.
    pub before: &'a [Option<(usize, usize)>],
    /// Homes after the migration.
    pub after: &'a [Option<(usize, usize)>],
}

impl Contract for MigrationAudit<'_> {
    fn contract_name(&self) -> &'static str {
        "uc-fleet/Migration"
    }

    fn check(&self) -> Result<(), Violation> {
        ensure!(
            self,
            "population-conserved",
            self.before.iter().flatten().count() == self.after.iter().flatten().count(),
            "migration changed the placed-tenant count: {} -> {}",
            self.before.iter().flatten().count(),
            self.after.iter().flatten().count()
        );
        for (t, (b, a)) in self.before.iter().zip(self.after).enumerate() {
            if t as u32 == self.tenant {
                ensure!(
                    self,
                    "migrant-rehomed",
                    a.is_some() && b.is_some() && a.map(|h| h.0) != b.map(|h| h.0),
                    "tenant {t} was not moved to a new device: {b:?} -> {a:?}"
                );
            } else {
                ensure!(
                    self,
                    "only-migrant-moves",
                    a == b,
                    "bystander tenant {t} moved during migration of {}: {b:?} -> {a:?}",
                    self.tenant
                );
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_fill_places_everyone_with_headroom() {
        let p = Placement::contiguous(10, 3, 5, 1 << 20);
        assert_eq!(p.check(), Ok(()));
        assert_eq!(p.home(0), Some((0, 0)));
        assert_eq!(p.home(4), Some((1, 0)));
        assert_eq!(p.residents(0), vec![0, 1, 2, 3]);
        // Every device keeps a free slot.
        for d in 0..3 {
            assert!(p.free_slot(d).is_some(), "device {d} has headroom");
        }
        assert_eq!(p.base(2), 2 << 20);
    }

    #[test]
    fn migration_rehomes_and_conserves() {
        let mut p = Placement::contiguous(4, 2, 3, 1 << 20);
        let before = p.homes().to_vec();
        let slot = p.free_slot(1).unwrap();
        p.migrate(0, 1, slot);
        let audit = MigrationAudit {
            tenant: 0,
            before: &before,
            after: p.homes(),
        };
        assert_eq!(audit.check(), Ok(()));
        assert_eq!(p.check(), Ok(()));
        assert_eq!(p.home(0), Some((1, slot)));
        assert!(p.residents(1).contains(&0));
    }

    #[test]
    fn double_placement_is_a_violation() {
        let p = Placement::from_parts(1 << 20, 3, 2, vec![Some((0, 0)), Some((0, 0))]);
        let v = p.check().unwrap_err();
        assert_eq!(v.invariant, "no-double-placement");
    }

    #[test]
    fn lost_tenant_is_a_violation() {
        let p = Placement::from_parts(1 << 20, 3, 2, vec![Some((0, 0)), None]);
        let v = p.check().unwrap_err();
        assert_eq!(v.invariant, "every-tenant-placed");
        assert!(v.detail.contains("tenant 1"));
    }

    #[test]
    fn bystander_move_fails_the_migration_audit() {
        let before = vec![Some((0, 0)), Some((0, 1))];
        let after = vec![Some((1, 0)), Some((1, 1))]; // tenant 1 moved too
        let audit = MigrationAudit {
            tenant: 0,
            before: &before,
            after: &after,
        };
        let v = audit.check().unwrap_err();
        assert_eq!(v.invariant, "only-migrant-moves");
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn migrating_onto_an_occupied_slot_panics() {
        let mut p = Placement::contiguous(4, 2, 3, 1 << 20);
        p.migrate(0, 1, 0); // tenant 2 lives at (1, 0)
    }
}
