//! ESSD configuration and provider profiles.

use uc_cluster::{ClusterConfig, NodeConfig};
use uc_flash::FlashTiming;
use uc_net::NetConfig;
use uc_sim::{LatencyDist, SimDuration};

/// An IOPS budget: operations per second, with a token cost that grows
/// with I/O size.
///
/// An I/O of `len` bytes costs `ceil(len / unit_bytes)` tokens, matching
/// the paper's note that "the guaranteed IOPS in ESSDs is non-deterministic
/// and is closely related to the I/O size" (Observation 4 discussion).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IopsBudget {
    /// Sustained operations (tokens) per second.
    pub ops_per_sec: f64,
    /// Bytes covered by one token.
    pub unit_bytes: u32,
    /// Bucket burst, in tokens.
    pub burst_ops: f64,
}

impl IopsBudget {
    /// Tokens consumed by an I/O of `len` bytes.
    pub fn tokens_for(&self, len: u32) -> u64 {
        len.div_ceil(self.unit_bytes).max(1) as u64
    }
}

/// Provider-side flow limiting after a cumulative write volume.
///
/// Models the paper's hypothesis for Figure 3: "cloud providers may trigger
/// flow-limiting mechanisms when they can not hide the GC impact anymore."
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThrottlePolicy {
    /// Cumulative written bytes (as a multiple of device capacity) after
    /// which the throttle engages.
    pub after_capacity_multiple: f64,
    /// Throughput budget once throttled, in bytes/second.
    pub limited_bytes_per_sec: f64,
}

/// Parameters of an [`Essd`](crate::Essd).
///
/// # Example
///
/// ```
/// use uc_essd::EssdConfig;
///
/// let cfg = EssdConfig::alibaba_pl3(2 << 30);
/// assert!(cfg.iops.is_some());
/// assert!(cfg.throttle.is_none()); // ESSD-2 sustains in Figure 3
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EssdConfig {
    /// Human-readable device name.
    pub name: String,
    /// Virtual capacity in bytes.
    pub capacity: u64,
    /// Logical block size in bytes.
    pub logical_block: u32,
    /// Host-stack worker count.
    pub stack_workers: usize,
    /// Host-stack per-I/O cost.
    pub stack_per_io: LatencyDist,
    /// VM-to-cluster network parameters (used for both directions).
    pub net: NetConfig,
    /// Backend cluster parameters.
    pub cluster: ClusterConfig,
    /// Throughput budget in bytes/second (reads + writes).
    pub bandwidth_bytes_per_sec: f64,
    /// Throughput bucket burst in bytes.
    pub bandwidth_burst_bytes: f64,
    /// Optional IOPS budget.
    pub iops: Option<IopsBudget>,
    /// Optional provider throttle policy (Figure 3 flow limiting).
    pub throttle: Option<ThrottlePolicy>,
    /// Seed for the device's jitter streams.
    pub seed: u64,
}

impl EssdConfig {
    /// ESSD-1: an AWS `io2`-class provisioned-IOPS volume.
    ///
    /// Calibration targets (paper Table I and Figure 2/4/5 shapes):
    /// * ~3.0 GB/s deterministic throughput budget,
    /// * 4 KiB QD1 write ≈ 330 µs; latency roughly flat versus queue depth,
    /// * fine striping (1 MiB) and fast chunk lanes, so the random-write
    ///   gain peaks at only ≈1.5× and concentrates at high queue depths
    ///   and small-to-medium I/O sizes (Figure 4),
    /// * flow limiting after ≈2.55× capacity written, to ≈10 % of budget
    ///   (Figure 3).
    pub fn aws_io2(capacity: u64) -> Self {
        let node = NodeConfig::default()
            .with_stream_bandwidth(2.1e9)
            // The 14 us serialized header puts the per-chunk op rate just
            // under the latency-bound random throughput at 4-32 KiB, which
            // is where Figure 4's ESSD-1 gain (1.24-1.52x) lives.
            .with_lane_header(LatencyDist::normal(
                SimDuration::from_micros(14),
                SimDuration::from_micros(1),
            ))
            .with_per_io(LatencyDist::normal(
                SimDuration::from_micros(25),
                SimDuration::from_micros(3),
            ))
            // Backend read service sized so 4 KiB random reads land near
            // the measured ~470 us (storage-server lookup + flash + EC).
            .with_flash(
                64,
                FlashTiming {
                    read_page: SimDuration::from_micros(200),
                    program_page: SimDuration::from_micros(600),
                    erase_block: SimDuration::from_millis(3),
                    bus_ns_per_byte: 0.5,
                },
                4096,
            );
        EssdConfig {
            name: "ESSD-1 (AWS io2 class)".to_string(),
            capacity,
            logical_block: 4096,
            stack_workers: 8,
            stack_per_io: LatencyDist::normal(
                SimDuration::from_micros(50),
                SimDuration::from_micros(6),
            ),
            net: NetConfig::intra_dc()
                .with_one_way(
                    LatencyDist::lognormal(SimDuration::from_micros(100), 0.18).with_tail(
                        LatencyDist::bounded_pareto(
                            SimDuration::from_micros(300),
                            1.6,
                            SimDuration::from_millis(2),
                        ),
                        0.002,
                    ),
                )
                .with_stream_bandwidth(0.45e9)
                .with_connections(32),
            cluster: ClusterConfig::small(capacity)
                .with_nodes(24)
                // Fine striping: large sequential windows already span many
                // stripes, so the random-write gain concentrates at small
                // I/O sizes (Figure 4's ESSD-1 shape).
                .with_chunk_bytes(512 << 10)
                .with_node(node),
            bandwidth_bytes_per_sec: 3.0e9,
            bandwidth_burst_bytes: 8.0 * 1024.0 * 1024.0,
            // Effective measured op rate (the marketed 25.6 K provisioned
            // IOPS meters 16 KiB units and is not the binding limit in the
            // paper's Figure 2/4 runs).
            iops: Some(IopsBudget {
                ops_per_sec: 190_000.0,
                unit_bytes: 16 << 10,
                burst_ops: 1024.0,
            }),
            throttle: Some(ThrottlePolicy {
                after_capacity_multiple: 2.55,
                limited_bytes_per_sec: 0.305e9,
            }),
            seed: 0xE551,
        }
    }

    /// ESSD-2: an Alibaba Cloud `PL3`-class volume.
    ///
    /// Calibration targets:
    /// * ~1.1 GB/s deterministic throughput budget with a 100 K IOPS cap,
    /// * 4 KiB QD1 write ≈ 140 µs (lower base latency than ESSD-1),
    /// * coarse chunks (32 MiB) and ~0.4 GB/s chunk lanes, so the
    ///   random-write gain reaches ≈2.8× across a wide size range
    ///   (Figure 4),
    /// * no flow limiting within 3× capacity (Figure 3).
    pub fn alibaba_pl3(capacity: u64) -> Self {
        let mut node = NodeConfig::default()
            .with_stream_bandwidth(0.42e9)
            .with_lane_header(LatencyDist::normal(
                SimDuration::from_micros(6),
                SimDuration::from_nanos(600),
            ))
            .with_per_io(LatencyDist::normal(
                SimDuration::from_micros(12),
                SimDuration::from_micros(2),
            ))
            .with_flash(
                64,
                FlashTiming {
                    read_page: SimDuration::from_micros(110),
                    program_page: SimDuration::from_micros(600),
                    erase_block: SimDuration::from_millis(3),
                    bus_ns_per_byte: 0.5,
                },
                4096,
            );
        node.staged_ack =
            LatencyDist::normal(SimDuration::from_micros(8), SimDuration::from_micros(1));
        node.replica_hop =
            LatencyDist::normal(SimDuration::from_micros(15), SimDuration::from_micros(2));
        EssdConfig {
            name: "ESSD-2 (Alibaba PL3 class)".to_string(),
            capacity,
            logical_block: 4096,
            stack_workers: 8,
            stack_per_io: LatencyDist::normal(
                SimDuration::from_micros(20),
                SimDuration::from_micros(3),
            ),
            net: NetConfig::intra_dc()
                .with_one_way(
                    LatencyDist::lognormal(SimDuration::from_micros(35), 0.22).with_tail(
                        LatencyDist::bounded_pareto(
                            SimDuration::from_micros(600),
                            1.1,
                            SimDuration::from_millis(12),
                        ),
                        0.003,
                    ),
                )
                .with_stream_bandwidth(0.37e9)
                .with_connections(32),
            cluster: ClusterConfig::small(capacity)
                .with_nodes(16)
                .with_chunk_bytes(32 << 20)
                .with_node(node),
            bandwidth_bytes_per_sec: 1.1e9,
            bandwidth_burst_bytes: 4.0 * 1024.0 * 1024.0,
            iops: Some(IopsBudget {
                ops_per_sec: 100_000.0,
                unit_bytes: 16 << 10,
                burst_ops: 256.0,
            }),
            throttle: None,
            seed: 0xE552,
        }
    }

    /// Replaces the throughput budget.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn with_bandwidth_budget(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "bandwidth budget must be positive"
        );
        self.bandwidth_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Replaces the IOPS budget (`None` removes it).
    pub fn with_iops(mut self, iops: Option<IopsBudget>) -> Self {
        self.iops = iops;
        self
    }

    /// Replaces the throttle policy (`None` removes it).
    pub fn with_throttle(mut self, throttle: Option<ThrottlePolicy>) -> Self {
        self.throttle = throttle;
        self
    }

    /// Replaces the jitter seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the device name. Checkpoints validate against the name
    /// at restore time, so fleet pools give each pool member a distinct
    /// one (e.g. `fleet-essd-3`).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_paper_table1_shape() {
        let e1 = EssdConfig::aws_io2(2 << 30);
        let e2 = EssdConfig::alibaba_pl3(2 << 30);
        assert!(e1.bandwidth_bytes_per_sec > e2.bandwidth_bytes_per_sec);
        assert!(e1.throttle.is_some());
        assert!(e2.throttle.is_none());
        assert!(e2.iops.is_some());
        // ESSD-2's chunking is coarser, its lanes slower: bigger rand gain.
        assert!(e2.cluster.chunk_bytes > e1.cluster.chunk_bytes);
        assert!(e2.cluster.node.stream_bytes_per_sec < e1.cluster.node.stream_bytes_per_sec);
    }

    #[test]
    fn iops_tokens_scale_with_size() {
        let b = IopsBudget {
            ops_per_sec: 1000.0,
            unit_bytes: 16 << 10,
            burst_ops: 10.0,
        };
        assert_eq!(b.tokens_for(4096), 1);
        assert_eq!(b.tokens_for(16 << 10), 1);
        assert_eq!(b.tokens_for((16 << 10) + 1), 2);
        assert_eq!(b.tokens_for(256 << 10), 16);
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = EssdConfig::aws_io2(1 << 30)
            .with_bandwidth_budget(5e9)
            .with_iops(None)
            .with_throttle(None)
            .with_seed(42)
            .with_name("fleet-essd-0");
        assert_eq!(cfg.bandwidth_bytes_per_sec, 5e9);
        assert!(cfg.throttle.is_none());
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.name, "fleet-essd-0");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_budget_rejected() {
        let _ = EssdConfig::aws_io2(1 << 30).with_bandwidth_budget(0.0);
    }
}
