//! [`Persist`] codecs for the elastic-SSD checkpoint types.
//!
//! [`EssdCheckpoint`] is a [`PersistPayload`], so an `Essd`'s type-erased
//! [`DeviceCheckpoint`](uc_blockdev::DeviceCheckpoint) — including an
//! engaged throttle's reduced token-bucket rate — can be saved to and
//! loaded from disk under the stable record tag [`EssdCheckpoint::KIND`].

use crate::{EssdCheckpoint, EssdConfig, EssdStats, IopsBudget, ThrottlePolicy};
use uc_blockdev::PersistPayload;
use uc_cluster::{ClusterConfig, ClusterSnapshot};
use uc_net::{HostStackSnapshot, NetConfig, NetPathSnapshot};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{LatencyDist, RngSnapshot, TokenBucketSnapshot};

impl Persist for IopsBudget {
    fn encode(&self, w: &mut Encoder) {
        w.put_f64(self.ops_per_sec);
        w.put_u32(self.unit_bytes);
        w.put_f64(self.burst_ops);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let budget = IopsBudget {
            ops_per_sec: r.get_f64()?,
            unit_bytes: r.get_u32()?,
            burst_ops: r.get_f64()?,
        };
        if budget.unit_bytes == 0 {
            return Err(DecodeError::InvalidValue {
                what: "IopsBudget.unit_bytes",
            });
        }
        Ok(budget)
    }
}

impl Persist for ThrottlePolicy {
    fn encode(&self, w: &mut Encoder) {
        w.put_f64(self.after_capacity_multiple);
        w.put_f64(self.limited_bytes_per_sec);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ThrottlePolicy {
            after_capacity_multiple: r.get_f64()?,
            limited_bytes_per_sec: r.get_f64()?,
        })
    }
}

impl Persist for EssdConfig {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(&self.name);
        w.put_u64(self.capacity);
        w.put_u32(self.logical_block);
        self.stack_workers.encode(w);
        self.stack_per_io.encode(w);
        self.net.encode(w);
        self.cluster.encode(w);
        w.put_f64(self.bandwidth_bytes_per_sec);
        w.put_f64(self.bandwidth_burst_bytes);
        self.iops.encode(w);
        self.throttle.encode(w);
        w.put_u64(self.seed);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = EssdConfig {
            name: r.get_string()?,
            capacity: r.get_u64()?,
            logical_block: r.get_u32()?,
            stack_workers: usize::decode(r)?,
            stack_per_io: LatencyDist::decode(r)?,
            net: NetConfig::decode(r)?,
            cluster: ClusterConfig::decode(r)?,
            bandwidth_bytes_per_sec: r.get_f64()?,
            bandwidth_burst_bytes: r.get_f64()?,
            iops: Option::<IopsBudget>::decode(r)?,
            throttle: Option::<ThrottlePolicy>::decode(r)?,
            seed: r.get_u64()?,
        };
        if config.logical_block == 0 {
            return Err(DecodeError::InvalidValue {
                what: "EssdConfig.logical_block",
            });
        }
        if !(config.bandwidth_bytes_per_sec > 0.0 && config.bandwidth_bytes_per_sec.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "EssdConfig.bandwidth_bytes_per_sec",
            });
        }
        Ok(config)
    }
}

impl Persist for EssdStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.put_u64(self.read_bytes);
        w.put_u64(self.write_bytes);
        w.put_bool(self.throttled);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EssdStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            read_bytes: r.get_u64()?,
            write_bytes: r.get_u64()?,
            throttled: r.get_bool()?,
        })
    }
}

impl Persist for EssdCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.stack.encode(w);
        self.tx.encode(w);
        self.rx.encode(w);
        self.cluster.encode(w);
        self.bandwidth.encode(w);
        self.iops.encode(w);
        self.rng.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(EssdCheckpoint {
            config: EssdConfig::decode(r)?,
            stack: HostStackSnapshot::decode(r)?,
            tx: NetPathSnapshot::decode(r)?,
            rx: NetPathSnapshot::decode(r)?,
            cluster: ClusterSnapshot::decode(r)?,
            bandwidth: TokenBucketSnapshot::decode(r)?,
            iops: Option::<TokenBucketSnapshot>::decode(r)?,
            rng: RngSnapshot::decode(r)?,
            stats: EssdStats::decode(r)?,
        })
    }
}

impl PersistPayload for EssdCheckpoint {
    const KIND: &'static str = "uc.essd-checkpoint.v1";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Essd;
    use uc_blockdev::{BlockDevice, IoRequest};
    use uc_sim::SimTime;

    #[test]
    fn throttled_essd_checkpoint_round_trips() {
        // Drive past the throttle threshold so the checkpoint carries the
        // engaged flag and the reduced token-bucket rate.
        let cfg = EssdConfig::aws_io2(32 << 20).with_throttle(Some(ThrottlePolicy {
            after_capacity_multiple: 1.0,
            limited_bytes_per_sec: 5e6,
        }));
        let mut essd = Essd::new(cfg);
        let io = 1 << 20;
        let mut now = SimTime::ZERO;
        for i in 0..40u64 {
            let off = (i % 30) * io as u64;
            now = essd.submit(&IoRequest::write(off, io, now)).unwrap();
        }
        assert!(essd.stats().throttled);

        let checkpoint = essd.snapshot();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = EssdCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, checkpoint);

        let mut restored = Essd::restore(back);
        assert_eq!(restored.current_rate(), 5e6, "throttled rate survives");
        let req = IoRequest::read(0, 4096, now);
        assert_eq!(restored.submit(&req), essd.submit(&req));
    }

    #[test]
    fn corrupt_config_is_typed() {
        let mut checkpoint = Essd::new(EssdConfig::alibaba_pl3(64 << 20)).snapshot();
        checkpoint.config.bandwidth_bytes_per_sec = f64::INFINITY;
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            EssdCheckpoint::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "EssdConfig.bandwidth_bytes_per_sec"
            })
        ));
    }
}
