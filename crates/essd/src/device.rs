//! The assembled elastic SSD device.

use crate::EssdConfig;
use uc_blockdev::{
    BlockDevice, CheckpointDevice, CheckpointError, DeviceCheckpoint, DeviceInfo, IoKind,
    IoRequest, IoResult,
};
use uc_cluster::{Cluster, ClusterSnapshot};
use uc_net::{HostStack, HostStackSnapshot, NetPath, NetPathSnapshot};
use uc_sim::{RngSnapshot, SimRng, SimTime, TokenBucket, TokenBucketSnapshot};

/// Protocol overhead bytes carried by every request/response message.
const HEADER_BYTES: u64 = 128;

/// Activity counters of an [`Essd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EssdStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// `true` once the provider throttle has engaged.
    pub throttled: bool,
}

/// A cloud elastic SSD.
///
/// Data path: host stack → budget token buckets → network (request) →
/// replicated cluster → network (response). See the crate docs for how
/// each stage maps to the paper's observations.
///
/// # Example
///
/// ```
/// use uc_blockdev::{BlockDevice, IoRequest};
/// use uc_essd::{Essd, EssdConfig};
/// use uc_sim::SimTime;
///
/// let mut essd = Essd::new(EssdConfig::alibaba_pl3(1 << 30));
/// let w = essd.submit(&IoRequest::write(0, 65536, SimTime::ZERO))?;
/// let r = essd.submit(&IoRequest::read(0, 65536, w))?;
/// assert!(r > w);
/// # Ok::<(), uc_blockdev::IoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Essd {
    config: EssdConfig,
    info: DeviceInfo,
    stack: HostStack,
    tx: NetPath,
    rx: NetPath,
    cluster: Cluster,
    bandwidth: TokenBucket,
    iops: Option<TokenBucket>,
    rng: SimRng,
    stats: EssdStats,
}

/// The complete serializable state of an [`Essd`]: the configuration plus
/// one snapshot per stateful layer (host stack, both network directions,
/// the backend cluster, the budget token buckets — including any engaged
/// throttle's reduced rate — the jitter RNG and the counters).
///
/// Captured by [`Essd::snapshot`] (or type-erased through
/// [`CheckpointDevice::checkpoint`]); [`Essd::restore`] rebuilds a device
/// that serves any subsequent request sequence with completion instants
/// identical to the original's.
#[derive(Debug, Clone, PartialEq)]
pub struct EssdCheckpoint {
    /// The configuration the device was built with.
    pub config: EssdConfig,
    /// Host virtualization/storage stack state.
    pub stack: HostStackSnapshot,
    /// Request-direction network path state.
    pub tx: NetPathSnapshot,
    /// Response-direction network path state.
    pub rx: NetPathSnapshot,
    /// Backend cluster state (per-node lanes, flash pools, counters).
    pub cluster: ClusterSnapshot,
    /// Throughput-budget bucket state (rate reflects any engaged
    /// throttle).
    pub bandwidth: TokenBucketSnapshot,
    /// IOPS-budget bucket state, if the device has an IOPS budget.
    pub iops: Option<TokenBucketSnapshot>,
    /// Jitter RNG state.
    pub rng: RngSnapshot,
    /// Device activity counters (including the throttle flag).
    pub stats: EssdStats,
}

impl Essd {
    /// Builds the device described by `config`.
    pub fn new(config: EssdConfig) -> Self {
        let info = DeviceInfo::new(
            config.name.clone(),
            config.capacity - config.capacity % config.logical_block as u64,
            config.logical_block,
        );
        let rng = SimRng::new(config.seed);
        let bandwidth = TokenBucket::new(
            config.bandwidth_burst_bytes.max(1.0),
            config.bandwidth_bytes_per_sec,
        );
        let iops = config
            .iops
            .map(|b| TokenBucket::new(b.burst_ops.max(1.0), b.ops_per_sec));
        Essd {
            info,
            stack: HostStack::new(config.stack_workers.max(1), config.stack_per_io.clone()),
            tx: NetPath::new(config.net.clone()),
            rx: NetPath::new(config.net.clone()),
            cluster: Cluster::new(config.cluster.clone()),
            bandwidth,
            iops,
            rng,
            stats: EssdStats::default(),
            config,
        }
    }

    /// Device activity counters.
    pub fn stats(&self) -> EssdStats {
        self.stats
    }

    /// The backend cluster (placement/load inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The configured (pre-throttle) throughput budget in bytes/second.
    pub fn bandwidth_budget(&self) -> f64 {
        self.config.bandwidth_bytes_per_sec
    }

    /// The current token-bucket refill rate in bytes/second (reflects any
    /// engaged throttle).
    pub fn current_rate(&self) -> f64 {
        self.bandwidth.rate()
    }

    /// Captures the device's complete state as a typed checkpoint.
    pub fn snapshot(&self) -> EssdCheckpoint {
        EssdCheckpoint {
            config: self.config.clone(),
            stack: self.stack.snapshot(),
            tx: self.tx.snapshot(),
            rx: self.rx.snapshot(),
            cluster: self.cluster.snapshot(),
            bandwidth: self.bandwidth.snapshot(),
            iops: self.iops.as_ref().map(TokenBucket::snapshot),
            rng: self.rng.snapshot(),
            stats: self.stats,
        }
    }

    /// Rebuilds a device that continues exactly where `checkpoint` was
    /// taken.
    pub fn restore(checkpoint: EssdCheckpoint) -> Self {
        let info = DeviceInfo::new(
            checkpoint.config.name.clone(),
            checkpoint.config.capacity
                - checkpoint.config.capacity % checkpoint.config.logical_block as u64,
            checkpoint.config.logical_block,
        );
        Essd {
            info,
            stack: HostStack::restore(checkpoint.stack),
            tx: NetPath::restore(checkpoint.tx),
            rx: NetPath::restore(checkpoint.rx),
            cluster: Cluster::restore(checkpoint.cluster),
            bandwidth: TokenBucket::restore(checkpoint.bandwidth),
            iops: checkpoint.iops.map(TokenBucket::restore),
            rng: SimRng::restore(checkpoint.rng),
            stats: checkpoint.stats,
            config: checkpoint.config,
        }
    }

    fn engage_throttle_if_due(&mut self, now: SimTime) {
        if self.stats.throttled {
            return;
        }
        let Some(policy) = self.config.throttle else {
            return;
        };
        let threshold = (self.config.capacity as f64 * policy.after_capacity_multiple) as u64;
        if self.stats.write_bytes >= threshold {
            self.bandwidth.set_rate(now, policy.limited_bytes_per_sec);
            self.stats.throttled = true;
        }
    }
}

impl BlockDevice for Essd {
    fn observe_into(&self, prefix: &str, obs: &mut uc_obs::MetricsRegistry) {
        let cluster = self.cluster.stats();
        for (name, v) in [
            ("host.reads", self.stats.reads),
            ("host.writes", self.stats.writes),
            ("host.read_bytes", self.stats.read_bytes),
            ("host.write_bytes", self.stats.write_bytes),
            ("cluster.write_fragments", cluster.write_fragments),
            ("cluster.read_fragments", cluster.read_fragments),
            ("cluster.bytes_written", cluster.bytes_written),
            ("cluster.bytes_read", cluster.bytes_read),
        ] {
            let id = obs.counter(&format!("{prefix}.{name}"));
            obs.set_counter(id, v);
        }
        // Budgets are configured in whole bytes/second; the integer cast
        // is exact for every profile and keeps the snapshot float-free.
        for (name, v) in [
            ("throttled", self.stats.throttled as i64),
            ("budget_bytes_per_sec", self.bandwidth_budget() as i64),
            ("rate_bytes_per_sec", self.current_rate() as i64),
        ] {
            let id = obs.gauge(&format!("{prefix}.{name}"));
            obs.set(id, v);
        }
        // Per-node load spread: how evenly chunk placement fans fragments
        // out across the backend (node order is fixed by construction).
        for (i, node) in self.cluster.node_stats().iter().enumerate() {
            for (name, v) in [
                ("reads", node.reads),
                ("writes", node.writes),
                ("bytes_read", node.bytes_read),
                ("bytes_written", node.bytes_written),
            ] {
                let id = obs.counter(&format!("{prefix}.node{i}.{name}"));
                obs.set_counter(id, v);
            }
        }
    }

    fn info(&self) -> DeviceInfo {
        self.info.clone()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        self.info.validate(req)?;

        // 1. Host virtualization/storage stack.
        let t_stack = self.stack.process(req.submit_time, &mut self.rng);

        // 2. Tenant budgets: bytes and (optionally) size-weighted IOPS.
        let mut t_budget = self.bandwidth.reserve(t_stack, req.len as u64);
        if let (Some(bucket), Some(budget)) = (self.iops.as_mut(), self.config.iops) {
            let t_iops = bucket.reserve(t_stack, budget.tokens_for(req.len));
            t_budget = t_budget.max(t_iops);
        }

        // 3. Request over the fabric; 4. cluster service; 5. response.
        let done = match req.kind {
            IoKind::Write => {
                let arrival = self
                    .tx
                    .send(t_budget, HEADER_BYTES + req.len as u64, &mut self.rng);
                let ack = self
                    .cluster
                    .write(arrival, req.offset, req.len, &mut self.rng);
                self.stats.writes += 1;
                self.stats.write_bytes += req.len as u64;
                self.rx.send(ack, HEADER_BYTES, &mut self.rng)
            }
            IoKind::Read => {
                let arrival = self.tx.send(t_budget, HEADER_BYTES, &mut self.rng);
                let data = self
                    .cluster
                    .read(arrival, req.offset, req.len, &mut self.rng);
                self.stats.reads += 1;
                self.stats.read_bytes += req.len as u64;
                self.rx
                    .send(data, HEADER_BYTES + req.len as u64, &mut self.rng)
            }
        };

        self.engage_throttle_if_due(done);
        Ok(done)
    }

    // `submit_batch` deliberately stays on the trait default: the default
    // body is monomorphized per impl, so batched submission is already a
    // loop of statically dispatched `submit` calls with identical
    // completion instants (asserted by `batch_submission_matches_sequential`).
}

impl CheckpointDevice for Essd {
    fn checkpoint(&self) -> DeviceCheckpoint {
        // `EssdCheckpoint` is a `PersistPayload`, so every checkpoint taken
        // through this seam has a durable on-disk form (`save_to`).
        DeviceCheckpoint::persistent(self.info.name(), self.snapshot())
    }

    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        checkpoint.expect_device(self.info.name())?;
        let state = checkpoint.into_state::<EssdCheckpoint>()?;
        #[cfg(feature = "strict-invariants")]
        let expected = state.clone();
        let restored = Essd::restore(state);
        // Same name is not enough: a checkpoint from a differently-scaled
        // device must not silently shrink or grow this one.
        if restored.info != self.info {
            return Err(CheckpointError::DeviceMismatch {
                expected: format!("{} ({} B)", self.info.name(), self.info.capacity()),
                found: format!("{} ({} B)", restored.info.name(), restored.info.capacity()),
            });
        }
        // Contract hook (deep): thaw(freeze(d)) is observationally exact —
        // re-freezing the thawed device reproduces the checkpoint verbatim.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-essd/Essd",
                    "thaw-freeze-exact",
                    "re-freezing the restored device does not reproduce its checkpoint",
                ));
            }
            Ok(())
        });
        *self = restored;
        Ok(())
    }
}

// The factory contract: built devices cross thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Essd>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThrottlePolicy;
    use uc_blockdev::IoBatch;
    use uc_sim::SimDuration;

    fn essd1() -> Essd {
        Essd::new(EssdConfig::aws_io2(256 << 20))
    }

    #[test]
    fn batch_submission_matches_sequential() {
        let reqs: Vec<IoRequest> = (0..24u64)
            .map(|i| {
                let off = (i.wrapping_mul(2654435761) % 1024) * 65536;
                if i % 3 == 0 {
                    IoRequest::read(off, 65536, SimTime::ZERO)
                } else {
                    IoRequest::write(off, 4096, SimTime::ZERO)
                }
            })
            .collect();
        let mut sequential = essd1();
        let expected: Vec<SimTime> = reqs.iter().map(|r| sequential.submit(r).unwrap()).collect();
        let mut batched = essd1();
        let batch: IoBatch = reqs.iter().copied().collect();
        let done: Vec<SimTime> = batched
            .submit_batch(&batch)
            .unwrap()
            .iter()
            .map(|c| c.completes)
            .collect();
        assert_eq!(done, expected);
        assert_eq!(batched.stats(), sequential.stats());
    }

    fn us(d: SimDuration) -> f64 {
        d.as_micros_f64()
    }

    #[test]
    fn small_write_pays_network_overhead() {
        let mut dev = essd1();
        let done = dev
            .submit(&IoRequest::write(0, 4096, SimTime::ZERO))
            .unwrap();
        let lat = us(done - SimTime::ZERO);
        assert!(
            (150.0..800.0).contains(&lat),
            "cloud 4K write took {lat} us; expected hundreds of us"
        );
    }

    #[test]
    fn random_read_pays_backend_flash() {
        let mut dev = essd1();
        let done = dev
            .submit(&IoRequest::read(64 << 20, 4096, SimTime::ZERO))
            .unwrap();
        let lat = us(done - SimTime::ZERO);
        assert!(
            (250.0..1200.0).contains(&lat),
            "cloud 4K read took {lat} us"
        );
    }

    #[test]
    fn latency_stays_flat_at_moderate_depth() {
        // Unlike the local SSD's serialized firmware, the ESSD absorbs a
        // QD16 burst with roughly QD1 latency (Observation 1 mechanism).
        let mut dev = essd1();
        let mut completions = Vec::new();
        for i in 0..16u64 {
            let done = dev
                .submit(&IoRequest::write(i * (8 << 20), 4096, SimTime::ZERO))
                .unwrap();
            completions.push(us(done - SimTime::ZERO));
        }
        let min = completions.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = completions.iter().cloned().fold(0.0, f64::max);
        assert!(
            max < 3.0 * min,
            "QD16 latency spread should be mild: min {min}, max {max}"
        );
    }

    #[test]
    fn throughput_budget_paces_sustained_load() {
        let mut dev = essd1();
        let io = 1 << 20;
        let n = 64u64;
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for i in 0..n {
            let off = (i * io as u64) % (dev.info().capacity() - io as u64);
            let done = dev.submit(&IoRequest::write(off, io, now)).unwrap();
            last = last.max(done);
            now = done; // closed loop, QD1 against the bucket
        }
        let gbps = (n * io as u64) as f64 / 1e9 / last.as_secs_f64();
        assert!(
            gbps <= dev.bandwidth_budget() / 1e9 * 1.1,
            "sustained rate {gbps} GB/s must respect the 3 GB/s budget"
        );
    }

    #[test]
    fn throttle_engages_after_cumulative_writes() {
        let cfg = EssdConfig::aws_io2(16 << 20).with_throttle(Some(ThrottlePolicy {
            after_capacity_multiple: 1.0,
            limited_bytes_per_sec: 1e6,
        }));
        let mut dev = Essd::new(cfg);
        let mut now = SimTime::ZERO;
        let io = 1 << 20;
        for i in 0..20u64 {
            let off = (i % 15) * io as u64;
            now = dev.submit(&IoRequest::write(off, io, now)).unwrap();
        }
        assert!(dev.stats().throttled);
        assert_eq!(dev.current_rate(), 1e6);
    }

    #[test]
    fn iops_budget_paces_small_ios() {
        use crate::IopsBudget;
        let cfg = EssdConfig::alibaba_pl3(256 << 20).with_iops(Some(IopsBudget {
            ops_per_sec: 1000.0,
            unit_bytes: 16 << 10,
            burst_ops: 1.0,
        }));
        let mut dev = Essd::new(cfg);
        let mut now = SimTime::ZERO;
        for i in 0..50u64 {
            now = dev.submit(&IoRequest::write(i * 4096, 4096, now)).unwrap();
        }
        // 50 ops at 1000 ops/s is at least ~49 ms.
        assert!(
            now.as_secs_f64() > 0.045,
            "IOPS pacing should stretch the run, got {}s",
            now.as_secs_f64()
        );
    }

    #[test]
    fn stats_and_validation() {
        let mut dev = essd1();
        assert!(dev
            .submit(&IoRequest::read(1, 4096, SimTime::ZERO))
            .is_err());
        dev.submit(&IoRequest::write(0, 8192, SimTime::ZERO))
            .unwrap();
        dev.submit(&IoRequest::read(0, 4096, SimTime::ZERO))
            .unwrap();
        let s = dev.stats();
        assert_eq!((s.writes, s.reads), (1, 1));
        assert_eq!(s.write_bytes, 8192);
        assert_eq!(s.read_bytes, 4096);
        assert!(!s.throttled);
    }

    #[test]
    fn checkpoint_restore_continues_identically() {
        // Drive the device across its throttle threshold midway, so the
        // checkpoint must carry the reduced token-bucket rate and the
        // engaged flag.
        let cfg = EssdConfig::aws_io2(32 << 20).with_throttle(Some(ThrottlePolicy {
            after_capacity_multiple: 1.0,
            limited_bytes_per_sec: 5e6,
        }));
        let mut a = Essd::new(cfg);
        let io = 1 << 20;
        let mut now = SimTime::ZERO;
        for i in 0..40u64 {
            let off = (i % 30) * io as u64;
            now = a.submit(&IoRequest::write(off, io, now)).unwrap();
        }
        assert!(a.stats().throttled, "midpoint must be past the throttle");
        let cp = CheckpointDevice::checkpoint(&a);
        let mut b = Essd::new(
            EssdConfig::aws_io2(32 << 20).with_throttle(Some(ThrottlePolicy {
                after_capacity_multiple: 1.0,
                limited_bytes_per_sec: 5e6,
            })),
        );
        b.restore_from(cp).unwrap();
        assert_eq!(b.snapshot(), a.snapshot(), "restore is lossless");
        assert_eq!(b.current_rate(), 5e6, "throttled rate survives");
        let mut now_b = now;
        for i in 0..24u64 {
            let off = ((i * 7) % 30) * io as u64;
            let kind_read = i % 3 == 0;
            let req_a = if kind_read {
                IoRequest::read(off, 4096, now)
            } else {
                IoRequest::write(off, 4096, now)
            };
            let req_b = if kind_read {
                IoRequest::read(off, 4096, now_b)
            } else {
                IoRequest::write(off, 4096, now_b)
            };
            now = a.submit(&req_a).unwrap();
            now_b = b.submit(&req_b).unwrap();
            assert_eq!(now, now_b);
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn checkpoint_rejects_other_device_class() {
        use uc_ssd::{Ssd, SsdConfig};
        let ssd_cp = CheckpointDevice::checkpoint(&Ssd::new(SsdConfig::samsung_970_pro(256 << 20)));
        let mut essd = essd1();
        // Name mismatch is caught first; even a name collision would then
        // fail the payload downcast.
        assert!(essd.restore_from(ssd_cp).is_err());
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut dev = Essd::new(EssdConfig::aws_io2(64 << 20));
            let mut now = SimTime::ZERO;
            for i in 0..32u64 {
                now = dev
                    .submit(&IoRequest::write(
                        (i * 12345 * 4096) % (32 << 20),
                        4096,
                        now,
                    ))
                    .unwrap();
            }
            now
        };
        assert_eq!(run(), run());
    }
}
