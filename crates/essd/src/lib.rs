//! Elastic solid-state drive (ESSD) model.
//!
//! The virtualized cloud block device of the paper: a
//! [`BlockDevice`](uc_blockdev::BlockDevice) whose
//! data path traverses the host software stack, the datacenter network and
//! a replicated storage cluster, and whose *performance envelope* is an
//! explicit per-tenant contract enforced by token buckets:
//!
//! * a **throughput budget** (bytes/second) — the same cap for any
//!   read/write mix, which is why the maximum bandwidth is deterministic
//!   (Observation 4),
//! * an optional **IOPS budget** with a size-dependent token cost — why the
//!   paper finds guaranteed IOPS "non-deterministic and closely related to
//!   the I/O size",
//! * an optional **throttle policy** — the provider-side flow limiting the
//!   paper hypothesizes behind ESSD-1's late throughput drop in Figure 3.
//!
//! Two calibrated profiles mirror the paper's devices:
//! [`EssdConfig::aws_io2`] (ESSD-1) and [`EssdConfig::alibaba_pl3`]
//! (ESSD-2).
//!
//! # Example
//!
//! ```
//! use uc_blockdev::{BlockDevice, IoRequest};
//! use uc_essd::{Essd, EssdConfig};
//! use uc_sim::SimTime;
//!
//! let mut essd = Essd::new(EssdConfig::aws_io2(1 << 30));
//! let done = essd.submit(&IoRequest::write(0, 4096, SimTime::ZERO))?;
//! // A small cloud write pays the network + stack overhead: hundreds of
//! // microseconds, not the ~10 us a local SSD takes (Observation 1).
//! assert!((done - SimTime::ZERO).as_micros_f64() > 100.0);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod device;
mod persist;

pub use config::{EssdConfig, IopsBudget, ThrottlePolicy};
pub use device::{Essd, EssdCheckpoint, EssdStats};
