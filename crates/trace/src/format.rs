//! The `uc.trace.v1` binary trace format.
//!
//! A binary trace is a standard `uc-persist` record file (see
//! `uc_persist::record` for the envelope: magic, format version, kind
//! tag, payload length, payload, CRC-32) whose payload is:
//!
//! | bytes | field |
//! |---|---|
//! | 8 | entry count, little-endian `u64` |
//! | 21 × n | entries: arrival nanos `u64`, kind `u8`, offset `u64`, length `u32` |
//!
//! Entries are fixed-width, so the payload length is known before any
//! entry is written — which is what lets [`TraceWriter`] and
//! [`TraceReader`] *stream* GiB-scale traces through a small buffer
//! (CRC accumulated incrementally via [`uc_persist::Crc32`]) while
//! producing/consuming files byte-identical to the in-memory
//! [`encode_trace`] / [`decode_trace`] pair.
//!
//! Decoding is defensive end to end: envelope problems surface as the
//! matching [`DecodeError`] variant, and decoded entries pass the same
//! shared validation as the text parser (non-zero lengths,
//! non-decreasing timestamps) so a malformed file is a typed
//! [`TraceFileError`] at load time — never a mid-replay surprise.

use std::fmt;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use uc_persist::{Crc32, DecodeError, Decoder, Encoder, Persist, FORMAT_VERSION, MAGIC};
use uc_workload::{Trace, TraceEntry, TraceError};

/// The record kind tag of a binary trace. Bump the suffix when the
/// payload layout changes.
pub const TRACE_RECORD_KIND: &str = "uc.trace.v1";

/// Wire size of one encoded entry (`u64` + `u8` + `u64` + `u32`).
const ENTRY_WIRE: usize = 21;

/// Why a binary trace file failed to load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceFileError {
    /// The record envelope or an entry failed to decode (truncation,
    /// corruption, foreign bytes, future version, unknown kind, I/O).
    Decode(DecodeError),
    /// The bytes decoded, but the entries violate the trace invariants
    /// (zero-length I/O, regressing timestamps).
    Invalid(TraceError),
}

impl fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFileError::Decode(e) => write!(f, "decoding binary trace: {e}"),
            TraceFileError::Invalid(e) => write!(f, "invalid trace contents: {e}"),
        }
    }
}

impl std::error::Error for TraceFileError {}

impl From<DecodeError> for TraceFileError {
    fn from(e: DecodeError) -> Self {
        TraceFileError::Decode(e)
    }
}

impl From<TraceError> for TraceFileError {
    fn from(e: TraceError) -> Self {
        TraceFileError::Invalid(e)
    }
}

/// The payload length for `count` entries, guarding against overflow.
fn payload_len(count: u64) -> Option<u64> {
    count
        .checked_mul(ENTRY_WIRE as u64)
        .and_then(|n| n.checked_add(8))
}

/// Encodes a trace into a complete `uc.trace.v1` record (envelope
/// included) in memory.
///
/// Byte-identical to what [`save_trace`] writes to disk; prefer the
/// streaming [`TraceWriter`] for traces too large to buffer.
pub fn encode_trace(trace: &Trace) -> Vec<u8> {
    let mut payload = Encoder::new();
    payload.put_u64(trace.len() as u64);
    for entry in trace.entries() {
        entry.encode(&mut payload);
    }
    uc_persist::encode_record(TRACE_RECORD_KIND, payload.as_bytes())
}

/// Decodes a complete `uc.trace.v1` record from memory, validating every
/// entry.
///
/// # Errors
///
/// Returns [`TraceFileError::Decode`] for malformed bytes (wrong magic,
/// kind or version, truncation, checksum mismatch, trailing bytes) and
/// [`TraceFileError::Invalid`] for well-formed bytes whose entries
/// violate the trace invariants.
pub fn decode_trace(bytes: &[u8]) -> Result<Trace, TraceFileError> {
    let (kind, payload) = uc_persist::decode_record(bytes)?;
    if kind != TRACE_RECORD_KIND {
        return Err(DecodeError::UnknownKind { found: kind }.into());
    }
    let mut r = Decoder::new(payload);
    let count = r.get_u64()?;
    if payload_len(count) != Some(payload.len() as u64) {
        return Err(DecodeError::InvalidValue {
            what: "trace entry count",
        }
        .into());
    }
    let mut entries = Vec::with_capacity(count as usize);
    let mut prev = uc_sim::SimTime::ZERO;
    for index in 0..count as usize {
        let entry = TraceEntry::decode(&mut r)?;
        entry.validate(index, None)?;
        if entry.at < prev {
            return Err(TraceError::TimestampRegression {
                index,
                prev,
                at: entry.at,
            }
            .into());
        }
        prev = entry.at;
        entries.push(entry);
    }
    r.finish()?;
    Ok(Trace::from_entries(entries))
}

/// Writes a trace to `path` as a `uc.trace.v1` record file (streaming,
/// atomic temp-file + rename).
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn save_trace(path: &Path, trace: &Trace) -> io::Result<()> {
    let mut writer = TraceWriter::create(path, trace.len() as u64)?;
    for entry in trace.entries() {
        writer.append(entry)?;
    }
    writer.finish()
}

/// Reads a `uc.trace.v1` record file back into a [`Trace`] (streaming).
///
/// # Errors
///
/// See [`decode_trace`]; filesystem errors surface as
/// [`DecodeError::Io`] inside [`TraceFileError::Decode`].
pub fn load_trace(path: &Path) -> Result<Trace, TraceFileError> {
    let mut reader = TraceReader::open(path)?;
    let mut entries = Vec::with_capacity(reader.remaining().min(1 << 20) as usize);
    for entry in reader.by_ref() {
        entries.push(entry?);
    }
    Ok(Trace::from_entries(entries))
}

/// A streaming `uc.trace.v1` encoder: entries go straight to disk
/// through a small buffer, with the record CRC accumulated
/// incrementally — a GiB-scale trace never sits in memory.
///
/// The entry count is declared up front (fixed-width entries make the
/// payload length computable), [`TraceWriter::append`] is called once
/// per entry, and [`TraceWriter::finish`] seals the checksum and
/// atomically renames the temp file into place. Dropping the writer
/// without finishing leaves only the `.tmp` file, never a torn record.
///
/// # Example
///
/// ```no_run
/// use uc_trace::TraceWriter;
/// use uc_workload::Trace;
///
/// let trace: Trace = "0 W 0 4096\n1000 R 4096 4096".parse()?;
/// let mut writer = TraceWriter::create("run.trace".as_ref(), trace.len() as u64)?;
/// for entry in trace.entries() {
///     writer.append(entry)?;
/// }
/// writer.finish()?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct TraceWriter {
    file: BufWriter<File>,
    tmp: PathBuf,
    path: PathBuf,
    crc: Crc32,
    declared: u64,
    written: u64,
}

impl TraceWriter {
    /// Opens a streaming writer for exactly `entries` entries.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; rejects entry counts whose payload
    /// length would overflow.
    pub fn create(path: &Path, entries: u64) -> io::Result<Self> {
        let payload = payload_len(entries).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "trace entry count overflows")
        })?;
        let tmp = path.with_extension("tmp");
        let mut file = BufWriter::new(File::create(&tmp)?);
        // The envelope head, byte-compatible with
        // `uc_persist::encode_record`: version, kind tag, payload length
        // — then the payload's own first field, the entry count.
        let mut head = Encoder::new();
        head.put_u16(FORMAT_VERSION);
        head.put_str(TRACE_RECORD_KIND);
        head.put_u64(payload);
        head.put_u64(entries);
        file.write_all(&MAGIC)?;
        file.write_all(head.as_bytes())?;
        let mut crc = Crc32::new();
        crc.update(head.as_bytes());
        Ok(TraceWriter {
            file,
            tmp,
            path: path.to_path_buf(),
            crc,
            declared: entries,
            written: 0,
        })
    }

    /// Entries still owed before [`TraceWriter::finish`] may be called.
    pub fn remaining(&self) -> u64 {
        self.declared - self.written
    }

    /// Appends one entry.
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] past the declared
    /// count, and propagates filesystem errors.
    pub fn append(&mut self, entry: &TraceEntry) -> io::Result<()> {
        if self.written >= self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("trace writer declared {} entries", self.declared),
            ));
        }
        let mut buf = Encoder::new();
        entry.encode(&mut buf);
        debug_assert_eq!(buf.as_bytes().len(), ENTRY_WIRE);
        self.file.write_all(buf.as_bytes())?;
        self.crc.update(buf.as_bytes());
        self.written += 1;
        Ok(())
    }

    /// Seals the record (writes the CRC, syncs, renames into place).
    ///
    /// # Errors
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if fewer entries than
    /// declared were appended, and propagates filesystem errors.
    pub fn finish(mut self) -> io::Result<()> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "trace writer declared {} entries but {} were appended",
                    self.declared, self.written
                ),
            ));
        }
        self.file.write_all(&self.crc.finalize().to_le_bytes())?;
        self.file.flush()?;
        self.file.get_ref().sync_all()?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

/// A streaming `uc.trace.v1` decoder: yields validated entries one at a
/// time through a small buffer, verifying the record CRC after the last
/// entry — the memory-bounded dual of [`TraceWriter`].
///
/// Iterate it like any `Iterator<Item = Result<TraceEntry,
/// TraceFileError>>`; the checksum verdict arrives as the final `Err`
/// (if any), so a consumer must drain the iterator before trusting the
/// whole stream. [`load_trace`] does exactly that.
#[derive(Debug)]
pub struct TraceReader {
    file: BufReader<File>,
    path: PathBuf,
    crc: Crc32,
    remaining: u64,
    index: usize,
    prev: uc_sim::SimTime,
    done: bool,
}

impl TraceReader {
    /// Opens a trace file and decodes its envelope head.
    ///
    /// # Errors
    ///
    /// Returns the [`DecodeError`] variant matching what is wrong with
    /// the envelope (foreign magic, future version, wrong kind,
    /// truncation, inconsistent lengths), wrapped in
    /// [`TraceFileError::Decode`].
    pub fn open(path: &Path) -> Result<Self, TraceFileError> {
        let file = File::open(path).map_err(|e| DecodeError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        let mut reader = TraceReader {
            file: BufReader::new(file),
            path: path.to_path_buf(),
            crc: Crc32::new(),
            remaining: 0,
            index: 0,
            prev: uc_sim::SimTime::ZERO,
            done: false,
        };
        let mut magic = [0u8; 8];
        reader.fill(&mut magic, false)?;
        if magic != MAGIC {
            return Err(DecodeError::BadMagic.into());
        }
        let mut version = [0u8; 2];
        reader.fill(&mut version, true)?;
        let version = u16::from_le_bytes(version);
        if version != FORMAT_VERSION {
            return Err(DecodeError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            }
            .into());
        }
        let kind_len = reader.read_u64()?;
        if kind_len != TRACE_RECORD_KIND.len() as u64 {
            return Err(DecodeError::UnknownKind {
                found: format!("<{kind_len}-byte kind>"),
            }
            .into());
        }
        let mut kind = [0u8; TRACE_RECORD_KIND.len()];
        reader.fill(&mut kind, true)?;
        if kind != TRACE_RECORD_KIND.as_bytes() {
            return Err(DecodeError::UnknownKind {
                found: String::from_utf8_lossy(&kind).into_owned(),
            }
            .into());
        }
        let payload = reader.read_u64()?;
        let count = reader.read_u64()?;
        if payload_len(count) != Some(payload) {
            return Err(DecodeError::InvalidValue {
                what: "trace entry count",
            }
            .into());
        }
        reader.remaining = count;
        Ok(reader)
    }

    /// Entries not yet yielded.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }

    /// Reads exactly `buf.len()` bytes, optionally feeding the CRC.
    fn fill(&mut self, buf: &mut [u8], checksummed: bool) -> Result<(), TraceFileError> {
        let mut got = 0;
        while got < buf.len() {
            let n = self
                .file
                .read(&mut buf[got..])
                .map_err(|e| DecodeError::Io {
                    path: self.path.display().to_string(),
                    message: e.to_string(),
                })?;
            if n == 0 {
                return Err(DecodeError::Truncated {
                    needed: buf.len() as u64,
                    available: got as u64,
                }
                .into());
            }
            got += n;
        }
        if checksummed {
            self.crc.update(buf);
        }
        Ok(())
    }

    fn read_u64(&mut self) -> Result<u64, TraceFileError> {
        let mut buf = [0u8; 8];
        self.fill(&mut buf, true)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Yields the next validated entry; after the last one, verifies the
    /// CRC and that the file ends.
    fn next_entry(&mut self) -> Result<Option<TraceEntry>, TraceFileError> {
        if self.remaining == 0 {
            let mut stored = [0u8; 4];
            self.fill(&mut stored, false)?;
            let stored = u32::from_le_bytes(stored);
            let computed = self.crc.finalize();
            if stored != computed {
                return Err(DecodeError::ChecksumMismatch { stored, computed }.into());
            }
            let mut probe = [0u8; 1];
            let extra = self.file.read(&mut probe).map_err(|e| DecodeError::Io {
                path: self.path.display().to_string(),
                message: e.to_string(),
            })?;
            if extra != 0 {
                return Err(DecodeError::TrailingBytes { count: 1 }.into());
            }
            return Ok(None);
        }
        let mut buf = [0u8; ENTRY_WIRE];
        self.fill(&mut buf, true)?;
        let mut r = Decoder::new(&buf);
        let entry = TraceEntry::decode(&mut r)?;
        entry.validate(self.index, None)?;
        if entry.at < self.prev {
            return Err(TraceError::TimestampRegression {
                index: self.index,
                prev: self.prev,
                at: entry.at,
            }
            .into());
        }
        self.prev = entry.at;
        self.index += 1;
        self.remaining -= 1;
        Ok(Some(entry))
    }
}

impl Iterator for TraceReader {
    type Item = Result<TraceEntry, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        match self.next_entry() {
            Ok(Some(entry)) => Some(Ok(entry)),
            Ok(None) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

/// A trace in its binary wire form — the `From`/`TryFrom` bridge between
/// the text [`Trace`] and the `uc.trace.v1` bytes.
///
/// # Example
///
/// ```
/// use uc_trace::EncodedTrace;
/// use uc_workload::Trace;
///
/// let trace: Trace = "0 W 0 4096\n1000 R 4096 4096".parse()?;
/// let encoded = EncodedTrace::from(&trace);
/// let back = Trace::try_from(&encoded)?;
/// assert_eq!(back, trace);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EncodedTrace(Vec<u8>);

impl EncodedTrace {
    /// Wraps raw bytes (validated when converted back into a [`Trace`]).
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        EncodedTrace(bytes)
    }

    /// The complete record bytes (envelope included).
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the wrapper, yielding the record bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }
}

impl From<&Trace> for EncodedTrace {
    fn from(trace: &Trace) -> Self {
        EncodedTrace(encode_trace(trace))
    }
}

impl From<Trace> for EncodedTrace {
    fn from(trace: Trace) -> Self {
        EncodedTrace::from(&trace)
    }
}

impl TryFrom<&EncodedTrace> for Trace {
    type Error = TraceFileError;

    fn try_from(encoded: &EncodedTrace) -> Result<Self, Self::Error> {
        decode_trace(&encoded.0)
    }
}

impl TryFrom<EncodedTrace> for Trace {
    type Error = TraceFileError;

    fn try_from(encoded: EncodedTrace) -> Result<Self, Self::Error> {
        decode_trace(&encoded.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("uc-trace-format-tests")
            .join(format!("{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample() -> Trace {
        Trace::bursty_writes(3, 7, SimDuration::from_millis(2), 8192, 4 << 20, 42)
    }

    #[test]
    fn memory_round_trip_is_lossless() {
        let trace = sample();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, trace);
        // Text → binary → text is byte-identical.
        assert_eq!(back.to_text(), trace.to_text());
        // Empty traces round-trip too.
        let empty = Trace::new();
        assert_eq!(decode_trace(&encode_trace(&empty)).unwrap(), empty);
    }

    #[test]
    fn streaming_writer_matches_in_memory_encoder_byte_for_byte() {
        let dir = temp_dir("stream-vs-memory");
        let trace = sample();
        let path = dir.join("t.trace");
        save_trace(&path, &trace).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), encode_trace(&trace));
        assert!(!path.with_extension("tmp").exists());
        // And the generic record reader accepts the streamed file.
        let (kind, _) = uc_persist::read_record_file(&path).unwrap();
        assert_eq!(kind, TRACE_RECORD_KIND);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_reader_round_trips_and_counts() {
        let dir = temp_dir("stream-read");
        let trace = sample();
        let path = dir.join("t.trace");
        save_trace(&path, &trace).unwrap();
        let mut reader = TraceReader::open(&path).unwrap();
        assert_eq!(reader.remaining(), trace.len() as u64);
        let first = reader.next().unwrap().unwrap();
        assert_eq!(first, trace.entries()[0]);
        assert_eq!(reader.remaining(), trace.len() as u64 - 1);
        let loaded = load_trace(&path).unwrap();
        assert_eq!(loaded, trace);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn writer_enforces_the_declared_count() {
        let dir = temp_dir("writer-count");
        let trace = sample();
        let path = dir.join("t.trace");
        // Too few entries: finish refuses.
        let mut writer = TraceWriter::create(&path, 5).unwrap();
        writer.append(&trace.entries()[0]).unwrap();
        assert_eq!(writer.remaining(), 4);
        let err = writer.finish().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(!path.exists(), "no torn record was published");
        // Too many entries: append refuses.
        let mut writer = TraceWriter::create(&path, 1).unwrap();
        writer.append(&trace.entries()[0]).unwrap();
        let err = writer.append(&trace.entries()[1]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        writer.finish().unwrap();
        assert_eq!(load_trace(&path).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corruption_is_typed_in_memory_and_streaming() {
        let dir = temp_dir("corruption");
        let trace = sample();
        let good = encode_trace(&trace);
        let path = dir.join("t.trace");

        type Check = fn(&TraceFileError) -> bool;
        let cases: Vec<(&str, Vec<u8>, Check)> = vec![
            (
                "wrong magic",
                {
                    let mut v = good.clone();
                    v[0] ^= 0xFF;
                    v
                },
                |e| matches!(e, TraceFileError::Decode(DecodeError::BadMagic)),
            ),
            (
                "future version",
                {
                    let mut v = good.clone();
                    v[8] = 0xFF;
                    v[9] = 0xFF;
                    v
                },
                |e| {
                    matches!(
                        e,
                        TraceFileError::Decode(DecodeError::UnsupportedVersion {
                            found: 0xFFFF,
                            ..
                        })
                    )
                },
            ),
            (
                "truncated mid-entry",
                good[..good.len() - 30].to_vec(),
                |e| matches!(e, TraceFileError::Decode(DecodeError::Truncated { .. })),
            ),
            (
                "flipped payload bit",
                {
                    let mut v = good.clone();
                    let mid = v.len() / 2;
                    v[mid] ^= 0x10;
                    v
                },
                |e| {
                    matches!(
                        e,
                        TraceFileError::Decode(DecodeError::ChecksumMismatch { .. })
                    )
                },
            ),
            (
                "trailing junk",
                {
                    let mut v = good.clone();
                    v.extend_from_slice(b"tail");
                    v
                },
                |e| matches!(e, TraceFileError::Decode(DecodeError::TrailingBytes { .. })),
            ),
        ];
        for (label, bytes, expected) in &cases {
            // In-memory decode. A flipped bit may land in an entry field
            // (checksum failure) or a length; both are typed.
            let err = decode_trace(bytes).unwrap_err();
            assert!(expected(&err), "{label}: decode_trace gave {err:?}");
            // Streaming decode of the same bytes.
            std::fs::write(&path, bytes).unwrap();
            let err = match TraceReader::open(&path) {
                Err(e) => e,
                Ok(reader) => reader
                    .filter_map(|r| r.err())
                    .next()
                    .unwrap_or_else(|| panic!("{label}: streaming read must fail")),
            };
            assert!(expected(&err), "{label}: TraceReader gave {err:?}");
        }

        // A wrong kind tag is an UnknownKind for both paths.
        let foreign = uc_persist::encode_record("uc.other.v1", b"12345678");
        assert!(matches!(
            decode_trace(&foreign).unwrap_err(),
            TraceFileError::Decode(DecodeError::UnknownKind { .. })
        ));
        std::fs::write(&path, &foreign).unwrap();
        assert!(matches!(
            TraceReader::open(&path).unwrap_err(),
            TraceFileError::Decode(DecodeError::UnknownKind { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn invalid_entries_are_typed_at_decode_time() {
        // Hand-build a payload with a zero-length entry.
        let mut payload = Encoder::new();
        payload.put_u64(1);
        TraceEntry {
            at: uc_sim::SimTime::ZERO,
            kind: uc_blockdev::IoKind::Write,
            offset: 0,
            len: 0,
        }
        .encode(&mut payload);
        let record = uc_persist::encode_record(TRACE_RECORD_KIND, payload.as_bytes());
        assert_eq!(
            decode_trace(&record).unwrap_err(),
            TraceFileError::Invalid(TraceError::ZeroLength { index: 0 })
        );

        // And one whose timestamps regress.
        let entries = [
            TraceEntry {
                at: uc_sim::SimTime::from_nanos(100),
                kind: uc_blockdev::IoKind::Write,
                offset: 0,
                len: 4096,
            },
            TraceEntry {
                at: uc_sim::SimTime::from_nanos(50),
                kind: uc_blockdev::IoKind::Read,
                offset: 0,
                len: 4096,
            },
        ];
        let mut payload = Encoder::new();
        payload.put_u64(2);
        for e in &entries {
            e.encode(&mut payload);
        }
        let record = uc_persist::encode_record(TRACE_RECORD_KIND, payload.as_bytes());
        assert!(matches!(
            decode_trace(&record).unwrap_err(),
            TraceFileError::Invalid(TraceError::TimestampRegression { index: 1, .. })
        ));
        // The streaming reader rejects the same bytes the same way.
        let dir = temp_dir("invalid-entries");
        let path = dir.join("t.trace");
        std::fs::write(&path, &record).unwrap();
        let errs: Vec<TraceFileError> = TraceReader::open(&path)
            .unwrap()
            .filter_map(|r| r.err())
            .collect();
        assert!(matches!(
            errs[..],
            [TraceFileError::Invalid(TraceError::TimestampRegression {
                index: 1,
                ..
            })]
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn encoded_trace_interop() {
        let trace = sample();
        let encoded: EncodedTrace = (&trace).into();
        assert_eq!(encoded.as_bytes(), &encode_trace(&trace)[..]);
        let back: Trace = (&encoded).try_into().unwrap();
        assert_eq!(back, trace);
        let owned: EncodedTrace = trace.clone().into();
        let back: Trace = owned.try_into().unwrap();
        assert_eq!(back, trace);
        // Garbage bytes fail typed.
        let junk = EncodedTrace::from_bytes(b"not a trace".to_vec());
        assert!(Trace::try_from(&junk).is_err());
        assert_eq!(junk.clone().into_bytes(), b"not a trace".to_vec());
    }

    #[test]
    fn missing_file_is_typed() {
        let dir = temp_dir("missing");
        let err = load_trace(&dir.join("nope.trace")).unwrap_err();
        assert!(matches!(
            err,
            TraceFileError::Decode(DecodeError::Io { .. })
        ));
        assert!(!err.to_string().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
