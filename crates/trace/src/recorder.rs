//! Transparent trace capture at the block-device seam.

use uc_blockdev::{BlockDevice, Completion, DeviceInfo, IoBatch, IoError, IoRequest, IoResult};
use uc_sim::SimTime;
use uc_workload::{Trace, TraceEntry};

/// A [`BlockDevice`] wrapper that records every request crossing the
/// seam.
///
/// The recorder is invisible to the workload: it forwards every call to
/// the wrapped device unchanged (same completions, same timelines) and
/// appends one [`TraceEntry`] per *accepted* request — rejected requests
/// never executed, so they are not part of the history. Batched
/// submissions are recorded entry-for-entry in submission order, and the
/// number of doorbell rings is tracked separately
/// ([`TraceRecorder::batches`]), so a capture also tells you how the
/// driver grouped its submissions.
///
/// Because drivers submit with non-decreasing instants (the
/// [`BlockDevice`] monotonicity contract), the recorded entries are
/// already arrival-ordered; [`TraceRecorder::into_trace`] is a plain
/// reshape, not a sort.
pub struct TraceRecorder<D> {
    inner: D,
    entries: Vec<TraceEntry>,
    batches: u64,
}

impl<D: BlockDevice> TraceRecorder<D> {
    /// Wraps `inner`, recording from the next request on.
    pub fn new(inner: D) -> Self {
        TraceRecorder {
            inner,
            entries: Vec::new(),
            batches: 0,
        }
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// Requests recorded so far.
    pub fn ios(&self) -> usize {
        self.entries.len()
    }

    /// Doorbell rings ([`BlockDevice::submit_batch`] calls) recorded so
    /// far. Requests submitted one at a time do not count as batches.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// A snapshot of the capture so far (the recorder keeps recording).
    pub fn trace(&self) -> Trace {
        Trace::from_entries(self.entries.clone())
    }

    /// Consumes the recorder, yielding the captured trace.
    pub fn into_trace(self) -> Trace {
        Trace::from_entries(self.entries)
    }

    /// Consumes the recorder, yielding the device and the captured trace.
    pub fn into_parts(self) -> (D, Trace) {
        (self.inner, Trace::from_entries(self.entries))
    }

    fn record(&mut self, req: &IoRequest) {
        // Contract hook (O(1)): arrivals enter in non-decreasing order
        // (the BlockDevice monotonicity contract), so the capture is a
        // valid trace without sorting.
        uc_invariant::enforce(|| {
            if let Some(last) = self.entries.last() {
                if req.submit_time < last.at {
                    return Err(uc_invariant::Violation::new(
                        "uc-trace/TraceRecorder",
                        "entry-monotonicity",
                        format!(
                            "request at {:?} arrived after an entry at {:?}",
                            req.submit_time, last.at
                        ),
                    ));
                }
            }
            Ok(())
        });
        self.entries.push(TraceEntry {
            at: req.submit_time,
            kind: req.kind,
            offset: req.offset,
            len: req.len,
        });
    }
}

impl<D: BlockDevice> BlockDevice for TraceRecorder<D> {
    fn info(&self) -> DeviceInfo {
        self.inner.info()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        let done = self.inner.submit(req)?;
        self.record(req);
        Ok(done)
    }

    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        // On error the device may have applied a prefix of the batch, but
        // which prefix is not observable through the error; a failed
        // batch is therefore recorded as not-issued (experiments treat
        // the first IoError as fatal anyway).
        let completions = self.inner.submit_batch(batch)?;
        for req in batch.requests() {
            self.record(req);
        }
        self.batches += 1;
        Ok(completions)
    }

    fn idle_until(&mut self, now: SimTime) {
        self.inner.idle_until(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;
    use uc_workload::{run_job, AccessPattern, JobSpec};

    struct TestDevice {
        servers: uc_sim::ParallelResource,
    }

    impl TestDevice {
        fn new() -> Self {
            TestDevice {
                servers: uc_sim::ParallelResource::new(2),
            }
        }
    }

    impl BlockDevice for TestDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("test", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            Ok(self
                .servers
                .acquire(req.submit_time, SimDuration::from_micros(8))
                .1)
        }
    }

    #[test]
    fn capture_is_invisible_and_complete() {
        let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 4).with_io_limit(50);
        // The same job on a bare device and through the recorder must
        // produce the same report.
        let mut bare = TestDevice::new();
        let bare_report = run_job(&mut bare, &spec).unwrap();
        let mut recorder = TraceRecorder::new(TestDevice::new());
        let recorded_report = run_job(&mut recorder, &spec).unwrap();
        assert_eq!(recorded_report.ios, bare_report.ios);
        assert_eq!(recorded_report.finished_at, bare_report.finished_at);
        assert!(recorder.batches() > 0, "closed loop rings doorbells");
        // Every submitted request is in the capture (the closed loop
        // keeps QD in flight past the limit, so >= the recorded count).
        assert!(recorder.ios() >= recorded_report.ios as usize);
        let trace = recorder.into_trace();
        assert_eq!(trace.entries().len(), trace.len());
        // Monotone arrivals survive the reshape untouched.
        for w in trace.entries().windows(2) {
            assert!(w[1].at >= w[0].at);
        }
    }

    #[test]
    fn rejected_requests_are_not_recorded() {
        let mut recorder = TraceRecorder::new(TestDevice::new());
        let bad = IoRequest::read(1 << 40, 4096, SimTime::ZERO);
        assert!(recorder.submit(&bad).is_err());
        let mut batch = IoBatch::new();
        batch.push(IoRequest::read(0, 4096, SimTime::ZERO));
        batch.push(IoRequest::read(1 << 40, 4096, SimTime::ZERO));
        assert!(recorder.submit_batch(&batch).is_err());
        assert_eq!(recorder.ios(), 0);
        assert_eq!(recorder.batches(), 0);
        // A good request after the failures is recorded normally.
        recorder
            .submit(&IoRequest::write(0, 4096, SimTime::ZERO))
            .unwrap();
        assert_eq!(recorder.ios(), 1);
        assert_eq!(recorder.trace().total_bytes(), 4096);
        let (dev, trace) = recorder.into_parts();
        assert_eq!(dev.info().name(), "test");
        assert_eq!(trace.len(), 1);
    }
}
