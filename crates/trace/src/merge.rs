//! Deterministic interleaving of per-tenant trace streams.
//!
//! A fleet simulation (`uc-fleet`) merges many tenants' arrival streams
//! onto one shared device. The merge must be a *pure function of the
//! inputs* — any tie-break left to iteration order or hash maps would
//! make two runs of the same fleet diverge, breaking the byte-identity
//! bar every experiment in this workspace holds. [`merge_streams`]
//! therefore orders entries by `(arrival, tenant id)` and keeps each
//! tenant's own entries in their original order, so identical timestamps
//! across tenants resolve the same way on every run, every thread count,
//! and every resume.
//!
//! [`validate_merged`] is the matching ingest check: a merged sequence
//! whose cross-tenant order regresses (hand-built, decoded from disk, or
//! produced by a buggy merge) is rejected with a typed
//! [`TraceError::TimestampRegression`] — never a panic — before any I/O
//! is issued.

use uc_workload::{TraceEntry, TraceError};

/// One entry of a merged multi-tenant stream: the I/O plus which tenant
/// issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MergedEntry {
    /// The issuing tenant's id.
    pub tenant: u32,
    /// The traced I/O.
    pub entry: TraceEntry,
}

/// Merges per-tenant entry streams into one arrival-ordered sequence.
///
/// Each input stream must itself be arrival-ordered (a
/// [`Trace`](uc_workload::Trace) is, by construction). The merged order
/// is total and deterministic:
///
/// 1. earlier arrival first;
/// 2. identical arrivals resolve by **ascending tenant id** (the stable
///    tie-break the fleet interleaver relies on);
/// 3. one tenant's same-instant entries keep their original relative
///    order.
///
/// # Errors
///
/// Returns [`TraceError::TimestampRegression`] (with the offending
/// entry's index *within its stream*) if any input stream is not
/// arrival-ordered — a malformed stream is rejected instead of silently
/// reordered.
pub fn merge_streams(streams: &[(u32, &[TraceEntry])]) -> Result<Vec<MergedEntry>, TraceError> {
    for (_, entries) in streams {
        let mut prev = uc_sim::SimTime::ZERO;
        for (index, entry) in entries.iter().enumerate() {
            if entry.at < prev {
                return Err(TraceError::TimestampRegression {
                    index,
                    prev,
                    at: entry.at,
                });
            }
            prev = entry.at;
        }
    }
    let total: usize = streams.iter().map(|(_, e)| e.len()).sum();
    let mut merged = Vec::with_capacity(total);
    // K-way merge over stream cursors. Scanning the (typically small)
    // cursor set per step keeps the tie-break explicit: the earliest
    // arrival wins, ties go to the lowest tenant id. Within one stream
    // the cursor preserves original order.
    let mut cursors = vec![0usize; streams.len()];
    for _ in 0..total {
        let mut best: Option<usize> = None;
        for (s, &(tenant, entries)) in streams.iter().enumerate() {
            let cursor = cursors[s];
            if cursor >= entries.len() {
                continue;
            }
            let candidate = (entries[cursor].at, tenant);
            let better = match best {
                None => true,
                Some(b) => {
                    let incumbent = (streams[b].1[cursors[b]].at, streams[b].0);
                    candidate < incumbent
                }
            };
            if better {
                best = Some(s);
            }
        }
        let s = best.expect("total count admits another entry");
        merged.push(MergedEntry {
            tenant: streams[s].0,
            entry: streams[s].1[cursors[s]],
        });
        cursors[s] += 1;
    }
    Ok(merged)
}

/// Validates a merged multi-tenant sequence: every entry is individually
/// well-formed (against `capacity`, when known) and the *cross-tenant*
/// merged order never regresses.
///
/// This is the merged-stream counterpart of
/// [`validate_entries`](uc_workload::validate_entries): a sequence whose
/// order was corrupted — by a buggy merge, a hand-built fixture, or a
/// malformed file — is a typed error at ingest time, never a panic or a
/// mid-replay device error.
///
/// # Errors
///
/// Returns the first [`TraceError`] found, with the offending entry's
/// index in the merged sequence.
pub fn validate_merged(entries: &[MergedEntry], capacity: Option<u64>) -> Result<(), TraceError> {
    let mut prev = uc_sim::SimTime::ZERO;
    for (index, merged) in entries.iter().enumerate() {
        merged.entry.validate(index, capacity)?;
        if merged.entry.at < prev {
            return Err(TraceError::TimestampRegression {
                index,
                prev,
                at: merged.entry.at,
            });
        }
        prev = merged.entry.at;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_blockdev::IoKind;
    use uc_sim::SimTime;

    fn entry(at: u64, offset: u64) -> TraceEntry {
        TraceEntry {
            at: SimTime::from_nanos(at),
            kind: IoKind::Write,
            offset,
            len: 4096,
        }
    }

    #[test]
    fn merge_orders_by_arrival_then_tenant() {
        let a = vec![entry(10, 0), entry(30, 1)];
        let b = vec![entry(10, 2), entry(20, 3)];
        // Tenant 7's stream is listed first but tenant 2 wins the t=10 tie.
        let merged = merge_streams(&[(7, &a), (2, &b)]).unwrap();
        let order: Vec<(u32, u64)> = merged
            .iter()
            .map(|m| (m.tenant, m.entry.at.as_nanos()))
            .collect();
        assert_eq!(order, vec![(2, 10), (7, 10), (2, 20), (7, 30)]);
        assert!(validate_merged(&merged, None).is_ok());
    }

    #[test]
    fn identical_timestamps_merge_identically_regardless_of_listing_order() {
        let a: Vec<TraceEntry> = (0..8).map(|i| entry(100, i * 4096)).collect();
        let b: Vec<TraceEntry> = (0..8).map(|i| entry(100, (i + 8) * 4096)).collect();
        let ab = merge_streams(&[(1, &a), (4, &b)]).unwrap();
        let ba = merge_streams(&[(4, &b), (1, &a)]).unwrap();
        assert_eq!(ab, ba, "listing order must not leak into the merge");
        // All of tenant 1 precedes all of tenant 4 at the shared instant,
        // each in original order.
        assert!(ab[..8].iter().all(|m| m.tenant == 1));
        assert!(ab[8..].iter().all(|m| m.tenant == 4));
        assert_eq!(ab[3].entry.offset, 3 * 4096);
    }

    #[test]
    fn unsorted_input_stream_is_a_typed_error() {
        let bad = vec![entry(50, 0), entry(10, 1)];
        let good = vec![entry(0, 2)];
        let err = merge_streams(&[(0, &good), (1, &bad)]).unwrap_err();
        assert_eq!(
            err,
            TraceError::TimestampRegression {
                index: 1,
                prev: SimTime::from_nanos(50),
                at: SimTime::from_nanos(10),
            }
        );
    }

    #[test]
    fn merged_validation_rejects_cross_tenant_regression_without_panicking() {
        // A hand-built merged sequence whose cross-tenant order regresses:
        // tenant 0 at t=100 followed by tenant 1 at t=40.
        let merged = vec![
            MergedEntry {
                tenant: 0,
                entry: entry(100, 0),
            },
            MergedEntry {
                tenant: 1,
                entry: entry(40, 4096),
            },
        ];
        let err = validate_merged(&merged, None).unwrap_err();
        assert!(matches!(
            err,
            TraceError::TimestampRegression { index: 1, .. }
        ));
        assert!(!err.to_string().is_empty());
        // Entry-level checks run too, against the shared typed error.
        let oob = vec![MergedEntry {
            tenant: 3,
            entry: entry(0, 1 << 20),
        }];
        assert!(matches!(
            validate_merged(&oob, Some(1 << 20)),
            Err(TraceError::OutOfRange { index: 0, .. })
        ));
    }

    #[test]
    fn merge_of_empty_and_single_streams_is_trivial() {
        assert_eq!(merge_streams(&[]).unwrap(), Vec::new());
        let only = vec![entry(1, 0), entry(2, 4096)];
        let merged = merge_streams(&[(9, &only), (3, &[])]).unwrap();
        assert_eq!(merged.len(), 2);
        assert!(merged.iter().all(|m| m.tenant == 9));
    }
}
