//! Trace capture & replay for the unwritten-contract stack.
//!
//! The experiments reproduce the paper with synthetic closed/open-loop
//! workloads, but the contract's sharpest edges — burst smoothing
//! (Implication 4), budget exhaustion under real tenant arrival patterns —
//! only show under *captured* traffic. This crate closes that loop:
//!
//! * **capture** ([`TraceRecorder`]) — a transparent
//!   [`BlockDevice`](uc_blockdev::BlockDevice) wrapper that records every
//!   request (and batch) crossing the seam, so any existing experiment can
//!   emit a [`Trace`] of exactly what it issued;
//! * **format** ([`save_trace`] / [`load_trace`] and the streaming
//!   [`TraceWriter`] / [`TraceReader`]) — a versioned binary trace format
//!   on the `uc-persist` record envelope (kind tag
//!   [`TRACE_RECORD_KIND`]), streamed in both directions so GiB-scale
//!   traces never sit in memory, with typed decode errors and
//!   `From`/`TryFrom` interop with the text [`Trace`] format;
//! * **generators** ([`TraceSpec`]) — synthetic arrival shapes (steady,
//!   diurnal, bursty ON/OFF) parameterized like `uc-workload` job specs;
//! * **interleaving** ([`merge_streams`] / [`validate_merged`]) — the
//!   deterministic multi-tenant merge the fleet simulation (`uc-fleet`)
//!   uses to put many tenants on one shared device: identical timestamps
//!   tie-break by tenant id, and a merged sequence with a non-monotone
//!   cross-tenant order is a typed error, never a panic.
//!
//! Replay itself lives in `uc-workload`
//! ([`replay_with`](uc_workload::replay_with) /
//! [`TraceReplayJob`](uc_workload::TraceReplayJob)): batched through the
//! queue-pair API, timestamp-honouring with a `speed` factor, and
//! resumable under the PR-3 checkpoint contract. Because the replayer
//! only sees the `BlockDevice` seam, it drives remote devices too: point
//! it at a `uc-serve` session (`trace --remote`) and the same trace
//! replays over a real connection with an identical device-side
//! schedule.
//!
//! # Example: capture a run, replay it elsewhere
//!
//! ```
//! use uc_ssd::{Ssd, SsdConfig};
//! use uc_trace::TraceRecorder;
//! use uc_workload::{replay_with, run_job, AccessPattern, JobSpec, ReplayConfig};
//!
//! // Capture what a closed-loop job actually issues. The capture holds
//! // every *submitted* request — including the in-flight tail the
//! // driver had already queued when the 100-I/O limit fired.
//! let ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
//! let mut recorder = TraceRecorder::new(ssd);
//! let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 4).with_io_limit(100);
//! let live = run_job(&mut recorder, &spec)?;
//! let trace = recorder.into_trace();
//! assert!(trace.len() as u64 >= live.ios);
//!
//! // Replaying the capture on an identical fresh device re-executes the
//! // recorded submission timeline exactly.
//! let mut fresh = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
//! let replayed = replay_with(&mut fresh, &trace, &ReplayConfig::open_loop())
//!     .expect("captured traces replay cleanly");
//! assert_eq!(replayed.ios, trace.len() as u64);
//! assert!(replayed.finished_at >= live.finished_at);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod format;
mod generate;
mod merge;
mod recorder;

pub use format::{
    decode_trace, encode_trace, load_trace, save_trace, EncodedTrace, TraceFileError, TraceReader,
    TraceWriter, TRACE_RECORD_KIND,
};
pub use generate::{ArrivalShape, TraceSpec};
pub use merge::{merge_streams, validate_merged, MergedEntry};
pub use recorder::TraceRecorder;

// The trace type and its replay drivers, re-exported so consumers of the
// capture/replay subsystem need only this crate.
pub use uc_workload::{
    replay_with, ReplayCheckpoint, ReplayConfig, ReplayError, ReplayMode, ReplayProgress, Trace,
    TraceEntry, TraceError, TraceReplayJob,
};
