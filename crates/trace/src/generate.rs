//! Synthetic trace generators: steady, diurnal, and bursty ON/OFF
//! arrival shapes.
//!
//! Each shape is a deterministic function of a [`TraceSpec`] (same seed →
//! same trace, byte for byte), parameterized like a `uc-workload`
//! [`JobSpec`](uc_workload::JobSpec): I/O size, write ratio, offset span,
//! seed. Where a job spec describes *how hard to push*, a trace spec
//! describes *when requests arrive* — which is exactly the axis the
//! paper's Implication 4 (burst smoothing) varies.

use uc_blockdev::IoKind;
use uc_sim::{SimDuration, SimRng, SimTime};
use uc_workload::{Trace, TraceEntry};

/// When requests arrive over the trace's duration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// A constant arrival rate.
    Steady {
        /// Arrivals per second.
        iops: f64,
    },
    /// A smooth day/night swing: the rate follows a raised cosine from
    /// `base_iops` (trough) to `peak_iops` (crest) over each `period`.
    Diurnal {
        /// Trough arrival rate, per second.
        base_iops: f64,
        /// Crest arrival rate, per second.
        peak_iops: f64,
        /// Length of one full swing.
        period: SimDuration,
    },
    /// Bursty ON/OFF traffic (the paper's Implication 4 shape): requests
    /// arrive at `burst_iops` during each `on` window, then nothing for
    /// `off`.
    OnOff {
        /// Length of each active window.
        on: SimDuration,
        /// Length of each silent window.
        off: SimDuration,
        /// Arrival rate inside active windows, per second.
        burst_iops: f64,
    },
}

/// A declarative description of a synthetic trace.
///
/// # Example
///
/// ```
/// use uc_sim::SimDuration;
/// use uc_trace::TraceSpec;
///
/// let trace = TraceSpec::bursty(
///     SimDuration::from_millis(2),
///     SimDuration::from_millis(8),
///     20_000.0,
/// )
/// .with_duration(SimDuration::from_millis(100))
/// .with_span(16 << 20)
/// .generate();
/// // 10 bursts x 2 ms x 20 kIOPS = ~400 I/Os, all inside ON windows.
/// assert!((350..=450).contains(&trace.len()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSpec {
    /// The arrival shape.
    pub shape: ArrivalShape,
    /// Total trace duration.
    pub duration: SimDuration,
    /// Bytes per I/O.
    pub io_size: u32,
    /// Fraction of requests that are writes, in `[0, 1]`.
    pub write_ratio: f64,
    /// Offsets are drawn aligned and uniform from `[0, span)` bytes.
    pub span: u64,
    /// Seed for offset/direction randomness.
    pub seed: u64,
}

impl TraceSpec {
    fn new(shape: ArrivalShape) -> Self {
        TraceSpec {
            shape,
            duration: SimDuration::from_secs(1),
            io_size: 4096,
            write_ratio: 1.0,
            span: 64 << 20,
            seed: 0x7ACE,
        }
    }

    /// A steady arrival stream at `iops` requests per second.
    ///
    /// # Panics
    ///
    /// Panics if `iops` is not positive and finite.
    pub fn steady(iops: f64) -> Self {
        assert!(iops.is_finite() && iops > 0.0, "iops must be positive");
        TraceSpec::new(ArrivalShape::Steady { iops })
    }

    /// A diurnal swing between `base_iops` and `peak_iops` over `period`.
    ///
    /// # Panics
    ///
    /// Panics if the rates are not positive and finite, `peak_iops <
    /// base_iops`, or `period` is zero.
    pub fn diurnal(base_iops: f64, peak_iops: f64, period: SimDuration) -> Self {
        assert!(
            base_iops.is_finite() && base_iops > 0.0 && peak_iops.is_finite(),
            "rates must be positive"
        );
        assert!(peak_iops >= base_iops, "peak must not fall below base");
        assert!(!period.is_zero(), "period must be non-zero");
        TraceSpec::new(ArrivalShape::Diurnal {
            base_iops,
            peak_iops,
            period,
        })
    }

    /// Bursty ON/OFF traffic: `burst_iops` during each `on` window,
    /// silence for `off`.
    ///
    /// # Panics
    ///
    /// Panics if `burst_iops` is not positive and finite or `on` is zero.
    pub fn bursty(on: SimDuration, off: SimDuration, burst_iops: f64) -> Self {
        assert!(
            burst_iops.is_finite() && burst_iops > 0.0,
            "burst iops must be positive"
        );
        assert!(!on.is_zero(), "on window must be non-zero");
        TraceSpec::new(ArrivalShape::OnOff {
            on,
            off,
            burst_iops,
        })
    }

    /// Replaces the total duration.
    ///
    /// # Panics
    ///
    /// Panics if `duration` is zero.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        assert!(!duration.is_zero(), "duration must be non-zero");
        self.duration = duration;
        self
    }

    /// Replaces the per-I/O size.
    ///
    /// # Panics
    ///
    /// Panics if `io_size` is zero.
    pub fn with_io_size(mut self, io_size: u32) -> Self {
        assert!(io_size > 0, "i/o size must be positive");
        self.io_size = io_size;
        self
    }

    /// Replaces the write ratio.
    ///
    /// # Panics
    ///
    /// Panics if `write_ratio` is outside `[0, 1]`.
    pub fn with_write_ratio(mut self, write_ratio: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&write_ratio),
            "write ratio must be in [0, 1]"
        );
        self.write_ratio = write_ratio;
        self
    }

    /// Replaces the offset span.
    ///
    /// # Panics
    ///
    /// Panics if `span` cannot hold one I/O.
    pub fn with_span(mut self, span: u64) -> Self {
        assert!(span >= self.io_size as u64, "span cannot hold one i/o");
        self.span = span;
        self
    }

    /// Replaces the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The mean arrival rate over one shape cycle, per second (useful
    /// for sizing a replay against a device's throughput budget).
    pub fn mean_iops(&self) -> f64 {
        match self.shape {
            ArrivalShape::Steady { iops } => iops,
            ArrivalShape::Diurnal {
                base_iops,
                peak_iops,
                ..
            } => (base_iops + peak_iops) / 2.0,
            ArrivalShape::OnOff {
                on,
                off,
                burst_iops,
            } => {
                let cycle = on.as_secs_f64() + off.as_secs_f64();
                burst_iops * on.as_secs_f64() / cycle
            }
        }
    }

    /// Generates the trace: arrival instants from the shape, offsets and
    /// directions from the seed. Deterministic — the same spec always
    /// produces the same trace.
    pub fn generate(&self) -> Trace {
        assert!(self.span >= self.io_size as u64, "span cannot hold one i/o");
        let mut rng = SimRng::new(self.seed);
        let slots = self.span / self.io_size as u64;
        let horizon = self.duration.as_nanos() as f64;
        let mut entries = Vec::new();
        let mut t = 0.0f64; // nanoseconds
        while t < horizon {
            let gap = match self.shape {
                ArrivalShape::Steady { iops } => 1e9 / iops,
                ArrivalShape::Diurnal {
                    base_iops,
                    peak_iops,
                    period,
                } => {
                    // Raised cosine: trough at t = 0, crest at period/2.
                    let phase = (t / period.as_nanos() as f64) * std::f64::consts::TAU;
                    let rate = base_iops + (peak_iops - base_iops) * 0.5 * (1.0 - phase.cos());
                    1e9 / rate
                }
                ArrivalShape::OnOff {
                    on,
                    off,
                    burst_iops,
                } => {
                    let cycle = (on.as_nanos() + off.as_nanos()) as f64;
                    let in_cycle = t % cycle;
                    if in_cycle >= on.as_nanos() as f64 {
                        // Silent window: jump to the next cycle, emitting
                        // nothing.
                        t = (t / cycle).floor() * cycle + cycle;
                        continue;
                    }
                    1e9 / burst_iops
                }
            };
            entries.push(TraceEntry {
                at: SimTime::from_nanos(t.round() as u64),
                kind: if rng.chance(self.write_ratio) {
                    IoKind::Write
                } else {
                    IoKind::Read
                },
                offset: rng.range_u64(0, slots) * self.io_size as u64,
                len: self.io_size,
            });
            t += gap;
        }
        Trace::from_entries(entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_shape_is_evenly_spaced() {
        let spec = TraceSpec::steady(10_000.0).with_duration(SimDuration::from_millis(10));
        let trace = spec.generate();
        assert_eq!(trace.len(), 100, "10 ms at 10 kIOPS");
        let profile = trace.demand_profile(SimDuration::from_millis(1));
        assert!(
            profile.iter().all(|&b| b == profile[0]),
            "every window carries the same demand: {profile:?}"
        );
        assert_eq!(spec.mean_iops(), 10_000.0);
    }

    #[test]
    fn bursty_shape_alternates_demand_and_silence() {
        let spec = TraceSpec::bursty(
            SimDuration::from_millis(1),
            SimDuration::from_millis(3),
            50_000.0,
        )
        .with_duration(SimDuration::from_millis(16));
        let trace = spec.generate();
        let profile = trace.demand_profile(SimDuration::from_millis(1));
        // ON windows (every 4th, starting at 0) carry all the demand.
        for (i, &bytes) in profile.iter().enumerate() {
            if i % 4 == 0 {
                assert!(bytes > 0, "window {i} is an ON window");
            } else {
                assert_eq!(bytes, 0, "window {i} is an OFF window");
            }
        }
        // Mean rate: 50 kIOPS x 1/4 duty cycle.
        assert!((spec.mean_iops() - 12_500.0).abs() < 1e-6);
    }

    #[test]
    fn diurnal_shape_swings_between_base_and_peak() {
        let period = SimDuration::from_millis(20);
        let spec = TraceSpec::diurnal(1_000.0, 50_000.0, period)
            .with_duration(period)
            .with_io_size(4096);
        let trace = spec.generate();
        let profile = trace.demand_profile(SimDuration::from_millis(1));
        // The crest (mid-period) must far out-demand the trough (edges).
        let trough = profile[0].max(1);
        let crest = profile[10];
        assert!(
            crest > 10 * trough,
            "crest {crest} vs trough {trough}: {profile:?}"
        );
        assert_eq!(spec.mean_iops(), 25_500.0);
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = TraceSpec::bursty(
            SimDuration::from_millis(1),
            SimDuration::from_millis(1),
            30_000.0,
        )
        .with_duration(SimDuration::from_millis(10))
        .with_write_ratio(0.5);
        assert_eq!(spec.generate(), spec.generate());
        let reseeded = spec.with_seed(99).generate();
        assert_ne!(spec.generate(), reseeded, "a new seed moves the offsets");
        // Same arrivals either way: the seed only drives offsets/kinds.
        let a: Vec<_> = spec.generate().entries().iter().map(|e| e.at).collect();
        let b: Vec<_> = reseeded.entries().iter().map(|e| e.at).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn write_ratio_drives_direction_mix() {
        let all_writes = TraceSpec::steady(5_000.0)
            .with_duration(SimDuration::from_millis(20))
            .generate();
        assert!(all_writes.entries().iter().all(|e| e.kind.is_write()));
        let all_reads = TraceSpec::steady(5_000.0)
            .with_duration(SimDuration::from_millis(20))
            .with_write_ratio(0.0)
            .generate();
        assert!(all_reads.entries().iter().all(|e| e.kind.is_read()));
        let mixed = TraceSpec::steady(5_000.0)
            .with_duration(SimDuration::from_millis(20))
            .with_write_ratio(0.5)
            .generate();
        let writes = mixed.entries().iter().filter(|e| e.kind.is_write()).count();
        assert!((20..=80).contains(&writes), "{writes}/100 writes");
    }

    #[test]
    fn offsets_stay_aligned_and_in_span() {
        let spec = TraceSpec::steady(20_000.0)
            .with_duration(SimDuration::from_millis(5))
            .with_io_size(8192)
            .with_span(1 << 20);
        let trace = spec.generate();
        for e in trace.entries() {
            assert_eq!(e.len, 8192);
            assert!(e.offset.is_multiple_of(8192));
            assert!(e.offset + e.len as u64 <= 1 << 20);
        }
        // Generated traces validate against any device at least as large
        // as the span.
        assert!(trace.validate(1 << 20).is_ok());
    }

    #[test]
    #[should_panic(expected = "span cannot hold")]
    fn degenerate_span_rejected() {
        let _ = TraceSpec::steady(1000.0).with_io_size(8192).with_span(4096);
    }
}
