//! Versioned binary serialization for checkpoint state.
//!
//! Every layer of the workspace can freeze its hidden state into a plain
//! data snapshot (`RngSnapshot`, `FtlCheckpoint`, `SsdCheckpoint`, …).
//! This crate is the bottom of the *durability* story: it turns those
//! snapshots into bytes that survive a process crash and come back as
//! typed values — or as a **typed error**, never a panic, when the bytes
//! are truncated, corrupted or from a future format version.
//!
//! Three layers, smallest first:
//!
//! * [`Encoder`] / [`Decoder`] — fixed-width little-endian primitives
//!   (integers, floats as IEEE-754 bits, length-prefixed strings and
//!   sequences). Decoding validates every read against the remaining
//!   buffer and returns [`DecodeError::Truncated`] instead of slicing out
//!   of bounds.
//! * [`Persist`] — the codec trait each snapshot type implements:
//!   `encode` appends the value's canonical byte form, `decode` parses it
//!   back. The contract is lossless round-tripping:
//!   `decode(encode(x)) == x`.
//! * **records** ([`encode_record`] / [`decode_record`] and the file
//!   helpers [`write_record_file`] / [`read_record_file`]) — the
//!   self-describing on-disk envelope: an 8-byte magic, a format version,
//!   a record-kind tag naming the payload type, the payload length, the
//!   payload and a CRC-32 of everything after the magic. Files are
//!   written atomically (temp file + rename) so a crash mid-write leaves
//!   either the old checkpoint or none — never a torn one. The envelope
//!   is self-describing, so [`read_record_from`] can also walk records
//!   incrementally off any byte stream (a socket serving `uc.wire.v1`
//!   frames, a pipe of trace records) with every length field bounded
//!   before it is trusted.
//!
//! # Example
//!
//! ```
//! use uc_persist::{decode_record, encode_record, Decoder, Encoder, Persist};
//!
//! let mut w = Encoder::new();
//! (42u64, "hello".to_string()).encode(&mut w);
//! let record = encode_record("example.v1", w.as_bytes());
//!
//! let (kind, payload) = decode_record(&record)?;
//! assert_eq!(kind, "example.v1");
//! let mut r = Decoder::new(payload);
//! let back = <(u64, String)>::decode(&mut r)?;
//! r.finish()?;
//! assert_eq!(back, (42, "hello".to_string()));
//! # Ok::<(), uc_persist::DecodeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod record;

pub use codec::{DecodeError, Decoder, Encoder, Persist};
pub use record::{
    crc32, decode_record, encode_record, peek_record_len, read_record_file, read_record_from,
    write_record_file, Crc32, FORMAT_VERSION, MAGIC, MAX_STREAM_KIND_LEN, MAX_STREAM_PAYLOAD_LEN,
};
