//! The self-describing on-disk record envelope.
//!
//! Layout, in order:
//!
//! | bytes | field |
//! |---|---|
//! | 8 | [`MAGIC`] |
//! | 2 | [`FORMAT_VERSION`], little-endian |
//! | 8 + n | record kind: `u64` length + UTF-8 tag |
//! | 8 | payload length, little-endian |
//! | … | payload |
//! | 4 | CRC-32 (IEEE) of everything after the magic |
//!
//! The kind tag names the payload type (`"uc.ssd-checkpoint.v1"`,
//! `"uc.fig3-checkpoint.v1"`, …) so a reader can dispatch to the right
//! decoder — or fail with [`DecodeError::UnknownKind`] instead of
//! misinterpreting bytes. Bumping a payload's layout means bumping its
//! kind tag; bumping the envelope itself means bumping
//! [`FORMAT_VERSION`], which old readers reject as
//! [`DecodeError::UnsupportedVersion`].

use crate::codec::{DecodeError, Decoder, Encoder};
use std::io::{self, Read, Write};
use std::path::Path;
use std::sync::OnceLock;

/// The 8-byte signature every checkpoint record starts with.
pub const MAGIC: [u8; 8] = *b"UCSSDCP\0";

/// The envelope format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// An incremental CRC-32 (IEEE 802.3 polynomial, reflected) hasher.
///
/// Streaming writers (e.g. a GiB-scale trace encoder) feed bytes through
/// [`Crc32::update`] as they go to disk instead of buffering the whole
/// payload just to checksum it; [`Crc32::finalize`] yields the same value
/// [`crc32`] computes over the concatenation of every update.
///
/// # Example
///
/// ```
/// use uc_persist::{crc32, Crc32};
///
/// let mut hasher = Crc32::new();
/// hasher.update(b"1234");
/// hasher.update(b"56789");
/// assert_eq!(hasher.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A hasher over the empty byte sequence.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Feeds `bytes` through the hasher.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = crc_table();
        for &b in bytes {
            self.state = table[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The CRC-32 of every byte fed so far (the hasher stays usable).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// This is the per-record checksum; a single flipped payload bit decodes
/// as [`DecodeError::ChecksumMismatch`] instead of corrupt state.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finalize()
}

/// Wraps `payload` in the record envelope under the given kind tag.
pub fn encode_record(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut body = Encoder::new();
    body.put_u16(FORMAT_VERSION);
    body.put_str(kind);
    body.put_bytes(payload);
    let checksum = crc32(body.as_bytes());

    let mut record = Vec::with_capacity(MAGIC.len() + body.as_bytes().len() + 4);
    record.extend_from_slice(&MAGIC);
    record.extend_from_slice(body.as_bytes());
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Unwraps a record envelope, returning `(kind, payload)`.
///
/// # Errors
///
/// Returns the [`DecodeError`] variant matching exactly what is wrong:
/// [`BadMagic`](DecodeError::BadMagic) for foreign bytes,
/// [`UnsupportedVersion`](DecodeError::UnsupportedVersion) for records
/// from a future format, [`Truncated`](DecodeError::Truncated) for short
/// reads, [`ChecksumMismatch`](DecodeError::ChecksumMismatch) for flipped
/// bits and [`TrailingBytes`](DecodeError::TrailingBytes) for appended
/// junk.
pub fn decode_record(bytes: &[u8]) -> Result<(String, &[u8]), DecodeError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let body = &bytes[MAGIC.len()..];
    let mut r = Decoder::new(body);
    let version = r.get_u16()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = r.get_string()?;
    let payload = r.get_bytes()?;
    let checked_len = body.len() - r.remaining();
    let stored = r.get_u32()?;
    let computed = crc32(&body[..checked_len]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    r.finish()?;
    Ok((kind, payload))
}

/// Largest kind tag [`read_record_from`] accepts (the longest real tags
/// are tens of bytes; anything bigger is a corrupt length field, and the
/// cap keeps a flipped bit from turning into a giant allocation).
pub const MAX_STREAM_KIND_LEN: u64 = 1 << 10;

/// Largest payload [`read_record_from`] accepts, for the same reason:
/// a stream peer (or a corrupt record) must not be able to make the
/// reader allocate an arbitrary amount of memory off an 8-byte length.
pub const MAX_STREAM_PAYLOAD_LEN: u64 = 64 << 20;

/// Reads exactly `buf.len()` bytes unless the stream ends first;
/// returns how many bytes were actually read.
fn fill<R: Read + ?Sized>(reader: &mut R, buf: &mut [u8]) -> Result<usize, DecodeError> {
    let mut read = 0;
    while read < buf.len() {
        match reader.read(&mut buf[read..]) {
            Ok(0) => break,
            Ok(n) => read += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => {
                return Err(DecodeError::Io {
                    path: "<stream>".to_string(),
                    message: e.to_string(),
                })
            }
        }
    }
    Ok(read)
}

/// Reads `buf.len()` bytes or fails typed: end-of-stream mid-field is
/// [`DecodeError::Truncated`].
fn fill_exact<R: Read + ?Sized>(reader: &mut R, buf: &mut [u8]) -> Result<(), DecodeError> {
    let got = fill(reader, buf)?;
    if got < buf.len() {
        return Err(DecodeError::Truncated {
            needed: (buf.len() - got) as u64,
            available: 0,
        });
    }
    Ok(())
}

/// Reads the next record envelope off a byte stream, returning
/// `Ok(None)` at a clean end of stream (end exactly at a record
/// boundary) and `(kind, payload)` otherwise.
///
/// This is the incremental twin of [`decode_record`] for sources without
/// random access — a socket serving `uc.wire.v1` frames, a pipe of
/// streamed trace records. The envelope is self-describing, so no outer
/// length prefix is needed; the reader walks the fields, bounds every
/// length (see [`MAX_STREAM_KIND_LEN`] / [`MAX_STREAM_PAYLOAD_LEN`]), and
/// then validates the assembled record through [`decode_record`] —
/// checksum included.
///
/// # Errors
///
/// A stream ending *inside* a record is [`DecodeError::Truncated`];
/// foreign bytes are [`DecodeError::BadMagic`]; a record from a future
/// envelope is [`DecodeError::UnsupportedVersion`] (detected before its
/// untrusted lengths are used); an implausible length field is
/// [`DecodeError::InvalidValue`]; flipped bits are
/// [`DecodeError::ChecksumMismatch`]; transport failures surface as
/// [`DecodeError::Io`]. Corruption never panics.
pub fn read_record_from<R: Read + ?Sized>(
    reader: &mut R,
) -> Result<Option<(String, Vec<u8>)>, DecodeError> {
    let mut magic = [0u8; 8];
    let got = fill(reader, &mut magic)?;
    if got == 0 {
        return Ok(None);
    }
    if got < magic.len() {
        return Err(DecodeError::Truncated {
            needed: (magic.len() - got) as u64,
            available: 0,
        });
    }
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }

    let mut version = [0u8; 2];
    fill_exact(reader, &mut version)?;
    let found = u16::from_le_bytes(version);
    if found != FORMAT_VERSION {
        // A future envelope may lay its fields out differently; bail
        // before trusting any length read under the wrong layout.
        return Err(DecodeError::UnsupportedVersion {
            found,
            supported: FORMAT_VERSION,
        });
    }

    let mut record = Vec::with_capacity(64);
    record.extend_from_slice(&magic);
    record.extend_from_slice(&version);

    let mut read_block = |record: &mut Vec<u8>, cap: u64, what| -> Result<(), DecodeError> {
        let mut len_bytes = [0u8; 8];
        fill_exact(reader, &mut len_bytes)?;
        record.extend_from_slice(&len_bytes);
        let len = u64::from_le_bytes(len_bytes);
        if len > cap {
            return Err(DecodeError::InvalidValue { what });
        }
        let start = record.len();
        record.resize(start + len as usize, 0);
        fill_exact(reader, &mut record[start..])
    };
    read_block(
        &mut record,
        MAX_STREAM_KIND_LEN,
        "stream record kind length",
    )?;
    read_block(
        &mut record,
        MAX_STREAM_PAYLOAD_LEN,
        "stream record payload length",
    )?;

    let mut checksum = [0u8; 4];
    fill_exact(reader, &mut checksum)?;
    record.extend_from_slice(&checksum);

    let (kind, payload) = decode_record(&record)?;
    Ok(Some((kind, payload.to_vec())))
}

/// Reports whether `buf` starts with one complete record, and how long
/// it is — the incremental framing primitive for non-blocking readers.
///
/// A readiness-driven server accumulates partial reads in a buffer and
/// must know, without consuming anything, whether a whole record has
/// arrived yet. `Ok(Some(len))` means `buf[..len]` is exactly one record
/// (hand it to [`decode_record`]); `Ok(None)` means the prefix is
/// consistent with a record still in flight — read more bytes and ask
/// again.
///
/// # Errors
///
/// Corruption that can be diagnosed from the prefix alone is typed
/// immediately: [`DecodeError::BadMagic`] the moment a byte disagrees
/// with the magic, [`DecodeError::UnsupportedVersion`] on a foreign
/// envelope version, and [`DecodeError::InvalidValue`] for a length
/// field past the stream caps ([`MAX_STREAM_KIND_LEN`] /
/// [`MAX_STREAM_PAYLOAD_LEN`]) — a flipped length bit must not make the
/// caller buffer gigabytes waiting for a record that never completes.
pub fn peek_record_len(buf: &[u8]) -> Result<Option<usize>, DecodeError> {
    let prefix = buf.len().min(MAGIC.len());
    if buf[..prefix] != MAGIC[..prefix] {
        return Err(DecodeError::BadMagic);
    }
    if buf.len() < MAGIC.len() + 2 {
        return Ok(None);
    }
    let found = u16::from_le_bytes([buf[8], buf[9]]);
    if found != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            found,
            supported: FORMAT_VERSION,
        });
    }
    if buf.len() < 18 {
        return Ok(None);
    }
    let kind_len = u64::from_le_bytes(buf[10..18].try_into().expect("8 bytes"));
    if kind_len > MAX_STREAM_KIND_LEN {
        return Err(DecodeError::InvalidValue {
            what: "stream record kind length",
        });
    }
    let kind_len = kind_len as usize;
    if buf.len() < 18 + kind_len + 8 {
        return Ok(None);
    }
    let payload_len = u64::from_le_bytes(
        buf[18 + kind_len..26 + kind_len]
            .try_into()
            .expect("8 bytes"),
    );
    if payload_len > MAX_STREAM_PAYLOAD_LEN {
        return Err(DecodeError::InvalidValue {
            what: "stream record payload length",
        });
    }
    // magic 8 + version 2 + kind len 8 + kind + payload len 8 + payload
    // + CRC 4.
    let total = 30 + kind_len + payload_len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    Ok(Some(total))
}

/// Writes a record file atomically: the bytes go to `<path>.tmp` first
/// and are renamed into place, so a crash mid-write never leaves a torn
/// record at `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_record_file(path: &Path, kind: &str, payload: &[u8]) -> io::Result<()> {
    let record = encode_record(kind, payload);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&record)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads and unwraps a record file, returning `(kind, payload)`.
///
/// # Errors
///
/// Filesystem errors surface as [`DecodeError::Io`]; malformed bytes as
/// the matching [`DecodeError`] variant (see [`decode_record`]).
pub fn read_record_file(path: &Path) -> Result<(String, Vec<u8>), DecodeError> {
    let bytes = std::fs::read(path).map_err(|e| DecodeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let (kind, payload) = decode_record(&bytes)?;
    Ok((kind, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_crc_matches_one_shot_at_any_split() {
        let bytes: Vec<u8> = (0u16..300).map(|i| (i * 7) as u8).collect();
        let expected = crc32(&bytes);
        for split in [0, 1, 9, 150, 299, 300] {
            let mut hasher = Crc32::new();
            hasher.update(&bytes[..split]);
            hasher.update(&bytes[split..]);
            assert_eq!(hasher.finalize(), expected, "split at {split}");
        }
        // `finalize` does not consume: more updates keep accumulating.
        let mut hasher = Crc32::default();
        hasher.update(b"1234");
        let _ = hasher.finalize();
        hasher.update(b"56789");
        assert_eq!(hasher.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn peek_sees_the_whole_record_exactly_at_its_boundary() {
        let record = encode_record("peek.v1", b"incremental");
        // Every strict prefix: not yet a whole record.
        for cut in 0..record.len() {
            assert_eq!(
                peek_record_len(&record[..cut]),
                Ok(None),
                "prefix of {cut} bytes"
            );
        }
        // The exact boundary — and any trailing bytes — report the length.
        assert_eq!(peek_record_len(&record), Ok(Some(record.len())));
        let mut padded = record.clone();
        padded.extend_from_slice(b"next frame starts here");
        assert_eq!(peek_record_len(&padded), Ok(Some(record.len())));
    }

    #[test]
    fn peek_rejects_corruption_as_early_as_it_is_visible() {
        let record = encode_record("peek.v1", b"x");
        // A wrong magic byte is rejected even before the prefix is whole.
        let mut bad = record.clone();
        bad[3] ^= 0xFF;
        assert_eq!(peek_record_len(&bad[..4]), Err(DecodeError::BadMagic));
        // A future version is rejected as soon as both bytes arrive.
        let mut bad = record.clone();
        bad[9] = 0x7F;
        assert_eq!(
            peek_record_len(&bad[..10]),
            Err(DecodeError::UnsupportedVersion {
                found: u16::from_le_bytes([bad[8], 0x7F]),
                supported: FORMAT_VERSION
            })
        );
        // Hostile length prefixes trip the caps before any allocation.
        let mut bad = record.clone();
        bad[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            peek_record_len(&bad),
            Err(DecodeError::InvalidValue {
                what: "stream record kind length"
            })
        );
        let mut bad = record;
        let kind_len = u64::from_le_bytes(bad[10..18].try_into().unwrap()) as usize;
        bad[18 + kind_len..26 + kind_len].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            peek_record_len(&bad),
            Err(DecodeError::InvalidValue {
                what: "stream record payload length"
            })
        );
    }

    #[test]
    fn record_round_trip() {
        let record = encode_record("test.v1", b"hello payload");
        let (kind, payload) = decode_record(&record).unwrap();
        assert_eq!(kind, "test.v1");
        assert_eq!(payload, b"hello payload");
    }

    #[test]
    fn empty_payload_round_trips() {
        let record = encode_record("empty.v1", b"");
        let (kind, payload) = decode_record(&record).unwrap();
        assert_eq!(kind, "empty.v1");
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut record = encode_record("t", b"x");
        record[0] ^= 0xFF;
        assert_eq!(decode_record(&record), Err(DecodeError::BadMagic));
        // Too short to even hold the magic.
        assert_eq!(decode_record(b"UC"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_is_typed() {
        let mut record = encode_record("t", b"x");
        // The version is the first body field after the 8-byte magic.
        record[8] = 0xEE;
        record[9] = 0x7F;
        assert_eq!(
            decode_record(&record),
            Err(DecodeError::UnsupportedVersion {
                found: 0x7FEE,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch() {
        let mut record = encode_record("t", b"payload-bytes");
        let payload_at = record.len() - 4 - 4; // inside the payload
        record[payload_at] ^= 0x01;
        assert!(matches!(
            decode_record(&record),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_record_is_typed() {
        let record = encode_record("t", b"payload-bytes");
        for cut in [record.len() - 1, record.len() - 5, 12] {
            assert!(
                matches!(
                    decode_record(&record[..cut]),
                    Err(DecodeError::Truncated { .. }) | Err(DecodeError::ChecksumMismatch { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_junk_is_typed() {
        let mut record = encode_record("t", b"x");
        record.extend_from_slice(b"junk");
        assert_eq!(
            decode_record(&record),
            Err(DecodeError::TrailingBytes { count: 4 })
        );
    }

    #[test]
    fn stream_reader_round_trips_back_to_back_records() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_record("a.v1", b"first"));
        bytes.extend_from_slice(&encode_record("b.v1", b""));
        bytes.extend_from_slice(&encode_record("c.v1", &[0xAB; 300]));
        let mut cursor = std::io::Cursor::new(bytes);
        assert_eq!(
            read_record_from(&mut cursor).unwrap(),
            Some(("a.v1".to_string(), b"first".to_vec()))
        );
        assert_eq!(
            read_record_from(&mut cursor).unwrap(),
            Some(("b.v1".to_string(), Vec::new()))
        );
        assert_eq!(
            read_record_from(&mut cursor).unwrap(),
            Some(("c.v1".to_string(), vec![0xAB; 300]))
        );
        // Clean end of stream, exactly at a record boundary.
        assert_eq!(read_record_from(&mut cursor).unwrap(), None);
        assert_eq!(read_record_from(&mut cursor).unwrap(), None);
    }

    #[test]
    fn stream_reader_types_mid_record_truncation() {
        let record = encode_record("cut.v1", b"payload-bytes");
        // A cut anywhere inside the record — including mid-magic — is a
        // typed truncation, never a clean end of stream.
        for cut in [1, 7, 9, 12, 20, record.len() - 1] {
            let mut cursor = std::io::Cursor::new(record[..cut].to_vec());
            assert!(
                matches!(
                    read_record_from(&mut cursor),
                    Err(DecodeError::Truncated { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn stream_reader_rejects_foreign_bytes_and_future_versions() {
        let mut wrong_magic = encode_record("t", b"x");
        wrong_magic[0] ^= 0xFF;
        assert_eq!(
            read_record_from(&mut std::io::Cursor::new(wrong_magic)),
            Err(DecodeError::BadMagic)
        );
        let mut future = encode_record("t", b"x");
        future[8] = 0xEE;
        future[9] = 0x7F;
        assert_eq!(
            read_record_from(&mut std::io::Cursor::new(future)),
            Err(DecodeError::UnsupportedVersion {
                found: 0x7FEE,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn stream_reader_bounds_hostile_length_fields() {
        // A corrupt kind length must fail typed before any allocation of
        // that size is attempted.
        let mut bad_kind = encode_record("t", b"x");
        bad_kind[10..18].copy_from_slice(&u64::MAX.to_le_bytes());
        assert_eq!(
            read_record_from(&mut std::io::Cursor::new(bad_kind)),
            Err(DecodeError::InvalidValue {
                what: "stream record kind length"
            })
        );
        let record = encode_record("t", b"x");
        let payload_len_at = 10 + 8 + 1; // version + kind length + "t"
        let mut bad_payload = record;
        bad_payload[payload_len_at..payload_len_at + 8]
            .copy_from_slice(&(MAX_STREAM_PAYLOAD_LEN + 1).to_le_bytes());
        assert_eq!(
            read_record_from(&mut std::io::Cursor::new(bad_payload)),
            Err(DecodeError::InvalidValue {
                what: "stream record payload length"
            })
        );
    }

    #[test]
    fn stream_reader_checks_the_checksum() {
        let mut record = encode_record("t", b"payload-bytes");
        let payload_at = record.len() - 4 - 4;
        record[payload_at] ^= 0x01;
        assert!(matches!(
            read_record_from(&mut std::io::Cursor::new(record)),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join("uc-persist-test-record");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        write_record_file(&path, "file.v1", b"on disk").unwrap();
        let (kind, payload) = read_record_file(&path).unwrap();
        assert_eq!(kind, "file.v1");
        assert_eq!(payload, b"on disk");
        // No stray temp file is left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            read_record_file(&path),
            Err(DecodeError::Io { .. })
        ));
    }
}
