//! The self-describing on-disk record envelope.
//!
//! Layout, in order:
//!
//! | bytes | field |
//! |---|---|
//! | 8 | [`MAGIC`] |
//! | 2 | [`FORMAT_VERSION`], little-endian |
//! | 8 + n | record kind: `u64` length + UTF-8 tag |
//! | 8 | payload length, little-endian |
//! | … | payload |
//! | 4 | CRC-32 (IEEE) of everything after the magic |
//!
//! The kind tag names the payload type (`"uc.ssd-checkpoint.v1"`,
//! `"uc.fig3-checkpoint.v1"`, …) so a reader can dispatch to the right
//! decoder — or fail with [`DecodeError::UnknownKind`] instead of
//! misinterpreting bytes. Bumping a payload's layout means bumping its
//! kind tag; bumping the envelope itself means bumping
//! [`FORMAT_VERSION`], which old readers reject as
//! [`DecodeError::UnsupportedVersion`].

use crate::codec::{DecodeError, Decoder, Encoder};
use std::io::{self, Write};
use std::path::Path;
use std::sync::OnceLock;

/// The 8-byte signature every checkpoint record starts with.
pub const MAGIC: [u8; 8] = *b"UCSSDCP\0";

/// The envelope format version this build writes and reads.
pub const FORMAT_VERSION: u16 = 1;

fn crc_table() -> &'static [u32; 256] {
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        table
    })
}

/// An incremental CRC-32 (IEEE 802.3 polynomial, reflected) hasher.
///
/// Streaming writers (e.g. a GiB-scale trace encoder) feed bytes through
/// [`Crc32::update`] as they go to disk instead of buffering the whole
/// payload just to checksum it; [`Crc32::finalize`] yields the same value
/// [`crc32`] computes over the concatenation of every update.
///
/// # Example
///
/// ```
/// use uc_persist::{crc32, Crc32};
///
/// let mut hasher = Crc32::new();
/// hasher.update(b"1234");
/// hasher.update(b"56789");
/// assert_eq!(hasher.finalize(), crc32(b"123456789"));
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// A hasher over the empty byte sequence.
    pub fn new() -> Self {
        Crc32 { state: !0u32 }
    }

    /// Feeds `bytes` through the hasher.
    pub fn update(&mut self, bytes: &[u8]) {
        let table = crc_table();
        for &b in bytes {
            self.state = table[((self.state ^ b as u32) & 0xFF) as usize] ^ (self.state >> 8);
        }
    }

    /// The CRC-32 of every byte fed so far (the hasher stays usable).
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `bytes`.
///
/// This is the per-record checksum; a single flipped payload bit decodes
/// as [`DecodeError::ChecksumMismatch`] instead of corrupt state.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut hasher = Crc32::new();
    hasher.update(bytes);
    hasher.finalize()
}

/// Wraps `payload` in the record envelope under the given kind tag.
pub fn encode_record(kind: &str, payload: &[u8]) -> Vec<u8> {
    let mut body = Encoder::new();
    body.put_u16(FORMAT_VERSION);
    body.put_str(kind);
    body.put_bytes(payload);
    let checksum = crc32(body.as_bytes());

    let mut record = Vec::with_capacity(MAGIC.len() + body.as_bytes().len() + 4);
    record.extend_from_slice(&MAGIC);
    record.extend_from_slice(body.as_bytes());
    record.extend_from_slice(&checksum.to_le_bytes());
    record
}

/// Unwraps a record envelope, returning `(kind, payload)`.
///
/// # Errors
///
/// Returns the [`DecodeError`] variant matching exactly what is wrong:
/// [`BadMagic`](DecodeError::BadMagic) for foreign bytes,
/// [`UnsupportedVersion`](DecodeError::UnsupportedVersion) for records
/// from a future format, [`Truncated`](DecodeError::Truncated) for short
/// reads, [`ChecksumMismatch`](DecodeError::ChecksumMismatch) for flipped
/// bits and [`TrailingBytes`](DecodeError::TrailingBytes) for appended
/// junk.
pub fn decode_record(bytes: &[u8]) -> Result<(String, &[u8]), DecodeError> {
    if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let body = &bytes[MAGIC.len()..];
    let mut r = Decoder::new(body);
    let version = r.get_u16()?;
    if version != FORMAT_VERSION {
        return Err(DecodeError::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = r.get_string()?;
    let payload = r.get_bytes()?;
    let checked_len = body.len() - r.remaining();
    let stored = r.get_u32()?;
    let computed = crc32(&body[..checked_len]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    r.finish()?;
    Ok((kind, payload))
}

/// Writes a record file atomically: the bytes go to `<path>.tmp` first
/// and are renamed into place, so a crash mid-write never leaves a torn
/// record at `path`.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_record_file(path: &Path, kind: &str, payload: &[u8]) -> io::Result<()> {
    let record = encode_record(kind, payload);
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&record)?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Reads and unwraps a record file, returning `(kind, payload)`.
///
/// # Errors
///
/// Filesystem errors surface as [`DecodeError::Io`]; malformed bytes as
/// the matching [`DecodeError`] variant (see [`decode_record`]).
pub fn read_record_file(path: &Path) -> Result<(String, Vec<u8>), DecodeError> {
    let bytes = std::fs::read(path).map_err(|e| DecodeError::Io {
        path: path.display().to_string(),
        message: e.to_string(),
    })?;
    let (kind, payload) = decode_record(&bytes)?;
    Ok((kind, payload.to_vec()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn incremental_crc_matches_one_shot_at_any_split() {
        let bytes: Vec<u8> = (0u16..300).map(|i| (i * 7) as u8).collect();
        let expected = crc32(&bytes);
        for split in [0, 1, 9, 150, 299, 300] {
            let mut hasher = Crc32::new();
            hasher.update(&bytes[..split]);
            hasher.update(&bytes[split..]);
            assert_eq!(hasher.finalize(), expected, "split at {split}");
        }
        // `finalize` does not consume: more updates keep accumulating.
        let mut hasher = Crc32::default();
        hasher.update(b"1234");
        let _ = hasher.finalize();
        hasher.update(b"56789");
        assert_eq!(hasher.finalize(), crc32(b"123456789"));
    }

    #[test]
    fn record_round_trip() {
        let record = encode_record("test.v1", b"hello payload");
        let (kind, payload) = decode_record(&record).unwrap();
        assert_eq!(kind, "test.v1");
        assert_eq!(payload, b"hello payload");
    }

    #[test]
    fn empty_payload_round_trips() {
        let record = encode_record("empty.v1", b"");
        let (kind, payload) = decode_record(&record).unwrap();
        assert_eq!(kind, "empty.v1");
        assert!(payload.is_empty());
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut record = encode_record("t", b"x");
        record[0] ^= 0xFF;
        assert_eq!(decode_record(&record), Err(DecodeError::BadMagic));
        // Too short to even hold the magic.
        assert_eq!(decode_record(b"UC"), Err(DecodeError::BadMagic));
    }

    #[test]
    fn future_version_is_typed() {
        let mut record = encode_record("t", b"x");
        // The version is the first body field after the 8-byte magic.
        record[8] = 0xEE;
        record[9] = 0x7F;
        assert_eq!(
            decode_record(&record),
            Err(DecodeError::UnsupportedVersion {
                found: 0x7FEE,
                supported: FORMAT_VERSION
            })
        );
    }

    #[test]
    fn flipped_payload_bit_is_a_checksum_mismatch() {
        let mut record = encode_record("t", b"payload-bytes");
        let payload_at = record.len() - 4 - 4; // inside the payload
        record[payload_at] ^= 0x01;
        assert!(matches!(
            decode_record(&record),
            Err(DecodeError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_record_is_typed() {
        let record = encode_record("t", b"payload-bytes");
        for cut in [record.len() - 1, record.len() - 5, 12] {
            assert!(
                matches!(
                    decode_record(&record[..cut]),
                    Err(DecodeError::Truncated { .. }) | Err(DecodeError::ChecksumMismatch { .. })
                ),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn trailing_junk_is_typed() {
        let mut record = encode_record("t", b"x");
        record.extend_from_slice(b"junk");
        assert_eq!(
            decode_record(&record),
            Err(DecodeError::TrailingBytes { count: 4 })
        );
    }

    #[test]
    fn file_round_trip_and_missing_file() {
        let dir = std::env::temp_dir().join("uc-persist-test-record");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ckpt");
        write_record_file(&path, "file.v1", b"on disk").unwrap();
        let (kind, payload) = read_record_file(&path).unwrap();
        assert_eq!(kind, "file.v1");
        assert_eq!(payload, b"on disk");
        // No stray temp file is left behind.
        assert!(!path.with_extension("tmp").exists());
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            read_record_file(&path),
            Err(DecodeError::Io { .. })
        ));
    }
}
