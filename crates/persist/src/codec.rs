//! Byte-level primitives and the [`Persist`] trait.

use std::error::Error;
use std::fmt;

/// Why a byte buffer failed to decode.
///
/// Every failure mode of the persistence layer is a variant here — decode
/// paths return errors, they never panic, so a corrupted checkpoint file
/// degrades a resume into a fresh start instead of crashing the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not begin with the checkpoint magic.
    BadMagic,
    /// The record was written by a newer (or unknown) format version.
    UnsupportedVersion {
        /// The version stored in the record.
        found: u16,
        /// The newest version this build can read.
        supported: u16,
    },
    /// The buffer ended before the value did.
    Truncated {
        /// Bytes the next read needed.
        needed: u64,
        /// Bytes actually remaining.
        available: u64,
    },
    /// The record's checksum does not match its payload.
    ChecksumMismatch {
        /// The checksum stored in the record.
        stored: u32,
        /// The checksum computed over the bytes actually present.
        computed: u32,
    },
    /// A field held a value outside its type's domain (an unknown enum
    /// tag, a non-boolean boolean, a length that overflows `usize`, …).
    InvalidValue {
        /// Which field or type rejected the value.
        what: &'static str,
    },
    /// The buffer continued after the value ended.
    TrailingBytes {
        /// How many bytes were left over.
        count: u64,
    },
    /// The record's kind tag names a payload type this reader does not
    /// know (a checkpoint from a different device class, or a future
    /// record type).
    UnknownKind {
        /// The kind tag found in the record.
        found: String,
    },
    /// Reading the underlying file failed.
    Io {
        /// The path that failed.
        path: String,
        /// The operating-system error, stringified.
        message: String,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "not a checkpoint record (bad magic)"),
            DecodeError::UnsupportedVersion { found, supported } => write!(
                f,
                "checkpoint format version {found} is newer than the supported {supported}"
            ),
            DecodeError::Truncated { needed, available } => write!(
                f,
                "checkpoint truncated: needed {needed} more bytes, {available} available"
            ),
            DecodeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            DecodeError::InvalidValue { what } => {
                write!(f, "checkpoint field `{what}` holds an invalid value")
            }
            DecodeError::TrailingBytes { count } => {
                write!(f, "checkpoint has {count} trailing bytes after the payload")
            }
            DecodeError::UnknownKind { found } => {
                write!(f, "unknown checkpoint record kind `{found}`")
            }
            DecodeError::Io { path, message } => {
                write!(f, "reading checkpoint `{path}`: {message}")
            }
        }
    }
}

impl Error for DecodeError {}

/// Appends values to a growing byte buffer in the canonical wire form.
///
/// All integers are little-endian and fixed-width; floats are their
/// IEEE-754 bit patterns; strings and sequences carry a `u64` length
/// prefix.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The bytes written so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, yielding its buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (exact round trip,
    /// including signed zeros and NaN payloads).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a boolean as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v.as_bytes());
    }

    /// Appends a length-prefixed byte block.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Reads values back out of a byte buffer, validating every access.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                needed: n as u64,
                available: self.remaining() as u64,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a single byte.
    pub fn get_u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a boolean; any byte other than `0`/`1` is invalid.
    pub fn get_bool(&mut self) -> Result<bool, DecodeError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(DecodeError::InvalidValue { what: "bool" }),
        }
    }

    /// Reads a length prefix as a `usize`, guarding against platforms
    /// where `usize` is narrower than `u64`.
    pub fn get_len(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.get_u64()?).map_err(|_| DecodeError::InvalidValue { what: "length" })
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, DecodeError> {
        let len = self.get_len()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::InvalidValue { what: "utf-8" })
    }

    /// Reads a length-prefixed byte block, borrowing from the buffer.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.get_len()?;
        self.take(len)
    }

    /// Asserts the buffer is fully consumed.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::TrailingBytes`] if bytes remain.
    pub fn finish(self) -> Result<(), DecodeError> {
        if self.remaining() > 0 {
            Err(DecodeError::TrailingBytes {
                count: self.remaining() as u64,
            })
        } else {
            Ok(())
        }
    }
}

/// A type with a canonical, lossless byte form.
///
/// The contract is exact round-tripping: for every value `x`,
/// `T::decode(&mut Decoder::new(encode(x)))` must reproduce a value equal
/// to `x`, and decoding must consume exactly the bytes encoding produced.
/// Decode must return a [`DecodeError`] — never panic — on any byte
/// sequence, however corrupted.
pub trait Persist: Sized {
    /// Appends this value's canonical byte form to `w`.
    fn encode(&self, w: &mut Encoder);

    /// Parses a value back out of `r`.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] if the bytes are truncated or hold a
    /// value outside this type's domain.
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError>;
}

macro_rules! persist_prim {
    ($ty:ty, $put:ident, $get:ident) => {
        impl Persist for $ty {
            fn encode(&self, w: &mut Encoder) {
                w.$put(*self);
            }
            fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
                r.$get()
            }
        }
    };
}

persist_prim!(u8, put_u8, get_u8);
persist_prim!(u16, put_u16, get_u16);
persist_prim!(u32, put_u32, get_u32);
persist_prim!(u64, put_u64, get_u64);
persist_prim!(i64, put_i64, get_i64);
persist_prim!(f64, put_f64, get_f64);
persist_prim!(bool, put_bool, get_bool);

impl Persist for usize {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.get_len()
    }
}

impl Persist for String {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(self);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        r.get_string()
    }
}

impl<T: Persist> Persist for Option<T> {
    fn encode(&self, w: &mut Encoder) {
        match self {
            None => w.put_bool(false),
            Some(v) => {
                w.put_bool(true);
                v.encode(w);
            }
        }
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        if r.get_bool()? {
            Ok(Some(T::decode(r)?))
        } else {
            Ok(None)
        }
    }
}

impl<T: Persist> Persist for Vec<T> {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let len = r.get_len()?;
        // A corrupted length cannot force a huge allocation: capacity is
        // bounded by the bytes actually present (each element consumes at
        // least one), and element decoding fails `Truncated` before the
        // phantom tail is reached.
        let mut items = Vec::with_capacity(len.min(r.remaining()));
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Persist, B: Persist> Persist for (A, B) {
    fn encode(&self, w: &mut Encoder) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

impl<A: Persist, B: Persist, C: Persist> Persist for (A, B, C) {
    fn encode(&self, w: &mut Encoder) {
        self.0.encode(w);
        self.1.encode(w);
        self.2.encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok((A::decode(r)?, B::decode(r)?, C::decode(r)?))
    }
}

impl Persist for [u64; 4] {
    fn encode(&self, w: &mut Encoder) {
        for v in self {
            w.put_u64(*v);
        }
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok([r.get_u64()?, r.get_u64()?, r.get_u64()?, r.get_u64()?])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Encoder::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(std::f64::consts::PI);
        round_trip(-0.0f64);
        round_trip(true);
        round_trip(false);
        round_trip(usize::MAX);
        round_trip(String::from("héllo wörld"));
        round_trip(String::new());
        round_trip(Option::<u64>::None);
        round_trip(Some(7u64));
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u32>::new());
        round_trip((1u64, String::from("x")));
        round_trip((1u64, 2u32, 3u8));
        round_trip([1u64, 2, 3, 4]);
    }

    #[test]
    fn nan_bit_pattern_survives() {
        let mut w = Encoder::new();
        f64::NAN.encode(&mut w);
        let bytes = w.into_bytes();
        let back = f64::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn truncation_is_typed() {
        let mut w = Encoder::new();
        12345u64.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes[..5]);
        assert!(matches!(
            u64::decode(&mut r),
            Err(DecodeError::Truncated { needed: 8, .. })
        ));
    }

    #[test]
    fn invalid_bool_and_utf8_are_typed() {
        let mut r = Decoder::new(&[7]);
        assert_eq!(
            bool::decode(&mut r),
            Err(DecodeError::InvalidValue { what: "bool" })
        );
        let mut w = Encoder::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        assert_eq!(
            String::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { what: "utf-8" })
        );
    }

    #[test]
    fn huge_claimed_length_fails_without_allocating() {
        // A corrupt length prefix claims 2^60 elements backed by 0 bytes.
        let mut w = Encoder::new();
        w.put_u64(1 << 60);
        let bytes = w.into_bytes();
        assert!(matches!(
            Vec::<u64>::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_typed() {
        let mut w = Encoder::new();
        1u8.encode(&mut w);
        2u8.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        u8::decode(&mut r).unwrap();
        assert_eq!(r.finish(), Err(DecodeError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn errors_display_and_box() {
        let errs: Vec<DecodeError> = vec![
            DecodeError::BadMagic,
            DecodeError::UnsupportedVersion {
                found: 9,
                supported: 1,
            },
            DecodeError::Truncated {
                needed: 8,
                available: 2,
            },
            DecodeError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            DecodeError::InvalidValue { what: "x" },
            DecodeError::TrailingBytes { count: 3 },
            DecodeError::UnknownKind {
                found: "mystery".into(),
            },
            DecodeError::Io {
                path: "/tmp/x".into(),
                message: "gone".into(),
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
            let boxed: Box<dyn Error> = Box::new(e);
            assert!(!boxed.to_string().is_empty());
        }
    }
}
