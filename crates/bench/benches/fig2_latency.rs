//! Criterion bench: the cost of Figure 2 latency cells (one cell per
//! device class), so simulator performance regressions are visible.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::fig2::{self, Fig2Config};

fn cell_cfg() -> Fig2Config {
    Fig2Config {
        io_sizes: vec![4 << 10],
        queue_depths: vec![8],
        ios_per_cell: 1_000,
    }
}

fn bench(c: &mut Criterion) {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let mut group = c.benchmark_group("fig2_cell_1000_ios");
    group.sample_size(10);
    for kind in DeviceKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = fig2::run(&roster, kind, &cell_cfg()).expect("cell");
                black_box(r.cell(0, 0, 0));
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
