//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * GC victim policy (greedy / cost-benefit / FIFO) — write
//!   amplification under sustained random overwrites,
//! * replication factor (1/2/3) — ESSD write path cost,
//! * chunk size (256 KiB / 4 MiB / 32 MiB) — sequential-write caps.
//!
//! Each bench also prints the quantity it ablates (WA, latency, gain) so
//! `cargo bench` output doubles as the ablation table.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_blockdev::BlockDevice;
use uc_essd::{Essd, EssdConfig};
use uc_flash::{FlashGeometry, FlashTiming};
use uc_ftl::{Ftl, FtlConfig, GcPolicy};
use uc_sim::SimTime;
use uc_workload::{run_job, AccessPattern, JobSpec};

fn gc_policy_wa(policy: GcPolicy) -> f64 {
    let g = FlashGeometry::new(2, 2, 1, 64, 64, 4096).unwrap();
    let mut ftl = Ftl::new(
        FtlConfig::new(g, FlashTiming::mlc())
            .with_over_provisioning(0.08)
            .with_gc_policy(policy),
    );
    let pages = ftl.logical_pages();
    let mut now = SimTime::ZERO;
    let mut state = 77u64;
    for _ in 0..pages * 3 {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        now = ftl.write_page(now, state % pages);
    }
    ftl.stats().write_amplification()
}

fn bench_gc_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_gc_policy");
    group.sample_size(10);
    for policy in [GcPolicy::Greedy, GcPolicy::CostBenefit, GcPolicy::Fifo] {
        println!(
            "ablation_gc_policy/{policy}: steady WA = {:.2}",
            gc_policy_wa(policy)
        );
        group.bench_function(policy.to_string(), |b| {
            b.iter(|| black_box(gc_policy_wa(policy)))
        });
    }
    group.finish();
}

fn replication_latency_us(replication: usize) -> f64 {
    let mut cfg = EssdConfig::alibaba_pl3(128 << 20);
    cfg.cluster = cfg.cluster.with_replication(replication);
    let mut dev = Essd::new(cfg);
    let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 1).with_io_limit(500);
    let report = run_job(&mut dev, &spec).expect("job");
    report.latency.mean().as_micros_f64()
}

fn bench_replication(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_replication");
    group.sample_size(10);
    for r in [1usize, 2, 3] {
        println!(
            "ablation_replication/{r}-way: 4K write latency = {:.1} us",
            replication_latency_us(r)
        );
        group.bench_function(format!("{r}-way"), |b| {
            b.iter(|| black_box(replication_latency_us(r)))
        });
    }
    group.finish();
}

fn chunk_gain(chunk_bytes: u64) -> f64 {
    let mut cfg = EssdConfig::alibaba_pl3(256 << 20);
    cfg.cluster = cfg.cluster.with_chunk_bytes(chunk_bytes);
    let run = |pattern| {
        let mut dev = Essd::new(cfg.clone());
        let spec = JobSpec::new(pattern, 64 << 10, 16).with_io_limit(800);
        run_job(&mut dev, &spec).expect("job").throughput_gbps()
    };
    run(AccessPattern::RandWrite) / run(AccessPattern::SeqWrite)
}

fn bench_chunk_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_chunk_size");
    group.sample_size(10);
    for (label, bytes) in [
        ("256KiB", 256u64 << 10),
        ("4MiB", 4 << 20),
        ("32MiB", 32 << 20),
    ] {
        println!(
            "ablation_chunk_size/{label}: rand/seq write gain = {:.2}x",
            chunk_gain(bytes)
        );
        group.bench_function(label, |b| b.iter(|| black_box(chunk_gain(bytes))));
    }
    group.finish();
}

fn bench_device_submit(c: &mut Criterion) {
    // Raw simulator speed: submissions per second through each device.
    let mut group = c.benchmark_group("device_submit_4k_write");
    let mut ssd = uc_ssd::Ssd::new(uc_ssd::SsdConfig::samsung_970_pro(128 << 20));
    let cap = ssd.info().capacity();
    let mut now = SimTime::ZERO;
    let mut i = 0u64;
    group.bench_function("ssd", |b| {
        b.iter(|| {
            let off = (i * 4096) % (cap - 4096);
            i += 1;
            let done = ssd
                .submit(&uc_blockdev::IoRequest::write(off, 4096, now))
                .expect("write");
            now = done.max(now);
            black_box(done);
        })
    });
    let mut essd = Essd::new(EssdConfig::aws_io2(128 << 20));
    let cap = essd.info().capacity();
    let mut now = SimTime::ZERO;
    let mut j = 0u64;
    group.bench_function("essd", |b| {
        b.iter(|| {
            let off = (j * 4096) % (cap - 4096);
            j += 1;
            let done = essd
                .submit(&uc_blockdev::IoRequest::write(off, 4096, now))
                .expect("write");
            now = done.max(now);
            black_box(done);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gc_policy,
    bench_replication,
    bench_chunk_size,
    bench_device_submit
);
criterion_main!(benches);
