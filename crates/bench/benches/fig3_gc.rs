//! Criterion bench: the Figure 3 endurance run at small scale — dominated
//! by FTL/GC work on the SSD and by the cluster path on the ESSDs.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::fig3::{self, Fig3Config};

fn bench(c: &mut Criterion) {
    let roster = DeviceRoster::with_capacities(96 << 20, 96 << 20);
    let cfg = Fig3Config {
        capacity_multiple: 1.5,
        ..Fig3Config::paper()
    };
    let mut group = c.benchmark_group("fig3_endurance_1_5x");
    group.sample_size(10);
    for kind in DeviceKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = fig3::run(&roster, kind, &cfg).expect("run");
                black_box(r.peak_gbps());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
