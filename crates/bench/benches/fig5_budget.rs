//! Criterion bench: one Figure 5 mix cell (50/50 random read/write at
//! QD 32), per device class.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::fig5::{self, Fig5Config};

fn bench(c: &mut Criterion) {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let cfg = Fig5Config {
        write_ratios: vec![0.5],
        io_size: 128 << 10,
        queue_depth: 32,
        ios_per_cell: 800,
    };
    let mut group = c.benchmark_group("fig5_mix_cell");
    group.sample_size(10);
    for kind in DeviceKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = fig5::run(&roster, kind, &cfg).expect("run");
                black_box(r.mean_total_gbps());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
