//! Criterion bench: one Figure 4 cell pair (random + sequential write
//! throughput at QD 16), per device class.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::fig4::{self, Fig4Config};

fn bench(c: &mut Criterion) {
    let roster = DeviceRoster::with_capacities(128 << 20, 128 << 20);
    let cfg = Fig4Config {
        io_sizes: vec![64 << 10],
        queue_depths: vec![16],
        ios_per_cell: 800,
    };
    let mut group = c.benchmark_group("fig4_cell_pair");
    group.sample_size(10);
    for kind in DeviceKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let r = fig4::run(&roster, kind, &cfg).expect("run");
                black_box(r.max_gain());
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
