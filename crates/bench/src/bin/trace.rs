//! The trace experiment: replay a captured or generated block-I/O trace
//! against every device class and print the per-phase contract report.
//!
//! Usage: `cargo run --release -p uc-bench --bin trace [--quick]
//! [--scale <mult>] [--shape bursty|steady|diurnal] [--speed <f>]
//! [--phases <n>] [--mode open|closed] [--trace <path>]
//! [--save-trace <path>]
//! [--checkpoint-dir <dir> [--resume] [--kill-after <n>]]`
//!
//! * `--quick` — a shorter generated trace for smoke tests.
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE`
//!   fallback); the generated trace's offset span scales with them.
//! * `--shape` — the synthetic arrival shape when no `--trace` is given
//!   (default `bursty`, the paper's Implication 4 ON/OFF pattern).
//! * `--speed <f>` — replay acceleration: arrival instants are divided
//!   by `f` (default 1, the captured timing).
//! * `--phases <n>` — reporting phases / resumable segments (default 8).
//! * `--mode` — `open` (arrival-driven, default) or `closed` (QD 32).
//! * `--trace <path>` — replay this file instead of generating: binary
//!   `uc.trace.v1` records, falling back to the text format.
//! * `--save-trace <path>` — write the trace being replayed as a binary
//!   `uc.trace.v1` record file before running.
//! * `--checkpoint-dir <dir>` — persist every phase boundary; a killed
//!   run restarted with `--resume` continues from disk and prints a
//!   report byte-identical to an uninterrupted run (the trace CI smoke
//!   pins this).
//! * `--kill-after <n>` — crash-testing hook: exit 42 after the n-th
//!   checkpoint save.
//! * `--remote tcp:ADDR|uds:PATH` — client mode: instead of building
//!   local devices, open a session on a `serve` frontend and replay the
//!   generated trace over the wire (the replayer drives the
//!   [`RemoteDevice`](uc_serve::RemoteDevice) through the same
//!   [`BlockDevice`] seam). `--remote-device <i>` picks the served lane
//!   (default 0); the trace seed is `0x7ACE + i` and the offset span is
//!   the lane's advertised capacity, so concurrent clients on distinct
//!   lanes stay deterministic. `--kill-conn-after <f>` kills the
//!   connection after `f` frame writes — the client reconnects and
//!   RESUMEs, and the replay must come out identical (the CI
//!   connection-churn smoke pins this).
//!
//! Exits nonzero if any phase violates the contract thresholds (local
//! mode), so the report doubles as a gate; remote mode exits 0 unless
//! the transport fails.

use uc_bench::{generated_trace, roster_from_args};
use uc_core::devices::DeviceKind;
use uc_core::experiments::trace::{self as trace_exp, TraceRunConfig, TraceStore};
use uc_core::experiments::Executor;
use uc_core::report::render_trace_report;
use uc_sim::SimDuration;
use uc_trace::{load_trace, replay_with, save_trace, ReplayConfig, Trace};

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

/// Reads the value of `--flag <s>` as a string, if present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"))
            .clone()
    })
}

/// Client mode: replay a generated trace against one lane of a `serve`
/// frontend, then print the device-side session ledger.
fn run_remote(args: &[String], endpoint: &str, shape: &str, quick: bool) {
    let endpoint = uc_serve::Endpoint::parse(endpoint).unwrap_or_else(|e| panic!("--remote: {e}"));
    let device: u32 = parse_value(args, "--remote-device")
        .map(|v| {
            v.parse()
                .unwrap_or_else(|_| panic!("--remote-device expects a lane index, got {v:?}"))
        })
        .unwrap_or(0);
    let mut dev = uc_serve::RemoteDevice::open(&endpoint, device)
        .unwrap_or_else(|e| panic!("cannot open lane {device} at {endpoint}: {e}"));
    if let Some(frames) = parse_count(args, "--kill-conn-after") {
        dev.set_kill_after(frames as u64);
    }
    let info = uc_blockdev::BlockDevice::info(&dev);
    eprintln!(
        "remote lane {device} at {endpoint}: {} ({} MiB)",
        info.name(),
        info.capacity() >> 20
    );
    // Seeded per lane so concurrent clients on distinct lanes generate
    // distinct (but individually deterministic) traffic.
    let trace = generated_trace(shape, quick, info.capacity(), 0x7ACE + device as u64);
    eprintln!(
        "trace: {} entries, {} MiB, {:.1} ms span",
        trace.len(),
        trace.total_bytes() >> 20,
        trace.duration().as_secs_f64() * 1e3
    );
    let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).expect("remote replay");
    println!(
        "remote replay: {} I/Os, {} MiB, mean lat {}, finished at {:.3} ms \
         ({} ring-full split(s), {} overload retries)",
        report.ios,
        report.bytes >> 20,
        uc_core::report::paper_duration(report.latency.mean()),
        report.finished_at.as_nanos() as f64 / 1e6,
        dev.ring_full_splits(),
        dev.overload_retries(),
    );
    if dev.resumes() > 0 {
        // Stderr, not stdout: the churn smoke diffs stdout between a
        // killed and an uninterrupted run.
        eprintln!("connection resumed {} time(s) mid-replay", dev.resumes());
    }
    let stats = dev.session_stats().expect("session stats");
    println!(
        "server ledger: {} I/Os, {} MiB, {} clamped, queue head at {:.3} ms",
        stats.stats.ios,
        stats.stats.bytes >> 20,
        stats.stats.clamped,
        stats.queue_head.as_nanos() as f64 / 1e6
    );
    assert_eq!(
        stats.stats.ios, report.ios,
        "server ledger disagrees with the client-side replay"
    );
    dev.close().expect("close session");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let shape = parse_value(&args, "--shape").unwrap_or_else(|| "bursty".to_string());
    if let Some(endpoint) = parse_value(&args, "--remote") {
        run_remote(&args, &endpoint, &shape, quick);
        return;
    }
    let phases = parse_count(&args, "--phases").unwrap_or(8);
    let kill_after = parse_count(&args, "--kill-after");
    let checkpoint_dir = parse_value(&args, "--checkpoint-dir");
    let speed = parse_value(&args, "--speed")
        .map(|v| {
            v.parse::<f64>()
                .unwrap_or_else(|_| panic!("--speed expects a number, got {v:?}"))
        })
        .unwrap_or(1.0);
    let mode = parse_value(&args, "--mode").unwrap_or_else(|| "open".to_string());
    if resume && checkpoint_dir.is_none() {
        panic!("--resume requires --checkpoint-dir");
    }
    if kill_after.is_some() && checkpoint_dir.is_none() {
        panic!("--kill-after requires --checkpoint-dir");
    }
    let roster = roster_from_args(&args);

    let trace = match parse_value(&args, "--trace") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            match load_trace(&path) {
                Ok(trace) => {
                    eprintln!("loaded binary trace {}", path.display());
                    trace
                }
                Err(binary_err) => {
                    // Interop: fall back to the text format.
                    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                        panic!("cannot read {}: {binary_err}; {e}", path.display())
                    });
                    let trace: Trace = text.parse().unwrap_or_else(|e| {
                        panic!(
                            "{} is neither a uc.trace.v1 record ({binary_err}) \
                             nor a text trace ({e})",
                            path.display()
                        )
                    });
                    eprintln!("loaded text trace {}", path.display());
                    trace
                }
            }
        }
        None => generated_trace(&shape, quick, roster.ssd_capacity(), 0x7ACE),
    };
    eprintln!(
        "trace: {} entries, {} MiB, {:.1} ms span",
        trace.len(),
        trace.total_bytes() >> 20,
        trace.duration().as_secs_f64() * 1e3
    );
    if let Some(path) = parse_value(&args, "--save-trace") {
        let path = std::path::PathBuf::from(path);
        save_trace(&path, &trace).expect("save trace");
        eprintln!("saved uc.trace.v1 record to {}", path.display());
    }

    // Report windows sized so each phase spans several of them.
    let scaled_nanos = (trace.duration().as_nanos() as f64 / speed).max(1.0) as u64;
    let window = SimDuration::from_nanos((scaled_nanos / (phases as u64 * 8).max(1)).max(1))
        .min(SimDuration::from_millis(10))
        .max(SimDuration::from_micros(100));
    let replay = match mode.as_str() {
        "open" => ReplayConfig::open_loop(),
        "closed" => ReplayConfig::closed_loop(32),
        other => panic!("--mode expects open|closed, got {other:?}"),
    }
    .with_window(window)
    .with_speed(speed);
    let cfg = TraceRunConfig::open_loop(phases).with_replay(replay);

    let exec = Executor::from_env();
    eprintln!(
        "replaying at speed {speed}x ({mode} loop) on {} device(s), {phases} phase(s), \
         {} worker(s)…",
        DeviceKind::ALL.len(),
        exec.threads()
    );
    let results = match &checkpoint_dir {
        Some(dir) => {
            let mut store = TraceStore::create(dir).expect("create checkpoint dir");
            if let Some(n) = kill_after {
                store = store.with_kill_after(n as u64);
            }
            eprintln!(
                "persisting phase checkpoints to {} ({})",
                store.path().display(),
                if resume { "resuming" } else { "fresh run" }
            );
            trace_exp::run_pipelined_durable(
                &roster,
                &DeviceKind::ALL,
                &trace,
                &cfg,
                &exec,
                &store,
                resume,
            )
            .expect("trace durable run")
        }
        None => trace_exp::run_pipelined(&roster, &DeviceKind::ALL, &trace, &cfg, &exec)
            .expect("trace run"),
    };

    let report = trace_exp::evaluate(results);
    print!("{}", render_trace_report(&report));
    println!(
        "Reference shapes: bursts that fit the budget keep every phase near the \
         best-phase latency; bursts beyond it flag LAT!/LAG! phases — the \
         smoothing case of Implication 4."
    );
    std::process::exit(if report.clean() { 0 } else { 1 });
}
