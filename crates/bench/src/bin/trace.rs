//! The trace experiment: replay a captured or generated block-I/O trace
//! against every device class and print the per-phase contract report.
//!
//! Usage: `cargo run --release -p uc-bench --bin trace [--quick]
//! [--scale <mult>] [--shape bursty|steady|diurnal] [--speed <f>]
//! [--phases <n>] [--mode open|closed] [--trace <path>]
//! [--save-trace <path>]
//! [--checkpoint-dir <dir> [--resume] [--kill-after <n>]]`
//!
//! * `--quick` — a shorter generated trace for smoke tests.
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE`
//!   fallback); the generated trace's offset span scales with them.
//! * `--shape` — the synthetic arrival shape when no `--trace` is given
//!   (default `bursty`, the paper's Implication 4 ON/OFF pattern).
//! * `--speed <f>` — replay acceleration: arrival instants are divided
//!   by `f` (default 1, the captured timing).
//! * `--phases <n>` — reporting phases / resumable segments (default 8).
//! * `--mode` — `open` (arrival-driven, default) or `closed` (QD 32).
//! * `--trace <path>` — replay this file instead of generating: binary
//!   `uc.trace.v1` records, falling back to the text format.
//! * `--save-trace <path>` — write the trace being replayed as a binary
//!   `uc.trace.v1` record file before running.
//! * `--checkpoint-dir <dir>` — persist every phase boundary; a killed
//!   run restarted with `--resume` continues from disk and prints a
//!   report byte-identical to an uninterrupted run (the trace CI smoke
//!   pins this).
//! * `--kill-after <n>` — crash-testing hook: exit 42 after the n-th
//!   checkpoint save.
//!
//! Exits nonzero if any phase violates the contract thresholds, so the
//! report doubles as a gate.

use uc_bench::roster_from_args;
use uc_core::devices::DeviceKind;
use uc_core::experiments::trace::{self as trace_exp, TraceRunConfig, TraceStore};
use uc_core::experiments::Executor;
use uc_core::report::render_trace_report;
use uc_sim::SimDuration;
use uc_trace::{load_trace, save_trace, ReplayConfig, Trace, TraceSpec};

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

/// Reads the value of `--flag <s>` as a string, if present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"))
            .clone()
    })
}

/// The synthetic trace for the selected shape, sized to the roster (the
/// offset span is the smallest device's capacity, so the same trace
/// replays on every device at any `--scale`).
fn generated(shape: &str, quick: bool, span: u64, seed: u64) -> Trace {
    let duration = if quick {
        SimDuration::from_millis(100)
    } else {
        SimDuration::from_secs(1)
    };
    let spec = match shape {
        "bursty" => TraceSpec::bursty(
            SimDuration::from_millis(2),
            SimDuration::from_millis(6),
            40_000.0,
        ),
        "steady" => TraceSpec::steady(10_000.0),
        "diurnal" => TraceSpec::diurnal(2_000.0, 30_000.0, duration),
        other => panic!("--shape expects bursty|steady|diurnal, got {other:?}"),
    };
    spec.with_duration(duration)
        .with_io_size(64 << 10)
        .with_write_ratio(0.8)
        .with_span(span)
        .with_seed(seed)
        .generate()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let resume = args.iter().any(|a| a == "--resume");
    let shape = parse_value(&args, "--shape").unwrap_or_else(|| "bursty".to_string());
    let phases = parse_count(&args, "--phases").unwrap_or(8);
    let kill_after = parse_count(&args, "--kill-after");
    let checkpoint_dir = parse_value(&args, "--checkpoint-dir");
    let speed = parse_value(&args, "--speed")
        .map(|v| {
            v.parse::<f64>()
                .unwrap_or_else(|_| panic!("--speed expects a number, got {v:?}"))
        })
        .unwrap_or(1.0);
    let mode = parse_value(&args, "--mode").unwrap_or_else(|| "open".to_string());
    if resume && checkpoint_dir.is_none() {
        panic!("--resume requires --checkpoint-dir");
    }
    if kill_after.is_some() && checkpoint_dir.is_none() {
        panic!("--kill-after requires --checkpoint-dir");
    }
    let roster = roster_from_args(&args);

    let trace = match parse_value(&args, "--trace") {
        Some(path) => {
            let path = std::path::PathBuf::from(path);
            match load_trace(&path) {
                Ok(trace) => {
                    eprintln!("loaded binary trace {}", path.display());
                    trace
                }
                Err(binary_err) => {
                    // Interop: fall back to the text format.
                    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                        panic!("cannot read {}: {binary_err}; {e}", path.display())
                    });
                    let trace: Trace = text.parse().unwrap_or_else(|e| {
                        panic!(
                            "{} is neither a uc.trace.v1 record ({binary_err}) \
                             nor a text trace ({e})",
                            path.display()
                        )
                    });
                    eprintln!("loaded text trace {}", path.display());
                    trace
                }
            }
        }
        None => generated(&shape, quick, roster.ssd_capacity(), 0x7ACE),
    };
    eprintln!(
        "trace: {} entries, {} MiB, {:.1} ms span",
        trace.len(),
        trace.total_bytes() >> 20,
        trace.duration().as_secs_f64() * 1e3
    );
    if let Some(path) = parse_value(&args, "--save-trace") {
        let path = std::path::PathBuf::from(path);
        save_trace(&path, &trace).expect("save trace");
        eprintln!("saved uc.trace.v1 record to {}", path.display());
    }

    // Report windows sized so each phase spans several of them.
    let scaled_nanos = (trace.duration().as_nanos() as f64 / speed).max(1.0) as u64;
    let window = SimDuration::from_nanos((scaled_nanos / (phases as u64 * 8).max(1)).max(1))
        .min(SimDuration::from_millis(10))
        .max(SimDuration::from_micros(100));
    let replay = match mode.as_str() {
        "open" => ReplayConfig::open_loop(),
        "closed" => ReplayConfig::closed_loop(32),
        other => panic!("--mode expects open|closed, got {other:?}"),
    }
    .with_window(window)
    .with_speed(speed);
    let cfg = TraceRunConfig::open_loop(phases).with_replay(replay);

    let exec = Executor::from_env();
    eprintln!(
        "replaying at speed {speed}x ({mode} loop) on {} device(s), {phases} phase(s), \
         {} worker(s)…",
        DeviceKind::ALL.len(),
        exec.threads()
    );
    let results = match &checkpoint_dir {
        Some(dir) => {
            let mut store = TraceStore::create(dir).expect("create checkpoint dir");
            if let Some(n) = kill_after {
                store = store.with_kill_after(n as u64);
            }
            eprintln!(
                "persisting phase checkpoints to {} ({})",
                store.path().display(),
                if resume { "resuming" } else { "fresh run" }
            );
            trace_exp::run_pipelined_durable(
                &roster,
                &DeviceKind::ALL,
                &trace,
                &cfg,
                &exec,
                &store,
                resume,
            )
            .expect("trace durable run")
        }
        None => trace_exp::run_pipelined(&roster, &DeviceKind::ALL, &trace, &cfg, &exec)
            .expect("trace run"),
    };

    let report = trace_exp::evaluate(results);
    print!("{}", render_trace_report(&report));
    println!(
        "Reference shapes: bursts that fit the budget keep every phase near the \
         best-phase latency; bursts beyond it flag LAT!/LAG! phases — the \
         smoothing case of Implication 4."
    );
    std::process::exit(if report.clean() { 0 } else { 1 });
}
