//! The served frontend: expose a pool of simulated devices — or a whole
//! multi-tenant fleet — to real network clients over `uc.wire.v2`, with
//! one epoll event-loop thread driving every connection.
//!
//! Usage:
//!
//! * `serve --listen tcp:ADDR|uds:PATH [--devices <n>] [--sessions <n>]`
//!   — bind, print the bound endpoint to stderr (`serving at …`), drive
//!   connections through the event loop until exactly `--sessions`
//!   sessions have closed, then print the device-side report and exit 0.
//!   Clients are `trace --remote <endpoint> --remote-device <i>`; a
//!   client whose connection dies (or is killed with
//!   `--kill-conn-after`) reconnects and RESUMEs without perturbing the
//!   report.
//! * `serve --inprocess [--devices <n>] [--sessions <n>]` — the same
//!   pool, driven by in-process sessions replaying the same generated
//!   traces (session `i` targets lane `i % devices` with seed
//!   `0x7ACE + lane`). The report this mode prints is the baseline the
//!   CI serve smoke diffs a networked run against, byte for byte.
//! * `serve --fleet --listen … [--sessions <n>]` — fleet mode: the wire
//!   lanes are fleet *tenants*, not devices. The server hosts a fed
//!   [`FleetSim`] (same flags as the `fleet` binary: `--tenants`,
//!   `--devices`, `--epochs`, `--duration-ms`, `--seed`, `--shape-mix`,
//!   `--rebalance`, `--scale`); `--sessions` (default 4) `fleet
//!   --remote` clients attach tenant lanes, push arrival streams, and
//!   flush epoch barriers. The rendered fleet report is byte-identical
//!   to an in-process `fleet` run of the same flags — including when a
//!   client's connection is killed and resumed mid-epoch.
//! * `serve --connbench <n> [--devices <d>]` — concurrency measurement:
//!   bind an ephemeral endpoint, hold `n` client sessions open
//!   *simultaneously* against one serving thread, submit on each, and
//!   record the loop's peak connection count in the bench record (the
//!   "hundreds of connections, one thread" claim, measured).
//!
//! Common flags:
//!
//! * `--devices <n>` — device lanes (roster round-robin; default 3), or
//!   the fleet pool size in `--fleet` mode (default 8).
//! * `--sessions <n>` — sessions to serve/replay; default `--devices`
//!   (4 in fleet mode).
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE`
//!   fallback).
//! * `--ring <n>` — per-doorbell submission ring (default 64, which
//!   admits the replayer's 32-entry doorbells unsplit).
//! * `--max-inflight <n>` — in-flight batch ceiling before overload
//!   shedding (default 1024).
//! * `--rate <bytes/s>` — per-session token-bucket rate budget.
//! * `--quick` / `--shape bursty|steady|diurnal` — the generated trace
//!   (in-process mode; remote clients pick their own).
//! * `--report <path>` — write the rendered report there instead of
//!   stdout.
//! * `--bench-json <path>` — machine-readable run record (includes
//!   `peak_connections`, `resumes`, `peak_rss_bytes`, the shed
//!   counters, the event loop's poll/dispatch/stall counts, and the
//!   pool-wide service-latency percentiles).
//! * `--metrics tcp:ADDR|uds:PATH` — serve live telemetry in Prometheus
//!   text exposition format on a second endpoint (one scrape per
//!   connection), next to the wire endpoint.
//! * `--obs-dump <path>` — after the run, persist the full `uc.obs.v1`
//!   telemetry record (metrics snapshot + flight-recorder tail). Two
//!   same-seed `--inprocess` runs dump byte-identical records — the CI
//!   obs-determinism step pins this.
//!
//! Overload shedding is a served result, not a failure: the binary
//! exits 0 even when `shed_overload` is positive.

use std::sync::Arc;
use uc_bench::{generated_trace, roster_from_args, scale_from_args, BenchJson, DeviceKind};
use uc_core::experiments::fleet::{self as fleet_exp, FleetRunConfig};
use uc_core::report::{render_fleet_report, render_serve_report};
use uc_fleet::{FleetSim, RebalancePolicy, ShapeMix};
use uc_serve::{
    serve_events, Endpoint, EventLoopStats, Listener, PoolConfig, RemoteDevice, ServePool,
};
use uc_sim::{SimDuration, SimTime};
use uc_trace::{replay_with, ReplayConfig};

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

/// Reads the value of `--flag <s>` as a string, if present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"))
            .clone()
    })
}

/// Parses `s:d:b` into a [`ShapeMix`].
fn parse_mix(v: &str) -> ShapeMix {
    let parts: Vec<u32> = v
        .split(':')
        .map(|p| {
            p.parse::<u32>()
                .unwrap_or_else(|_| panic!("--shape-mix expects s:d:b integers, got {v:?}"))
        })
        .collect();
    assert!(
        parts.len() == 3 && parts.iter().any(|&p| p > 0),
        "--shape-mix expects three ratios with at least one nonzero, got {v:?}"
    );
    ShapeMix {
        steady: parts[0],
        diurnal: parts[1],
        bursty: parts[2],
    }
}

/// Builds the fleet definition `--fleet` serves — field for field the
/// same construction the `fleet` binary runs in-process, so the two
/// reports can be diffed byte for byte.
fn fleet_run_config(args: &[String]) -> FleetRunConfig {
    let tenants = parse_count(args, "--tenants").unwrap_or(256);
    let devices = parse_count(args, "--devices").unwrap_or(8);
    let epochs = parse_count(args, "--epochs").unwrap_or(4);
    let duration_ms = parse_count(args, "--duration-ms").unwrap_or(200);
    let seed = parse_value(args, "--seed")
        .map(|v| {
            v.parse::<u64>()
                .unwrap_or_else(|_| panic!("--seed expects an integer, got {v:?}"))
        })
        .unwrap_or(0xF1EE7);
    let mix = parse_value(args, "--shape-mix")
        .map(|v| parse_mix(&v))
        .unwrap_or_else(ShapeMix::default_mix);
    let mut config = FleetRunConfig::new(tenants, devices).with_scale(scale_from_args(args));
    config.fleet = config
        .fleet
        .with_mix(mix)
        .with_epochs(epochs)
        .with_duration(SimDuration::from_millis(duration_ms as u64))
        .with_seed(seed);
    if args.iter().any(|a| a == "--rebalance") {
        config.fleet = config.fleet.with_rebalance(RebalancePolicy::default());
    }
    config
}

/// The connection-concurrency bench: `count` sessions held open at once
/// against one serving thread, each submitting a small batch while every
/// other connection stays live, so the loop's `peak_connections` is an
/// honest simultaneous count.
fn run_connbench(pool: &Arc<ServePool>, listen: &str, count: usize) -> EventLoopStats {
    let endpoint = Endpoint::parse(listen).unwrap_or_else(|e| panic!("--listen: {e}"));
    let listener =
        Listener::bind(&endpoint).unwrap_or_else(|e| panic!("cannot bind {endpoint}: {e}"));
    let bound = listener.local_endpoint().expect("local endpoint");
    let devices = pool.devices();
    let server = {
        let pool = Arc::clone(pool);
        std::thread::spawn(move || serve_events(&listener, &pool, count))
    };
    let barrier = Arc::new(std::sync::Barrier::new(count));
    let clients: Vec<_> = (0..count)
        .map(|i| {
            let bound = bound.clone();
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut dev = RemoteDevice::open(&bound, (i % devices) as u32)
                    .unwrap_or_else(|e| panic!("client {i} cannot open: {e}"));
                // Everyone holds their connection until the whole cohort
                // is attached — the peak is all of them at once.
                barrier.wait();
                let info = uc_blockdev::BlockDevice::info(&dev);
                let req = uc_blockdev::IoRequest::write(0, info.logical_block(), SimTime::ZERO);
                uc_blockdev::BlockDevice::submit(&mut dev, &req).expect("bench submit");
                barrier.wait();
                dev.close().expect("close");
            })
        })
        .collect();
    for c in clients {
        c.join().expect("client thread");
    }
    server.join().expect("server thread").expect("serve events")
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let inprocess = args.iter().any(|a| a == "--inprocess");
    let fleet = args.iter().any(|a| a == "--fleet");
    let connbench = parse_count(&args, "--connbench");
    let shape = parse_value(&args, "--shape").unwrap_or_else(|| "bursty".to_string());
    let devices = parse_count(&args, "--devices").unwrap_or(if fleet { 8 } else { 3 });
    let sessions = connbench
        .or_else(|| parse_count(&args, "--sessions"))
        .unwrap_or(if fleet { 4 } else { devices });
    let mut config = PoolConfig::default();
    if let Some(ring) = parse_count(&args, "--ring") {
        config.ring = ring;
    }
    if let Some(ceiling) = parse_count(&args, "--max-inflight") {
        config.max_inflight = ceiling;
    }
    if let Some(rate) = parse_value(&args, "--rate") {
        let parsed = rate
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("--rate expects bytes per second, got {rate:?}"));
        config.rate = Some(parsed);
    }
    assert!(
        !(fleet && (inprocess || connbench.is_some())),
        "--fleet serves tenant lanes over the network; combine it with --listen only"
    );

    let fleet_config = fleet.then(|| fleet_run_config(&args));
    let pool = match &fleet_config {
        Some(run) => {
            // The wire lanes are tenants of a *fed* fleet: geometry and
            // budgets identical to the in-process run, arrival streams
            // supplied by the remote clients.
            let sim = FleetSim::new_fed(run.fleet.clone(), fleet_exp::build_pool(run));
            Arc::new(ServePool::new_fleet(sim, config))
        }
        None => {
            // Lanes round-robin the paper's roster, labeled
            // deterministically so a networked run and the in-process
            // baseline render identically.
            let roster = roster_from_args(&args);
            let lanes: Vec<(String, _)> = (0..devices)
                .map(|i| {
                    let kind = DeviceKind::ALL[i % DeviceKind::ALL.len()];
                    (format!("lane{i}-{}", kind.label()), roster.build(kind))
                })
                .collect();
            Arc::new(ServePool::new(lanes, config))
        }
    };

    // The Prometheus endpoint scrapes the live pool from its own thread
    // for as long as the process runs.
    if let Some(listen) = parse_value(&args, "--metrics") {
        let endpoint = Endpoint::parse(&listen).unwrap_or_else(|e| panic!("--metrics: {e}"));
        let listener = Listener::bind(&endpoint)
            .unwrap_or_else(|e| panic!("cannot bind metrics endpoint {endpoint}: {e}"));
        let bound = listener.local_endpoint().expect("metrics endpoint");
        eprintln!("metrics at {bound}");
        let pool = Arc::clone(&pool);
        std::thread::spawn(move || uc_serve::serve_metrics(&listener, &pool, usize::MAX));
    }

    let started = std::time::Instant::now();
    let mut stats = EventLoopStats::default();
    let mode = if let Some(count) = connbench {
        let listen = parse_value(&args, "--listen").unwrap_or_else(|| "tcp:127.0.0.1:0".into());
        eprintln!("connbench: {count} concurrent session(s) on one serving thread…");
        stats = run_connbench(&pool, &listen, count);
        assert_eq!(
            stats.peak_connections, count,
            "every bench session must be open at once"
        );
        "connbench"
    } else if inprocess {
        // The determinism baseline: session i replays the same generated
        // trace a remote client on lane i % devices would, sequentially
        // (lanes are independent, so sequential == concurrent).
        for i in 0..sessions {
            let lane = i % devices;
            let mut dev = pool.device(lane).expect("lane exists");
            let info = uc_blockdev::BlockDevice::info(&dev);
            let trace = generated_trace(&shape, quick, info.capacity(), 0x7ACE + lane as u64);
            let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).expect("replay");
            eprintln!(
                "session {i} on lane {lane}: {} I/Os, {} MiB, finished at {:.3} ms",
                report.ios,
                report.bytes >> 20,
                report.finished_at.as_nanos() as f64 / 1e6
            );
        }
        "inprocess"
    } else {
        let listen = parse_value(&args, "--listen")
            .unwrap_or_else(|| panic!("serve expects --listen tcp:ADDR|uds:PATH or --inprocess"));
        let endpoint = Endpoint::parse(&listen).unwrap_or_else(|e| panic!("--listen: {e}"));
        let listener =
            Listener::bind(&endpoint).unwrap_or_else(|e| panic!("cannot bind {endpoint}: {e}"));
        let bound = listener.local_endpoint().expect("local endpoint");
        if fleet {
            eprintln!(
                "serving {} fleet tenant(s) on {devices} device(s) at {bound}; \
                 waiting for {sessions} session(s)…",
                pool.fleet_tenants()
            );
        } else {
            eprintln!("serving {devices} lane(s) at {bound}; waiting for {sessions} session(s)…");
        }
        stats = serve_events(&listener, &pool, sessions).expect("serve events");
        if fleet {
            "fleet"
        } else {
            "network"
        }
    };
    let wall = started.elapsed();
    eprintln!(
        "event loop: {} accepted, {} peak, {} session(s), {} resume(s)",
        stats.connections_accepted, stats.peak_connections, stats.sessions_served, stats.resumes
    );

    let report = pool.report();
    let rendered = match pool.fleet_report() {
        // Fleet mode renders the *fleet* verdict — the byte-identity bar
        // against an in-process `fleet` run of the same flags.
        Some(fleet_report) => render_fleet_report(&fleet_exp::evaluate(fleet_report)),
        None => render_serve_report(&report),
    };
    match parse_value(&args, "--report") {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write report");
            eprintln!("report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = parse_value(&args, "--obs-dump") {
        pool.obs_report()
            .save_to(std::path::Path::new(&path))
            .expect("write obs dump");
        eprintln!("uc.obs.v1 telemetry written to {path}");
    }

    if let Some(path) = parse_value(&args, "--bench-json") {
        let service = pool.service_summary();
        BenchJson::new("serve")
            .str("mode", mode)
            .u64("devices", devices as u64)
            .u64("sessions", sessions as u64)
            .u64("total_ios", report.total_ios())
            .u64("total_bytes", report.total_bytes())
            .u64("busy_ring_full", report.busy_ring_full)
            .u64("shed_overload", report.shed_overload)
            .u64("throttled", report.throttled)
            .u64("connections_accepted", stats.connections_accepted)
            .u64("peak_connections", stats.peak_connections as u64)
            .u64("sessions_served", stats.sessions_served)
            .u64("resumes", stats.resumes)
            .u64("loop_polls", stats.polls)
            .u64("loop_dispatches", stats.dispatches)
            .u64("loop_frames", stats.frames)
            .u64("loop_read_stalls", stats.read_stalls)
            .u64("loop_write_stalls", stats.write_stalls)
            .u64("loop_replays", stats.replays)
            .u64("service_p50_ns", service.p50_ns)
            .u64("service_p99_ns", service.p99_ns)
            .u64("service_p999_ns", service.p999_ns)
            .u64("service_max_ns", service.max_ns)
            .f64("wall_seconds", wall.as_secs_f64())
            .opt_u64("peak_rss_bytes", uc_bench::peak_rss_bytes())
            .write_to(&path)
            .expect("write bench json");
        eprintln!("bench json written to {path}");
    }
    // Shedding and throttling are served outcomes, not failures.
}
