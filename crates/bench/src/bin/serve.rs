//! The served frontend: expose a pool of simulated devices to real
//! network clients, or run the same pool in-process as the determinism
//! baseline.
//!
//! Usage:
//!
//! * `serve --listen tcp:ADDR|uds:PATH [--devices <n>] [--sessions <n>]`
//!   — bind, print the bound endpoint to stderr (`serving at …`), accept
//!   exactly `--sessions` connections (thread per connection), then
//!   print the device-side report and exit 0. Clients are `trace
//!   --remote <endpoint> --remote-device <i>`.
//! * `serve --inprocess [--devices <n>] [--sessions <n>]` — the same
//!   pool, driven by in-process sessions replaying the same generated
//!   traces (session `i` targets lane `i % devices` with seed
//!   `0x7ACE + lane`). The report this mode prints is the baseline the
//!   CI serve smoke diffs a networked run against, byte for byte.
//!
//! Common flags:
//!
//! * `--devices <n>` — device lanes, round-robin over the paper's roster
//!   (ESSD-1, ESSD-2, local SSD); default 3.
//! * `--sessions <n>` — sessions to serve/replay; default `--devices`.
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE`
//!   fallback).
//! * `--ring <n>` — per-doorbell submission ring (default 64, which
//!   admits the replayer's 32-entry doorbells unsplit).
//! * `--max-inflight <n>` — in-flight batch ceiling before overload
//!   shedding (default 1024).
//! * `--rate <bytes/s>` — per-session token-bucket rate budget.
//! * `--quick` / `--shape bursty|steady|diurnal` — the generated trace
//!   (in-process mode; remote clients pick their own).
//! * `--report <path>` — write the rendered report there instead of
//!   stdout.
//! * `--bench-json <path>` — machine-readable run record (includes
//!   `peak_rss_bytes` and the shed counters).
//!
//! Overload shedding is a served result, not a failure: the binary
//! exits 0 even when `shed_overload` is positive.

use std::sync::Arc;
use uc_bench::{generated_trace, roster_from_args, BenchJson, DeviceKind};
use uc_core::report::render_serve_report;
use uc_serve::{Endpoint, Listener, PoolConfig, ServePool};
use uc_trace::{replay_with, ReplayConfig};

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

/// Reads the value of `--flag <s>` as a string, if present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"))
            .clone()
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let inprocess = args.iter().any(|a| a == "--inprocess");
    let shape = parse_value(&args, "--shape").unwrap_or_else(|| "bursty".to_string());
    let devices = parse_count(&args, "--devices").unwrap_or(3);
    let sessions = parse_count(&args, "--sessions").unwrap_or(devices);
    let mut config = PoolConfig::default();
    if let Some(ring) = parse_count(&args, "--ring") {
        config.ring = ring;
    }
    if let Some(ceiling) = parse_count(&args, "--max-inflight") {
        config.max_inflight = ceiling;
    }
    if let Some(rate) = parse_value(&args, "--rate") {
        let parsed = rate
            .parse::<f64>()
            .unwrap_or_else(|_| panic!("--rate expects bytes per second, got {rate:?}"));
        config.rate = Some(parsed);
    }

    // Lanes round-robin the paper's roster, labeled deterministically so
    // a networked run and the in-process baseline render identically.
    let roster = roster_from_args(&args);
    let lanes: Vec<(String, _)> = (0..devices)
        .map(|i| {
            let kind = DeviceKind::ALL[i % DeviceKind::ALL.len()];
            (format!("lane{i}-{}", kind.label()), roster.build(kind))
        })
        .collect();
    let pool = Arc::new(ServePool::new(lanes, config));

    let started = std::time::Instant::now();
    let mode = if inprocess {
        // The determinism baseline: session i replays the same generated
        // trace a remote client on lane i % devices would, sequentially
        // (lanes are independent, so sequential == concurrent).
        for i in 0..sessions {
            let lane = i % devices;
            let mut dev = pool.device(lane).expect("lane exists");
            let info = uc_blockdev::BlockDevice::info(&dev);
            let trace = generated_trace(&shape, quick, info.capacity(), 0x7ACE + lane as u64);
            let report = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).expect("replay");
            eprintln!(
                "session {i} on lane {lane}: {} I/Os, {} MiB, finished at {:.3} ms",
                report.ios,
                report.bytes >> 20,
                report.finished_at.as_nanos() as f64 / 1e6
            );
        }
        "inprocess"
    } else {
        let listen = parse_value(&args, "--listen")
            .unwrap_or_else(|| panic!("serve expects --listen tcp:ADDR|uds:PATH or --inprocess"));
        let endpoint = Endpoint::parse(&listen).unwrap_or_else(|e| panic!("--listen: {e}"));
        let listener =
            Listener::bind(&endpoint).unwrap_or_else(|e| panic!("cannot bind {endpoint}: {e}"));
        let bound = listener.local_endpoint().expect("local endpoint");
        eprintln!("serving {devices} lane(s) at {bound}; waiting for {sessions} session(s)…");
        uc_serve::serve_sessions(&listener, &pool, sessions).expect("serve sessions");
        "network"
    };
    let wall = started.elapsed();

    let report = pool.report();
    let rendered = render_serve_report(&report);
    match parse_value(&args, "--report") {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write report");
            eprintln!("report written to {path}");
        }
        None => print!("{rendered}"),
    }

    if let Some(path) = parse_value(&args, "--bench-json") {
        BenchJson::new("serve")
            .str("mode", mode)
            .u64("devices", devices as u64)
            .u64("sessions", sessions as u64)
            .u64("total_ios", report.total_ios())
            .u64("total_bytes", report.total_bytes())
            .u64("busy_ring_full", report.busy_ring_full)
            .u64("shed_overload", report.shed_overload)
            .u64("throttled", report.throttled)
            .f64("wall_seconds", wall.as_secs_f64())
            .opt_u64("peak_rss_bytes", uc_bench::peak_rss_bytes())
            .write_to(&path)
            .expect("write bench json");
        eprintln!("bench json written to {path}");
    }
    // Shedding and throttling are served outcomes, not failures.
}
