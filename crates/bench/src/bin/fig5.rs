//! Regenerates Figure 5: throughput under mixed read/write workloads with
//! different write ratios.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig5 [--scale <mult>]`
//! (`UC_SCALE` is the environment fallback)

use uc_bench::roster_from_args;
use uc_core::devices::DeviceKind;
use uc_core::experiments::fig5::{self, Fig5Config};
use uc_core::report::render_fig5;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let roster = roster_from_args(&args);
    let cfg = Fig5Config::paper();
    for kind in DeviceKind::ALL {
        eprintln!("sweeping {kind}…");
        let r = fig5::run(&roster, kind, &cfg).expect("fig5 run");
        println!("{}", render_fig5(&r));
    }
    println!(
        "Paper reference shapes: both ESSDs sit flat at their budget (3.0 / \
         1.1 GB/s) for every mix; the SSD varies substantially with the mix."
    );
}
