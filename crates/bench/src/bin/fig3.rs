//! Regenerates Figure 3: runtime throughput under sustained random writes
//! to 3× device capacity.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig3 [--quick]
//! [--scale <mult>] [--segments <n>] [--verify-segmented]`
//!
//! * `--quick` — shorter run (1.5× capacity) for smoke tests.
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE` fallback).
//! * `--segments <n>` — slice each device's endurance timeline into `n`
//!   resumable checkpoint segments pipelined across cores (default 8;
//!   results are byte-identical at any value).
//! * `--verify-segmented` — run each device both unsliced and pipelined
//!   and exit nonzero unless the rendered figures are byte-identical (the
//!   checkpoint determinism contract; used by CI).

use uc_bench::roster_from_args;
use uc_core::devices::DeviceKind;
use uc_core::experiments::fig3::{self, Fig3Config};
use uc_core::experiments::Executor;
use uc_core::report::render_fig3;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verify = args.iter().any(|a| a == "--verify-segmented");
    let segments = args
        .iter()
        .position(|a| a == "--segments")
        .map(|i| {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| panic!("--segments expects a value"));
            let n = v
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("--segments expects a positive integer, got {v:?}"));
            assert!(n > 0, "--segments expects a positive integer, got 0");
            n
        })
        .unwrap_or(8);
    let roster = roster_from_args(&args);
    let cfg = if quick {
        Fig3Config::quick()
    } else {
        Fig3Config::paper()
    };
    let exec = Executor::from_env();

    eprintln!(
        "running {} endurance timelines as {segments} pipelined segment(s) on {} worker(s)…",
        DeviceKind::ALL.len(),
        exec.threads()
    );
    let results =
        fig3::run_pipelined(&roster, &DeviceKind::ALL, &cfg, segments, &exec).expect("fig3 run");

    let mut mismatches = 0;
    for (i, kind) in DeviceKind::ALL.into_iter().enumerate() {
        println!("==== {kind} ====");
        print!("{}", render_fig3(&results[i]));
        println!();
        if verify {
            eprintln!("verifying {kind} against the unsliced run…");
            let unsliced = fig3::run(&roster, kind, &cfg).expect("fig3 unsliced run");
            if render_fig3(&unsliced) != render_fig3(&results[i]) {
                eprintln!("::error::{kind}: segmented fig3 diverged from the unsliced run");
                mismatches += 1;
            }
        }
    }
    if verify {
        if mismatches > 0 {
            std::process::exit(1);
        }
        eprintln!(
            "segmented-vs-unsliced equivalence holds for all {} devices",
            DeviceKind::ALL.len()
        );
    }
    println!(
        "Paper reference shapes: SSD collapses at ~0.9x capacity (2.7 -> 1.0 \
         -> 0.15 GB/s); ESSD-1 sustains to ~2.55x then flow-limits to ~0.3 \
         GB/s; ESSD-2 sustains to 3x."
    );
}
