//! Regenerates Figure 3: runtime throughput under sustained random writes
//! to 3× device capacity.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig3 [--quick]
//! [--scale <mult>] [--segments <n>] [--verify-segmented]
//! [--checkpoint-dir <dir> [--resume] [--kill-after <n>]]`
//!
//! * `--quick` — shorter run (1.5× capacity) for smoke tests.
//! * `--scale <mult>` — multiply device capacities (`UC_SCALE` fallback).
//! * `--segments <n>` — slice each device's endurance timeline into `n`
//!   resumable checkpoint segments pipelined across cores (default 8;
//!   results are byte-identical at any value).
//! * `--verify-segmented` — run each device both unsliced and pipelined
//!   and exit nonzero unless the rendered figures are byte-identical (the
//!   checkpoint determinism contract; used by CI).
//! * `--checkpoint-dir <dir>` — persist every segment boundary into
//!   `<dir>` as self-describing record files, pruning superseded ones. A
//!   killed run restarted with `--resume` continues from the newest valid
//!   checkpoint and renders figures byte-identical to an uninterrupted
//!   run (the crash-resume CI gate pins this).
//! * `--resume` — with `--checkpoint-dir`, continue from on-disk state.
//! * `--kill-after <n>` — crash-testing hook: terminate the process
//!   (exit 42) after the n-th checkpoint save, simulating a crash at a
//!   segment boundary. CI uses this to exercise `--resume`.
//! * `--bench-json <path>` — write a machine-readable benchmark record
//!   (wall clock, simulated bytes/sec, devices) for CI artifacts.

use uc_bench::{roster_from_args, BenchJson};
use uc_core::devices::DeviceKind;
use uc_core::experiments::fig3::{self, CheckpointDir, Fig3Config};
use uc_core::experiments::Executor;
use uc_core::report::render_fig3;

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let verify = args.iter().any(|a| a == "--verify-segmented");
    let resume = args.iter().any(|a| a == "--resume");
    let segments = parse_count(&args, "--segments").unwrap_or(8);
    let kill_after = parse_count(&args, "--kill-after");
    let checkpoint_dir = args.iter().position(|a| a == "--checkpoint-dir").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("--checkpoint-dir expects a path"))
            .clone()
    });
    if resume && checkpoint_dir.is_none() {
        panic!("--resume requires --checkpoint-dir");
    }
    if kill_after.is_some() && checkpoint_dir.is_none() {
        panic!("--kill-after requires --checkpoint-dir");
    }
    let bench_json = args.iter().position(|a| a == "--bench-json").map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("--bench-json expects a path"))
            .clone()
    });
    let roster = roster_from_args(&args);
    let cfg = if quick {
        Fig3Config::quick()
    } else {
        Fig3Config::paper()
    };
    let exec = Executor::from_env();
    let started = std::time::Instant::now();

    eprintln!(
        "running {} endurance timelines as {segments} pipelined segment(s) on {} worker(s)…",
        DeviceKind::ALL.len(),
        exec.threads()
    );
    let results = match &checkpoint_dir {
        Some(dir) => {
            let mut store = CheckpointDir::create(dir).expect("create checkpoint dir");
            if let Some(n) = kill_after {
                store = store.with_kill_after(n as u64);
            }
            eprintln!(
                "persisting segment checkpoints to {} ({})",
                store.path().display(),
                if resume { "resuming" } else { "fresh run" }
            );
            fig3::run_pipelined_durable(
                &roster,
                &DeviceKind::ALL,
                &cfg,
                segments,
                &exec,
                &store,
                resume,
            )
            .expect("fig3 durable run")
        }
        None => {
            fig3::run_pipelined(&roster, &DeviceKind::ALL, &cfg, segments, &exec).expect("fig3 run")
        }
    };
    let wall = started.elapsed().as_secs_f64();

    if let Some(path) = &bench_json {
        let simulated_bytes: f64 = results
            .iter()
            .map(|r| {
                r.volume_series
                    .points()
                    .last()
                    .map_or(0.0, |&(multiple, _)| multiple * r.capacity as f64)
            })
            .sum();
        BenchJson::new("fig3")
            .u64("devices", DeviceKind::ALL.len() as u64)
            .u64("segments", segments as u64)
            .u64("simulated_bytes", simulated_bytes as u64)
            .f64("wall_seconds", wall)
            .f64("simulated_bytes_per_sec", simulated_bytes / wall.max(1e-9))
            .opt_u64("peak_rss_bytes", uc_bench::peak_rss_bytes())
            .write_to(path)
            .expect("write bench json");
        eprintln!("wrote benchmark record to {path}");
    }

    let mut mismatches = 0;
    for (i, kind) in DeviceKind::ALL.into_iter().enumerate() {
        println!("==== {kind} ====");
        print!("{}", render_fig3(&results[i]));
        println!();
        if verify {
            eprintln!("verifying {kind} against the unsliced run…");
            let unsliced = fig3::run(&roster, kind, &cfg).expect("fig3 unsliced run");
            if render_fig3(&unsliced) != render_fig3(&results[i]) {
                eprintln!("::error::{kind}: segmented fig3 diverged from the unsliced run");
                mismatches += 1;
            }
        }
    }
    if verify {
        if mismatches > 0 {
            std::process::exit(1);
        }
        eprintln!(
            "segmented-vs-unsliced equivalence holds for all {} devices",
            DeviceKind::ALL.len()
        );
    }
    println!(
        "Paper reference shapes: SSD collapses at ~0.9x capacity (2.7 -> 1.0 \
         -> 0.15 GB/s); ESSD-1 sustains to ~2.55x then flow-limits to ~0.3 \
         GB/s; ESSD-2 sustains to 3x."
    );
}
