//! Regenerates Figure 3: runtime throughput under sustained random writes
//! to 3× device capacity.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig3`

use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::fig3::{self, Fig3Config};
use uc_core::report::render_fig3;

fn main() {
    let roster = DeviceRoster::scaled_default();
    let cfg = Fig3Config::paper();
    for kind in DeviceKind::ALL {
        eprintln!("running {kind} endurance…");
        let r = fig3::run(&roster, kind, &cfg).expect("fig3 run");
        println!("==== {kind} ====");
        print!("{}", render_fig3(&r));
        println!();
    }
    println!(
        "Paper reference shapes: SSD collapses at ~0.9x capacity (2.7 -> 1.0 \
         -> 0.15 GB/s); ESSD-1 sustains to ~2.55x then flow-limits to ~0.3 \
         GB/s; ESSD-2 sustains to 3x."
    );
}
