//! Regenerates Figure 2: latency grids (avg and P99.9) for both ESSDs
//! versus the local SSD, across pattern × I/O size × queue depth.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig2 [--quick]
//! [--scale <mult>]` (`UC_SCALE` is the environment fallback)

use uc_bench::roster_from_args;
use uc_core::devices::DeviceKind;
use uc_core::experiments::fig2::{self, Fig2Config};
use uc_core::report::render_fig2_grid;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        Fig2Config::quick()
    } else {
        Fig2Config::paper()
    };
    let roster = roster_from_args(&args);

    eprintln!("measuring SSD baseline…");
    let ssd = fig2::run(&roster, DeviceKind::LocalSsd, &cfg).expect("ssd grid");
    for essd_kind in [DeviceKind::Essd1, DeviceKind::Essd2] {
        eprintln!("measuring {essd_kind}…");
        let essd = fig2::run(&roster, essd_kind, &cfg).expect("essd grid");
        for (metric_name, p999) in [("Average", false), ("P99.9", true)] {
            println!("==== {metric_name} latency of {essd_kind} ====");
            for pattern in 0..4 {
                println!("{}", render_fig2_grid(&essd, &ssd, pattern, p999));
            }
        }
    }
    println!(
        "Paper reference shapes: gaps fall as size/depth scale; random-read \
         gaps are the smallest column; P99.9 gaps exceed average gaps; at \
         full scale the write gap can fall below 1x."
    );
}
