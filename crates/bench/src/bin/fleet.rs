//! The fleet experiment: hundreds of tenants multiplexed onto a shared
//! eSSD pool, with per-tenant interference metrics, epoch fairness, and
//! optional checkpoint-based rebalancing.
//!
//! Usage: `cargo run --release -p uc-bench --bin fleet [--tenants <n>]
//! [--devices <n>] [--shape-mix <s:d:b>] [--rebalance] [--epochs <n>]
//! [--duration-ms <n>] [--seed <n>] [--scale <mult>]
//! [--bench-json <path>]
//! [--checkpoint-dir <dir> [--resume] [--kill-after <n>]]`
//!
//! * `--tenants <n>` — fleet population (default 256).
//! * `--devices <n>` — shared eSSD pool size (default 8; alternating
//!   AWS io2 / Alibaba PL3 presets).
//! * `--shape-mix <s:d:b>` — steady:diurnal:bursty population ratio
//!   (default `2:1:1`).
//! * `--rebalance` — enable hot-device detection and checkpoint-seam
//!   tenant migration at epoch boundaries.
//! * `--epochs <n>` — epoch count (default 4; each boundary audits the
//!   conservation contracts and, durably, persists a checkpoint).
//! * `--duration-ms <n>` — per-tenant arrival horizon (default 200).
//! * `--seed <n>` — the fleet seed driving every tenant's synthesis.
//! * `--scale <mult>` — multiply per-device capacity (`UC_SCALE`
//!   fallback; 1 = 256 MiB per device).
//! * `--bench-json <path>` — write a machine-readable benchmark record
//!   (wall clock, simulated bytes/sec, tenants/devices, and the
//!   fleet-wide tenant-latency percentiles) for CI artifacts.
//! * `--obs-dump <path>` — persist the run's `uc.obs.v1` telemetry
//!   record (every metric plus the flight-recorder tail). Two same-seed
//!   runs dump byte-identical records — the CI obs-determinism step
//!   pins this. When the run records a contract violation the dump is
//!   written even without this flag (to `fleet-violation.obs`), and the
//!   flight tail — whose last events name the violating seam — is
//!   echoed to stderr.
//! * `--report <path>` — write the rendered fleet report there instead
//!   of stdout (the serve smoke diffs it against a `serve --fleet`
//!   run's report byte for byte).
//! * `--checkpoint-dir <dir>` — persist every epoch boundary; a killed
//!   run restarted with `--resume` continues from disk and prints a
//!   report byte-identical to an uninterrupted run (the fleet CI smoke
//!   pins this).
//! * `--kill-after <n>` — crash-testing hook: exit 42 after the n-th
//!   checkpoint save.
//! * `--remote tcp:ADDR|uds:PATH` — client mode: instead of running the
//!   fleet in-process, attach this client's share of the tenants as
//!   `uc.wire.v2` lanes on a `serve --fleet` frontend, push each
//!   tenant's synthesized arrival stream over the wire, and flush every
//!   epoch barrier. `--clients <n>` / `--client-index <i>` partition the
//!   tenant population (tenant `t` belongs to client `t % n`); the
//!   *server* renders the fleet report, byte-identical to an in-process
//!   run of the same flags. `--kill-conn-after <f>` kills the connection
//!   after `f` frame writes to exercise reconnect-and-resume mid-run.
//!
//! Exits nonzero if the run recorded any contract violation (tenant
//! conservation, ledger conservation, queue-head monotonicity) — flagged
//! interference findings are measurements, not failures.

use uc_bench::{scale_from_args, BenchJson};
use uc_blockdev::IoRequest;
use uc_core::experiments::fleet::{self as fleet_exp, FleetRunConfig, FleetStore};
use uc_core::report::render_fleet_report;
use uc_fleet::{RebalancePolicy, ShapeMix, TenantSpec};
use uc_serve::{Body, LaneTarget, WireClient};
use uc_sim::SimDuration;

/// Reads the value of `--flag <n>` as a positive integer, if present.
fn parse_count(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        let n = v
            .parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a positive integer, got {v:?}"));
        assert!(n > 0, "{flag} expects a positive integer, got 0");
        n
    })
}

/// Reads the value of `--flag <s>` as a string, if present.
fn parse_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).map(|i| {
        args.get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"))
            .clone()
    })
}

/// Parses `s:d:b` into a [`ShapeMix`].
fn parse_mix(v: &str) -> ShapeMix {
    let parts: Vec<u32> = v
        .split(':')
        .map(|p| {
            p.parse::<u32>()
                .unwrap_or_else(|_| panic!("--shape-mix expects s:d:b integers, got {v:?}"))
        })
        .collect();
    assert!(
        parts.len() == 3 && parts.iter().any(|&p| p > 0),
        "--shape-mix expects three ratios with at least one nonzero, got {v:?}"
    );
    ShapeMix {
        steady: parts[0],
        diurnal: parts[1],
        bursty: parts[2],
    }
}

/// Reads the value of `--flag <n>` as a non-negative integer (zero
/// allowed — client indices start at 0).
fn parse_index(args: &[String], flag: &str) -> Option<usize> {
    args.iter().position(|a| a == flag).map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("{flag} expects a value"));
        v.parse::<usize>()
            .unwrap_or_else(|_| panic!("{flag} expects a non-negative integer, got {v:?}"))
    })
}

/// How many trace entries one push frame carries (well under the wire's
/// per-frame request cap).
const PUSH_CHUNK: usize = 1024;

/// Client mode: attach this client's share of the tenants on a
/// `serve --fleet` frontend, push their synthesized arrival streams, and
/// flush every epoch barrier. The synthesis inputs are the same flags
/// the server built the fleet from; the region span and I/O size come
/// back on the wire in ATTACH_OK, so the pushed entries are exactly the
/// ones an in-process run would generate.
fn run_remote(args: &[String], endpoint: &str, config: &FleetRunConfig) {
    let endpoint = uc_serve::Endpoint::parse(endpoint).unwrap_or_else(|e| panic!("--remote: {e}"));
    let clients = parse_count(args, "--clients").unwrap_or(1);
    let index = parse_index(args, "--client-index").unwrap_or(0);
    assert!(
        index < clients,
        "--client-index {index} out of range for --clients {clients}"
    );
    // The server may still be binding when the clients launch.
    let mut client = None;
    for _ in 0..200 {
        match WireClient::connect(&endpoint) {
            Ok(c) => {
                client = Some(c);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(50)),
        }
    }
    let mut client = client.unwrap_or_else(|| panic!("cannot reach serve --fleet at {endpoint}"));
    if let Some(frames) = parse_count(args, "--kill-conn-after") {
        client.set_kill_after(frames as u64);
    }
    let tenants: Vec<u32> = (index..config.fleet.tenants)
        .step_by(clients)
        .map(|t| t as u32)
        .collect();
    eprintln!(
        "fleet client {index}/{clients} at {endpoint}: {} tenant(s), session {}",
        tenants.len(),
        client.token()
    );
    let mut lanes = Vec::with_capacity(tenants.len());
    let mut pushed = 0u64;
    for &t in &tenants {
        let (lane, _name, span, io_size) = client
            .attach(LaneTarget::Tenant(t))
            .unwrap_or_else(|e| panic!("attach tenant {t}: {e}"));
        let spec = TenantSpec::synthesize(
            t,
            &config.fleet.mix,
            config.fleet.seed,
            span,
            config.fleet.duration,
            io_size,
        );
        let entries = spec.trace.generate().entries().to_vec();
        for chunk in entries.chunks(PUSH_CHUNK) {
            let reqs: Vec<IoRequest> = chunk
                .iter()
                .map(|e| IoRequest {
                    kind: e.kind,
                    offset: e.offset,
                    len: e.len,
                    submit_time: e.at,
                })
                .collect();
            match client
                .call(lane, Body::Submit { reqs })
                .unwrap_or_else(|e| panic!("push tenant {t}: {e}"))
            {
                Body::PushOk { accepted } => pushed += accepted,
                Body::Err { message, .. } => panic!("push tenant {t} refused: {message}"),
                other => panic!("expected PUSH_OK for tenant {t}, got {other:?}"),
            }
        }
        lanes.push(lane);
    }
    let mut moved = 0usize;
    for epoch in 0..config.fleet.epochs as u64 {
        let moves = client
            .flush_epoch(&lanes, epoch)
            .unwrap_or_else(|e| panic!("flush epoch {epoch}: {e}"));
        moved += moves.iter().filter(|(_, to)| to.is_some()).count();
    }
    let resumes = client.resumes();
    client.close().expect("close session");
    eprintln!(
        "fleet client {index}/{clients}: pushed {pushed} entr(ies), \
         {} epoch(s) flushed, {moved} lane move(s), {resumes} resume(s)",
        config.fleet.epochs
    );
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let tenants = parse_count(&args, "--tenants").unwrap_or(256);
    let devices = parse_count(&args, "--devices").unwrap_or(8);
    let epochs = parse_count(&args, "--epochs").unwrap_or(4);
    let duration_ms = parse_count(&args, "--duration-ms").unwrap_or(200);
    let rebalance = args.iter().any(|a| a == "--rebalance");
    let resume = args.iter().any(|a| a == "--resume");
    let kill_after = parse_count(&args, "--kill-after");
    let checkpoint_dir = parse_value(&args, "--checkpoint-dir");
    let bench_json = parse_value(&args, "--bench-json");
    let seed = parse_value(&args, "--seed")
        .map(|v| {
            v.parse::<u64>()
                .unwrap_or_else(|_| panic!("--seed expects an integer, got {v:?}"))
        })
        .unwrap_or(0xF1EE7);
    let mix = parse_value(&args, "--shape-mix")
        .map(|v| parse_mix(&v))
        .unwrap_or_else(ShapeMix::default_mix);
    if resume && checkpoint_dir.is_none() {
        panic!("--resume requires --checkpoint-dir");
    }
    if kill_after.is_some() && checkpoint_dir.is_none() {
        panic!("--kill-after requires --checkpoint-dir");
    }

    let mut config = FleetRunConfig::new(tenants, devices).with_scale(scale_from_args(&args));
    config.fleet = config
        .fleet
        .with_mix(mix)
        .with_epochs(epochs)
        .with_duration(SimDuration::from_millis(duration_ms as u64))
        .with_seed(seed);
    if rebalance {
        config.fleet = config.fleet.with_rebalance(RebalancePolicy::default());
    }

    if let Some(endpoint) = parse_value(&args, "--remote") {
        run_remote(&args, &endpoint, &config);
        return;
    }

    eprintln!(
        "fleet: {tenants} tenant(s) on {devices} shared device(s) \
         ({} MiB each), {epochs} epoch(s), {duration_ms} ms horizon, \
         rebalance {}…",
        config.capacity >> 20,
        if rebalance { "on" } else { "off" }
    );
    let started = std::time::Instant::now();
    let verdict = match &checkpoint_dir {
        Some(dir) => {
            let mut store = FleetStore::create(dir).expect("create checkpoint dir");
            if let Some(n) = kill_after {
                store = store.with_kill_after(n as u64);
            }
            eprintln!(
                "persisting epoch checkpoints to {dir} ({})",
                if resume { "resuming" } else { "fresh run" }
            );
            fleet_exp::run_durable(&config, &mut store, resume).expect("fleet durable run")
        }
        None => fleet_exp::run(&config).expect("fleet run"),
    };
    let wall = started.elapsed().as_secs_f64();

    let rendered = render_fleet_report(&verdict);
    match parse_value(&args, "--report") {
        Some(path) => {
            std::fs::write(&path, &rendered).expect("write report");
            eprintln!("report written to {path}");
        }
        None => print!("{rendered}"),
    }
    println!(
        "Reference shapes: co-located bursty tenants drag epoch fairness and \
         flag latency blow-ups on their neighbors; rebalancing migrates the \
         busiest tenant off the hot device through the checkpoint seam."
    );
    eprintln!(
        "fleet wall time: {wall:.3}s ({:.1} simulated MiB/s)",
        verdict.report.total_bytes as f64 / (1 << 20) as f64 / wall.max(1e-9)
    );

    // The telemetry dump: on demand at the named path, and always on a
    // contract violation — the flight tail names the violating seam.
    let obs_dump = parse_value(&args, "--obs-dump");
    let violated = !verdict.report.violations.is_empty();
    if let Some(path) = obs_dump
        .clone()
        .or_else(|| violated.then(|| "fleet-violation.obs".to_string()))
    {
        verdict
            .obs
            .save_to(std::path::Path::new(&path))
            .expect("write obs dump");
        eprintln!("uc.obs.v1 telemetry written to {path}");
    }
    if violated {
        eprintln!(
            "flight tail ({} event(s), {} dropped):",
            verdict.obs.events.len(),
            verdict.obs.dropped_events
        );
        for e in verdict.obs.events.iter().rev().take(8).rev() {
            eprintln!("  {}", e.render());
        }
    }

    if let Some(path) = bench_json {
        let latency = verdict.obs.snapshot.histogram("fleet.tenant_latency_ns");
        BenchJson::new("fleet")
            .u64("tenants", tenants as u64)
            .u64("devices", devices as u64)
            .u64("epochs", verdict.report.epochs as u64)
            .u64("total_ios", verdict.report.total_ios)
            .u64("total_bytes", verdict.report.total_bytes)
            .u64("latency_p50_ns", latency.map_or(0, |h| h.p50_ns))
            .u64("latency_p99_ns", latency.map_or(0, |h| h.p99_ns))
            .u64("latency_p999_ns", latency.map_or(0, |h| h.p999_ns))
            .u64("latency_max_ns", latency.map_or(0, |h| h.max_ns))
            .u64("migrations", verdict.report.migrations.len() as u64)
            .u64("violations", verdict.report.violations.len() as u64)
            .u64("findings", verdict.findings.len() as u64)
            .f64("min_fairness", verdict.report.min_fairness())
            .f64("wall_seconds", wall)
            .f64(
                "simulated_bytes_per_sec",
                verdict.report.total_bytes as f64 / wall.max(1e-9),
            )
            .opt_u64("peak_rss_bytes", uc_bench::peak_rss_bytes())
            .write_to(&path)
            .expect("write bench json");
        eprintln!("wrote benchmark record to {path}");
    }

    std::process::exit(if verdict.report.violations.is_empty() {
        0
    } else {
        1
    });
}
