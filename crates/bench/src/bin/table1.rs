//! Regenerates Table I: measured device envelopes.
//!
//! Usage: `cargo run --release -p uc-bench --bin table1 [--scale <mult>]`
//! (`UC_SCALE` is the environment fallback)

use uc_bench::roster_from_args;
use uc_core::experiments::table1;
use uc_core::report::render_table1;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let roster = roster_from_args(&args);
    println!(
        "Devices at simulation scale: SSD {} GiB, ESSDs {} GiB (paper: 1 TB / 2 TB)\n",
        roster.ssd_capacity() >> 30,
        roster.essd_capacity() >> 30
    );
    match table1::run(&roster) {
        Ok(rows) => print!("{}", render_table1(&rows)),
        Err(e) => {
            eprintln!("table1 failed: {e}");
            std::process::exit(1);
        }
    }
    println!(
        "\nPaper reference: ESSD-1 ~3.0 GB/s / 25.6K IOPS / 2 TB; \
         ESSD-2 ~1.1 GB/s / 100K IOPS / 2 TB; SSD 3.5/2.7 GB/s seq R/W / 500K IOPS."
    );
}
