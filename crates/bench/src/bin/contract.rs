//! Runs every experiment and checks the full unwritten contract, printing
//! the four observation verdicts with evidence.
//!
//! Usage: `cargo run --release -p uc-bench --bin contract [--quick]`

use uc_core::contract::{check_all, ContractInputs};
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::{
    fig2, fig3, fig4, fig5, Fig2Config, Fig3Config, Fig4Config, Fig5Config,
};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let roster = DeviceRoster::scaled_default();
    let (f2, f3, f4, f5) = if quick {
        (
            Fig2Config::quick(),
            Fig3Config::quick(),
            Fig4Config::quick(),
            Fig5Config::quick(),
        )
    } else {
        (
            Fig2Config::paper(),
            Fig3Config::paper(),
            Fig4Config::paper(),
            Fig5Config::paper(),
        )
    };

    eprintln!("fig2 (latency grids)…");
    let fig2_ssd = fig2::run(&roster, DeviceKind::LocalSsd, &f2).expect("fig2 ssd");
    let fig2_essds = vec![
        fig2::run(&roster, DeviceKind::Essd1, &f2).expect("fig2 essd1"),
        fig2::run(&roster, DeviceKind::Essd2, &f2).expect("fig2 essd2"),
    ];
    eprintln!("fig3 (GC endurance)…");
    let fig3_all: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&k| fig3::run(&roster, k, &f3).expect("fig3"))
        .collect();
    eprintln!("fig4 (write-pattern sweep)…");
    let fig4_all: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&k| fig4::run(&roster, k, &f4).expect("fig4"))
        .collect();
    eprintln!("fig5 (mix sweep)…");
    let fig5_ssd = fig5::run(&roster, DeviceKind::LocalSsd, &f5).expect("fig5 ssd");
    let fig5_essds = vec![
        fig5::run(&roster, DeviceKind::Essd1, &f5).expect("fig5 essd1"),
        fig5::run(&roster, DeviceKind::Essd2, &f5).expect("fig5 essd2"),
    ];

    let report = check_all(&ContractInputs {
        fig2_ssd,
        fig2_essds,
        fig3: fig3_all,
        fig4: fig4_all,
        fig5_ssd,
        fig5_essds,
    });
    println!("{report}");
    std::process::exit(if report.all_hold() { 0 } else { 1 });
}
