//! Runs every experiment and checks the full unwritten contract, printing
//! the four observation verdicts with evidence.
//!
//! Usage: `cargo run --release -p uc-bench --bin contract [--quick]
//! [--scale <mult>]`
//!
//! * `--quick` — reduced cell sizes (seconds instead of tens of seconds).
//! * `--scale <mult>` — multiply every device capacity by `mult`
//!   (`UC_SCALE` is the environment fallback); `--scale 1024` reproduces
//!   the paper's TB-scale geometry. Runtime grows with the scale.
//! * `UC_THREADS=<n>` — cap the experiment executor's worker threads
//!   (defaults to one per core; `UC_THREADS=1` forces sequential runs,
//!   which produce byte-identical reports).

use uc_bench::roster_from_args;
use uc_core::contract::{check_all, ContractInputs};
use uc_core::devices::DeviceKind;
use uc_core::experiments::{
    fig2, fig3, fig4, fig5, Executor, Fig2Config, Fig3Config, Fig4Config, Fig5Config,
};

/// Segments each fig3 endurance timeline is sliced into (per device), so
/// the executor can pipeline one device's run across workers instead of
/// serializing behind it.
const FIG3_SEGMENTS: usize = 8;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exec = Executor::from_env();
    let roster = roster_from_args(&args);
    eprintln!(
        "roster: {} GiB SSD / {} GiB ESSDs (scale {}x), {} executor thread(s)",
        roster.ssd_capacity() >> 30,
        roster.essd_capacity() >> 30,
        roster.scale(),
        exec.threads(),
    );
    let (f2, f3, f4, f5) = if quick {
        (
            Fig2Config::quick(),
            Fig3Config::quick(),
            Fig4Config::quick(),
            Fig5Config::quick(),
        )
    } else {
        (
            Fig2Config::paper(),
            Fig3Config::paper(),
            Fig4Config::paper(),
            Fig5Config::paper(),
        )
    };

    eprintln!("fig2 (latency grids)…");
    let fig2_ssd = fig2::run_with(&roster, DeviceKind::LocalSsd, &f2, &exec).expect("fig2 ssd");
    let fig2_essds = vec![
        fig2::run_with(&roster, DeviceKind::Essd1, &f2, &exec).expect("fig2 essd1"),
        fig2::run_with(&roster, DeviceKind::Essd2, &f2, &exec).expect("fig2 essd2"),
    ];
    eprintln!("fig3 (GC endurance)…");
    // Each device's endurance run is one continuous virtual timeline,
    // sliced into resumable checkpoint segments and pipelined across the
    // workers (byte-identical to unsliced runs at any thread count).
    let fig3_all =
        fig3::run_pipelined(&roster, &DeviceKind::ALL, &f3, FIG3_SEGMENTS, &exec).expect("fig3");
    eprintln!("fig4 (write-pattern sweep)…");
    let fig4_all: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&k| fig4::run_with(&roster, k, &f4, &exec).expect("fig4"))
        .collect();
    eprintln!("fig5 (mix sweep)…");
    let fig5_ssd = fig5::run_with(&roster, DeviceKind::LocalSsd, &f5, &exec).expect("fig5 ssd");
    let fig5_essds = vec![
        fig5::run_with(&roster, DeviceKind::Essd1, &f5, &exec).expect("fig5 essd1"),
        fig5::run_with(&roster, DeviceKind::Essd2, &f5, &exec).expect("fig5 essd2"),
    ];

    let report = check_all(&ContractInputs {
        fig2_ssd,
        fig2_essds,
        fig3: fig3_all,
        fig4: fig4_all,
        fig5_ssd,
        fig5_essds,
    });
    println!("{report}");
    std::process::exit(if report.all_hold() { 0 } else { 1 });
}
