//! Runs every experiment and checks the full unwritten contract, printing
//! the four observation verdicts with evidence.
//!
//! Usage: `cargo run --release -p uc-bench --bin contract [--quick]
//! [--scale <mult>]`
//!
//! * `--quick` — reduced cell sizes (seconds instead of tens of seconds).
//! * `--scale <mult>` — multiply every device capacity by `mult`
//!   (`UC_SCALE` is the environment fallback); `--scale 1024` reproduces
//!   the paper's TB-scale geometry. Runtime grows with the scale.
//! * `UC_THREADS=<n>` — cap the experiment executor's worker threads
//!   (defaults to one per core; `UC_THREADS=1` forces sequential runs,
//!   which produce byte-identical reports).

use uc_core::contract::{check_all, ContractInputs};
use uc_core::devices::{DeviceKind, DeviceRoster};
use uc_core::experiments::{
    fig2, fig3, fig4, fig5, Executor, Fig2Config, Fig3Config, Fig4Config, Fig5Config,
};

/// Reads `--scale <mult>` from `args`, falling back to the `UC_SCALE`
/// environment variable, defaulting to 1.
fn scale_from(args: &[String]) -> u64 {
    let from_flag = args.iter().position(|a| a == "--scale").map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--scale expects a value"));
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("--scale expects a positive integer, got {v:?}"))
    });
    let scale = from_flag.or_else(|| {
        std::env::var("UC_SCALE").ok().map(|v| {
            v.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("UC_SCALE expects a positive integer, got {v:?}"))
        })
    });
    let scale = scale.unwrap_or(1);
    assert!(scale > 0, "scale multiplier must be positive");
    scale
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = scale_from(&args);
    let exec = Executor::from_env();
    let roster = DeviceRoster::scaled_default().with_scale(scale);
    eprintln!(
        "roster: {} GiB SSD / {} GiB ESSDs (scale {}x), {} executor thread(s)",
        roster.ssd_capacity() >> 30,
        roster.essd_capacity() >> 30,
        roster.scale(),
        exec.threads(),
    );
    let (f2, f3, f4, f5) = if quick {
        (
            Fig2Config::quick(),
            Fig3Config::quick(),
            Fig4Config::quick(),
            Fig5Config::quick(),
        )
    } else {
        (
            Fig2Config::paper(),
            Fig3Config::paper(),
            Fig4Config::paper(),
            Fig5Config::paper(),
        )
    };

    eprintln!("fig2 (latency grids)…");
    let fig2_ssd = fig2::run_with(&roster, DeviceKind::LocalSsd, &f2, &exec).expect("fig2 ssd");
    let fig2_essds = vec![
        fig2::run_with(&roster, DeviceKind::Essd1, &f2, &exec).expect("fig2 essd1"),
        fig2::run_with(&roster, DeviceKind::Essd2, &f2, &exec).expect("fig2 essd2"),
    ];
    eprintln!("fig3 (GC endurance)…");
    // fig3 is one continuous endurance run per device: fan the three
    // devices out as whole cells.
    let fig3_all: Vec<_> = exec
        .run(
            DeviceKind::ALL
                .iter()
                .map(|&k| {
                    let roster = &roster;
                    let f3 = &f3;
                    move || fig3::run(roster, k, f3).expect("fig3")
                })
                .collect(),
        )
        .into_iter()
        .collect();
    eprintln!("fig4 (write-pattern sweep)…");
    let fig4_all: Vec<_> = DeviceKind::ALL
        .iter()
        .map(|&k| fig4::run_with(&roster, k, &f4, &exec).expect("fig4"))
        .collect();
    eprintln!("fig5 (mix sweep)…");
    let fig5_ssd = fig5::run_with(&roster, DeviceKind::LocalSsd, &f5, &exec).expect("fig5 ssd");
    let fig5_essds = vec![
        fig5::run_with(&roster, DeviceKind::Essd1, &f5, &exec).expect("fig5 essd1"),
        fig5::run_with(&roster, DeviceKind::Essd2, &f5, &exec).expect("fig5 essd2"),
    ];

    let report = check_all(&ContractInputs {
        fig2_ssd,
        fig2_essds,
        fig3: fig3_all,
        fig4: fig4_all,
        fig5_ssd,
        fig5_essds,
    });
    println!("{report}");
    std::process::exit(if report.all_hold() { 0 } else { 1 });
}
