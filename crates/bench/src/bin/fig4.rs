//! Regenerates Figure 4: random- vs sequential-write throughput and the
//! random/sequential gain across I/O sizes and queue depths.
//!
//! Usage: `cargo run --release -p uc-bench --bin fig4 [--quick]
//! [--scale <mult>]` (`UC_SCALE` is the environment fallback)

use uc_bench::roster_from_args;
use uc_core::devices::DeviceKind;
use uc_core::experiments::fig4::{self, Fig4Config};
use uc_core::report::render_fig4;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let cfg = if quick {
        Fig4Config::quick()
    } else {
        Fig4Config::paper()
    };
    let roster = roster_from_args(&args);
    for kind in DeviceKind::ALL {
        eprintln!("sweeping {kind}…");
        let r = fig4::run(&roster, kind, &cfg).expect("fig4 run");
        println!("{}", render_fig4(&r));
    }
    println!(
        "Paper reference shapes: ESSD-1 gain up to ~1.52x concentrated at \
         high QD / small-mid sizes; ESSD-2 gain up to ~2.79x across a wide \
         size range; SSD gain ~1x (pre-GC)."
    );
}
