//! Benchmark harness for the Unwritten Contract reproduction.
//!
//! This crate hosts:
//!
//! * **figure/table binaries** (`src/bin/`): `table1`, `fig2`, `fig3`,
//!   `fig4`, `fig5`, `contract`, and `trace` — each regenerates one
//!   artifact of the paper (or, for `trace`, the trace-driven per-phase
//!   contract report) and prints the same rows/series the paper reports.
//!   Grid experiments fan their cells out across every core
//!   (`UC_THREADS` overrides; reports are byte-identical at any width),
//!   and every binary takes `--scale <mult>` / `UC_SCALE` to grow the
//!   roster toward the paper's TB-scale capacities,
//! * **criterion benches** (`benches/`): `fig2_latency`, `fig3_gc`,
//!   `fig4_pattern`, `fig5_budget` measure the cost of the experiments, and
//!   `ablations` measures the design choices called out in DESIGN.md (GC
//!   policy, replication factor, chunk size).

#![forbid(unsafe_code)]

pub use uc_core::devices::{DeviceKind, DeviceRoster};

/// Reads `--scale <mult>` from `args`, falling back to the `UC_SCALE`
/// environment variable, defaulting to 1.
///
/// Shared by every figure/table binary (`--scale 1024` reproduces the
/// paper's TB-scale geometry on any of them).
///
/// # Panics
///
/// Panics if the flag or variable is present but not a positive integer.
pub fn scale_from_args(args: &[String]) -> u64 {
    let from_flag = args.iter().position(|a| a == "--scale").map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--scale expects a value"));
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("--scale expects a positive integer, got {v:?}"))
    });
    let scale = from_flag.or_else(|| {
        std::env::var("UC_SCALE").ok().map(|v| {
            v.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("UC_SCALE expects a positive integer, got {v:?}"))
        })
    });
    let scale = scale.unwrap_or(1);
    assert!(scale > 0, "scale multiplier must be positive");
    scale
}

/// The roster every binary measures: the paper's geometry at the scale the
/// command line (or `UC_SCALE`) selects.
pub fn roster_from_args(args: &[String]) -> DeviceRoster {
    DeviceRoster::scaled_default().with_scale(scale_from_args(args))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scale_flag_parses_and_defaults() {
        assert_eq!(scale_from_args(&args(&["bin"])), 1);
        assert_eq!(scale_from_args(&args(&["bin", "--scale", "8"])), 8);
        assert_eq!(
            roster_from_args(&args(&["bin", "--scale", "4"])).ssd_capacity(),
            4 * DeviceRoster::scaled_default().ssd_capacity()
        );
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn scale_flag_rejects_garbage() {
        let _ = scale_from_args(&args(&["bin", "--scale", "huge"]));
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn scale_flag_requires_value() {
        let _ = scale_from_args(&args(&["bin", "--scale"]));
    }
}
