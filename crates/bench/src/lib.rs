//! Benchmark harness for the Unwritten Contract reproduction.
//!
//! This crate hosts:
//!
//! * **figure/table binaries** (`src/bin/`): `table1`, `fig2`, `fig3`,
//!   `fig4`, `fig5`, and `contract` — each regenerates one artifact of the
//!   paper and prints the same rows/series the paper reports. Grid
//!   experiments fan their cells out across every core (`UC_THREADS`
//!   overrides; reports are byte-identical at any width), and `contract`
//!   takes `--scale <mult>` / `UC_SCALE` to grow the roster toward the
//!   paper's TB-scale capacities,
//! * **criterion benches** (`benches/`): `fig2_latency`, `fig3_gc`,
//!   `fig4_pattern`, `fig5_budget` measure the cost of the experiments, and
//!   `ablations` measures the design choices called out in DESIGN.md (GC
//!   policy, replication factor, chunk size).

#![forbid(unsafe_code)]

pub use uc_core::devices::{DeviceKind, DeviceRoster};
