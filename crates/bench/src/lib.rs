//! Benchmark harness for the Unwritten Contract reproduction.
//!
//! This crate hosts:
//!
//! * **figure/table binaries** (`src/bin/`): `table1`, `fig2`, `fig3`,
//!   `fig4`, `fig5`, `contract`, and `trace` — each regenerates one
//!   artifact of the paper (or, for `trace`, the trace-driven per-phase
//!   contract report) and prints the same rows/series the paper reports.
//!   Grid experiments fan their cells out across every core
//!   (`UC_THREADS` overrides; reports are byte-identical at any width),
//!   and every binary takes `--scale <mult>` / `UC_SCALE` to grow the
//!   roster toward the paper's TB-scale capacities,
//! * **criterion benches** (`benches/`): `fig2_latency`, `fig3_gc`,
//!   `fig4_pattern`, `fig5_budget` measure the cost of the experiments, and
//!   `ablations` measures the design choices called out in DESIGN.md (GC
//!   policy, replication factor, chunk size).

#![forbid(unsafe_code)]

pub use uc_core::devices::{DeviceKind, DeviceRoster};

/// Reads `--scale <mult>` from `args`, falling back to the `UC_SCALE`
/// environment variable, defaulting to 1.
///
/// Shared by every figure/table binary (`--scale 1024` reproduces the
/// paper's TB-scale geometry on any of them).
///
/// # Panics
///
/// Panics if the flag or variable is present but not a positive integer.
pub fn scale_from_args(args: &[String]) -> u64 {
    let from_flag = args.iter().position(|a| a == "--scale").map(|i| {
        let v = args
            .get(i + 1)
            .unwrap_or_else(|| panic!("--scale expects a value"));
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("--scale expects a positive integer, got {v:?}"))
    });
    let scale = from_flag.or_else(|| {
        std::env::var("UC_SCALE").ok().map(|v| {
            v.trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("UC_SCALE expects a positive integer, got {v:?}"))
        })
    });
    let scale = scale.unwrap_or(1);
    assert!(scale > 0, "scale multiplier must be positive");
    scale
}

/// The roster every binary measures: the paper's geometry at the scale the
/// command line (or `UC_SCALE`) selects.
pub fn roster_from_args(args: &[String]) -> DeviceRoster {
    DeviceRoster::scaled_default().with_scale(scale_from_args(args))
}

/// The synthetic trace for a named arrival shape, sized to `span` bytes
/// of offsets and seeded deterministically.
///
/// Shared between the `trace` binary (local and `--remote` replay) and
/// the `serve` binary's in-process mode, so a networked client and the
/// loopback-determinism baseline generate the *same* trace from the same
/// `(shape, quick, span, seed)` tuple.
///
/// # Panics
///
/// Panics if `shape` is not `bursty`, `steady`, or `diurnal`.
pub fn generated_trace(shape: &str, quick: bool, span: u64, seed: u64) -> uc_trace::Trace {
    use uc_sim::SimDuration;
    let duration = if quick {
        SimDuration::from_millis(100)
    } else {
        SimDuration::from_secs(1)
    };
    let spec = match shape {
        "bursty" => uc_trace::TraceSpec::bursty(
            SimDuration::from_millis(2),
            SimDuration::from_millis(6),
            40_000.0,
        ),
        "steady" => uc_trace::TraceSpec::steady(10_000.0),
        "diurnal" => uc_trace::TraceSpec::diurnal(2_000.0, 30_000.0, duration),
        other => panic!("--shape expects bursty|steady|diurnal, got {other:?}"),
    };
    spec.with_duration(duration)
        .with_io_size(64 << 10)
        .with_write_ratio(0.8)
        .with_span(span)
        .with_seed(seed)
        .generate()
}

/// The process's peak resident set size in bytes, if the platform
/// exposes it (`VmHWM` in `/proc/self/status` on Linux; `None`
/// elsewhere).
///
/// Benchmark binaries record this next to their wall-clock numbers so a
/// perf regression that trades time for memory is still visible in the
/// uploaded artifacts.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// A flat machine-readable benchmark record, hand-rolled (this workspace
/// carries no JSON dependency): one object per file, insertion-ordered
/// keys, written atomically enough for CI artifact upload (single
/// `write`).
///
/// # Example
///
/// ```
/// let json = uc_bench::BenchJson::new("fleet")
///     .u64("tenants", 256)
///     .f64("wall_seconds", 1.25)
///     .str("mode", "rebalance");
/// assert_eq!(
///     json.render(),
///     r#"{"bench":"fleet","tenants":256,"wall_seconds":1.25,"mode":"rebalance"}"#
/// );
/// ```
#[derive(Debug, Clone)]
pub struct BenchJson {
    fields: Vec<(String, String)>,
}

impl BenchJson {
    /// A record identifying the benchmark `name` (always the first key).
    pub fn new(name: &str) -> Self {
        let mut json = BenchJson { fields: Vec::new() };
        json.push_str("bench", name);
        json
    }

    fn push_raw(&mut self, key: &str, rendered: String) {
        self.fields.push((Self::escape(key), rendered));
    }

    fn push_str(&mut self, key: &str, value: &str) {
        self.push_raw(key, format!("\"{}\"", Self::escape(value)));
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                '\r' => out.push_str("\\r"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Appends an unsigned-integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.push_raw(key, value.to_string());
        self
    }

    /// Appends a floating-point field (non-finite values become `null` —
    /// JSON has no NaN).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        let rendered = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_string()
        };
        self.push_raw(key, rendered);
        self
    }

    /// Appends a string field (escaped).
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.push_str(key, value);
        self
    }

    /// Appends an optional unsigned-integer field (`None` becomes
    /// `null`, keeping the key set stable across platforms).
    pub fn opt_u64(mut self, key: &str, value: Option<u64>) -> Self {
        let rendered = match value {
            Some(v) => v.to_string(),
            None => "null".to_string(),
        };
        self.push_raw(key, rendered);
        self
    }

    /// The rendered single-line JSON object.
    pub fn render(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{key}\":{value}"));
        }
        out.push('}');
        out
    }

    /// Writes the record (plus a trailing newline) to `path`.
    ///
    /// # Errors
    ///
    /// Propagates the filesystem error.
    pub fn write_to(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.render() + "\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn scale_flag_parses_and_defaults() {
        assert_eq!(scale_from_args(&args(&["bin"])), 1);
        assert_eq!(scale_from_args(&args(&["bin", "--scale", "8"])), 8);
        assert_eq!(
            roster_from_args(&args(&["bin", "--scale", "4"])).ssd_capacity(),
            4 * DeviceRoster::scaled_default().ssd_capacity()
        );
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn scale_flag_rejects_garbage() {
        let _ = scale_from_args(&args(&["bin", "--scale", "huge"]));
    }

    #[test]
    #[should_panic(expected = "expects a value")]
    fn scale_flag_requires_value() {
        let _ = scale_from_args(&args(&["bin", "--scale"]));
    }

    #[test]
    fn opt_u64_renders_null_for_none() {
        let json = BenchJson::new("x")
            .opt_u64("present", Some(9))
            .opt_u64("absent", None);
        assert_eq!(json.render(), r#"{"bench":"x","present":9,"absent":null}"#);
    }

    #[test]
    fn generated_trace_is_deterministic_per_seed() {
        let a = generated_trace("steady", true, 1 << 30, 42);
        let b = generated_trace("steady", true, 1 << 30, 42);
        let c = generated_trace("steady", true, 1 << 30, 43);
        assert_eq!(a.entries(), b.entries());
        assert_ne!(a.entries(), c.entries());
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn peak_rss_is_positive_on_linux() {
        assert!(peak_rss_bytes().unwrap() > 0);
    }

    #[test]
    fn bench_json_renders_and_escapes() {
        let json = BenchJson::new("fig3")
            .u64("devices", 3)
            .f64("gbps", 2.5)
            .f64("bad", f64::NAN)
            .str("note", "a \"quoted\"\nline");
        assert_eq!(
            json.render(),
            r#"{"bench":"fig3","devices":3,"gbps":2.5,"bad":null,"note":"a \"quoted\"\nline"}"#
        );
    }
}
