//! SSD device configuration and profiles.

use uc_flash::{FlashGeometry, FlashTiming};
use uc_ftl::{FtlConfig, GcPolicy};
use uc_sim::{LatencyDist, SimDuration};

/// Parameters of an [`Ssd`](crate::Ssd).
///
/// Use [`SsdConfig::samsung_970_pro`] for the paper's local-SSD baseline,
/// or build a custom device with [`SsdConfig::custom`] plus the `with_*`
/// methods.
///
/// # Example
///
/// ```
/// use uc_ssd::SsdConfig;
///
/// let cfg = SsdConfig::samsung_970_pro(4 << 30);
/// assert_eq!(cfg.name, "Samsung 970 Pro (scaled)");
/// assert!(cfg.ftl.logical_capacity() >= 4 << 30);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SsdConfig {
    /// Human-readable device name.
    pub name: String,
    /// FTL and flash-array parameters.
    pub ftl: FtlConfig,
    /// Per-command firmware processing time (serialized across commands).
    pub firmware_per_cmd: LatencyDist,
    /// Host DMA bandwidth in bytes/second, per direction (full duplex).
    pub host_bus_bytes_per_sec: f64,
    /// Write-buffer capacity in bytes.
    pub write_buffer_bytes: u64,
    /// Extra latency of a DRAM buffer insert/lookup.
    pub buffer_latency: SimDuration,
    /// Sequential streak length that arms the prefetcher.
    pub prefetch_trigger: u32,
    /// Pages read ahead once the prefetcher is armed (0 disables it).
    pub prefetch_window_pages: u32,
}

impl SsdConfig {
    /// A blank device around the given FTL configuration, with neutral
    /// host-side costs. Intended as the base for `with_*` customization.
    pub fn custom(name: impl Into<String>, ftl: FtlConfig) -> Self {
        SsdConfig {
            name: name.into(),
            ftl,
            firmware_per_cmd: LatencyDist::constant(SimDuration::from_micros(2)),
            host_bus_bytes_per_sec: 3.0e9,
            write_buffer_bytes: 64 << 20,
            buffer_latency: SimDuration::from_micros(5),
            prefetch_trigger: 2,
            prefetch_window_pages: 64,
        }
    }

    /// The paper's local-SSD baseline: a Samsung 970 Pro-class consumer
    /// NVMe drive, scaled to `capacity` bytes.
    ///
    /// Calibration targets (device datasheet / paper Table I):
    /// * sequential read ≈ 3.5 GB/s, sequential write ≈ 2.7 GB/s,
    /// * 4 KiB QD1 random read ≈ 50–60 µs (one NAND sense),
    /// * 4 KiB QD1 write ≈ 10 µs (DRAM write buffer),
    /// * ~500 K IOPS command ceiling (2 µs firmware pipeline),
    /// * deep GC collapse under sustained random writes (small effective
    ///   over-provisioning, greedy victim selection).
    ///
    /// The die count and channel layout match the real part; the block
    /// count is scaled so the device holds `capacity` user bytes, keeping
    /// Figure 3's x-axis (multiples of capacity) meaningful at simulation
    /// scale.
    pub fn samsung_970_pro(capacity: u64) -> Self {
        // 8 channels x 4 dies x 2 planes of 4 KiB pages; the block size and
        // block count are derived from `capacity` below.
        let (channels, dies_per_channel, planes) = (8u32, 4u32, 2u32);
        let dies = (channels * dies_per_channel) as u64;
        let page = 4096u64;
        // GC spare space beyond the user capacity (effective OP).
        let op_spare = 0.045;
        // Must match the FTL's sanitized watermarks (trigger 4 -> target 6)
        // plus the two open frontiers per die.
        let watermark_blocks = 6u64 + 2;

        // Pick the largest block size that still leaves a healthy number of
        // data blocks per die at this capacity (>= 32), so the effective GC
        // spare stays near `op_spare` (block-count rounding adds at most
        // ~2 blocks/die) even at small simulation scales.
        let logical_bytes_per_die = capacity.div_ceil(dies);
        let pages_per_block = [256u64, 128, 64, 32, 16]
            .into_iter()
            .find(|ppb| logical_bytes_per_die / (ppb * page) >= 32)
            .unwrap_or(16);
        let block_bytes = pages_per_block * page;
        let logical_blocks_per_die = logical_bytes_per_die.div_ceil(block_bytes);
        let data_blocks_per_die = (logical_blocks_per_die as f64 * (1.0 + op_spare)).ceil() as u64;
        let blocks_per_die = data_blocks_per_die + watermark_blocks;
        let blocks_per_plane = blocks_per_die.div_ceil(planes as u64) as u32;

        let geometry = FlashGeometry::new(
            channels,
            dies_per_channel,
            planes,
            blocks_per_plane,
            pages_per_block as u32,
            page as u32,
        )
        .expect("derived geometry is valid");
        // Set the FTL's OP fraction so the logical capacity is exactly the
        // requested capacity; the spare beyond `op_spare` is the watermark
        // overhead accounted above.
        let op = 1.0 - (capacity + page) as f64 / geometry.raw_capacity() as f64;

        // Timing calibrated to datasheet bandwidth at this geometry:
        // dies x page / t gives the aggregate die bandwidth.
        let df = geometry.total_dies() as f64;
        let pf = geometry.page_size() as f64;
        let timing = FlashTiming {
            // ~3.5 GB/s aggregate read (also sets ~40 us 4K random read).
            read_page: SimDuration::from_secs_f64(df * pf / 3.5e9),
            // ~2.7 GB/s aggregate program.
            program_page: SimDuration::from_secs_f64(df * pf / 2.7e9),
            erase_block: SimDuration::from_millis(3),
            bus_ns_per_byte: 0.4, // 2.5 GB/s per channel; not the bottleneck
        };
        let ftl = FtlConfig::new(geometry, timing)
            .with_over_provisioning(op)
            .with_gc_policy(GcPolicy::Greedy);
        SsdConfig {
            name: "Samsung 970 Pro (scaled)".to_string(),
            ftl,
            firmware_per_cmd: LatencyDist::normal(
                SimDuration::from_micros(2),
                SimDuration::from_nanos(200),
            )
            .with_tail(
                LatencyDist::uniform(SimDuration::from_micros(20), SimDuration::from_micros(60)),
                0.001,
            ),
            // PCIe 3.0 x4, full duplex: reads are die-limited (~3.5 GB/s),
            // writes drain-limited (~2.7 GB/s).
            host_bus_bytes_per_sec: 3.6e9,
            // ~1.5 % of capacity, the ballpark of real write-cache ratios;
            // scaling it with capacity keeps Figure 3's volume axis clean.
            write_buffer_bytes: (capacity / 64).clamp(2 << 20, 512 << 20),
            buffer_latency: SimDuration::from_micros(6),
            prefetch_trigger: 2,
            prefetch_window_pages: 64,
        }
    }

    /// Replaces the device name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the firmware per-command cost.
    pub fn with_firmware(mut self, dist: LatencyDist) -> Self {
        self.firmware_per_cmd = dist;
        self
    }

    /// Replaces the host bus bandwidth (bytes/second, per direction).
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not positive and finite.
    pub fn with_host_bus(mut self, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
            "host bus bandwidth must be positive"
        );
        self.host_bus_bytes_per_sec = bytes_per_sec;
        self
    }

    /// Replaces the write-buffer capacity.
    pub fn with_write_buffer(mut self, bytes: u64) -> Self {
        self.write_buffer_bytes = bytes;
        self
    }

    /// Configures the prefetcher (`window_pages == 0` disables it).
    pub fn with_prefetch(mut self, trigger: u32, window_pages: u32) -> Self {
        self.prefetch_trigger = trigger.max(1);
        self.prefetch_window_pages = window_pages;
        self
    }

    /// The host transfer time for `bytes` in one direction.
    pub fn bus_time(&self, bytes: u32) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.host_bus_bytes_per_sec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_capacity_scales() {
        for cap in [1u64 << 30, 4 << 30, 16 << 30] {
            let cfg = SsdConfig::samsung_970_pro(cap);
            assert!(
                cfg.ftl.logical_capacity() >= cap,
                "profile must offer at least the requested capacity"
            );
            assert_eq!(cfg.ftl.geometry.total_dies(), 32);
        }
    }

    #[test]
    fn profile_timing_hits_bandwidth_targets() {
        let cfg = SsdConfig::samsung_970_pro(4 << 30);
        let g = cfg.ftl.geometry;
        let read_bw =
            g.total_dies() as f64 * g.page_size() as f64 / cfg.ftl.timing.read_page.as_secs_f64();
        let write_bw = g.total_dies() as f64 * g.page_size() as f64
            / cfg.ftl.timing.program_page.as_secs_f64();
        assert!((read_bw - 3.5e9).abs() / 3.5e9 < 0.02, "read bw {read_bw}");
        assert!(
            (write_bw - 2.7e9).abs() / 2.7e9 < 0.02,
            "write bw {write_bw}"
        );
    }

    #[test]
    fn builder_methods() {
        let cfg = SsdConfig::samsung_970_pro(1 << 30)
            .with_host_bus(1e9)
            .with_write_buffer(1 << 20)
            .with_prefetch(3, 16);
        assert_eq!(cfg.host_bus_bytes_per_sec, 1e9);
        assert_eq!(cfg.write_buffer_bytes, 1 << 20);
        assert_eq!(cfg.prefetch_trigger, 3);
        assert_eq!(cfg.prefetch_window_pages, 16);
        assert_eq!(cfg.bus_time(1_000_000_000), SimDuration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bus_rejected() {
        let _ = SsdConfig::samsung_970_pro(1 << 30).with_host_bus(0.0);
    }
}
