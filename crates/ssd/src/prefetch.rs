//! Sequential readahead prefetcher.

use std::collections::HashMap;
use std::ops::Range;
use uc_sim::SimTime;

/// Detects sequential read streams and tracks readahead state.
///
/// The prefetcher is why the paper's local SSD serves *sequential* reads in
/// ~10 µs while *random* reads pay a full NAND sense (~50 µs) — the
/// asymmetry behind Observation 1's "random-read gap is smallest" finding:
/// the ESSD's fixed network overhead looms larger over operations the
/// local SSD can serve from DRAM.
///
/// The device model drives it with [`Prefetcher::observe`] (which says what
/// new page range to read ahead, if any), fills it with
/// [`Prefetcher::insert`] as background reads are scheduled, and consumes
/// hits with [`Prefetcher::take`].
///
/// # Example
///
/// ```
/// use uc_sim::SimTime;
/// use uc_ssd::Prefetcher;
///
/// let mut pf = Prefetcher::new(2, 8);
/// assert_eq!(pf.observe(0, 2), None);       // first read: no streak yet
/// let range = pf.observe(2, 2).unwrap();    // second sequential read: armed
/// assert_eq!(range, 4..12);                 // read ahead 8 pages
/// pf.insert(4, SimTime::ZERO);
/// assert!(pf.take(4).is_some());
/// assert!(pf.take(4).is_none());            // consumed
/// ```
#[derive(Debug, Clone)]
pub struct Prefetcher {
    trigger: u32,
    window: u32,
    last_end: u64,
    streak: u32,
    issued_up_to: u64,
    ready: HashMap<u64, SimTime>,
    hits: u64,
    issued: u64,
}

/// The complete serializable state of a [`Prefetcher`].
///
/// The readiness map (a hash map inside the live prefetcher) is stored
/// sorted by logical page — the canonical form — so two snapshots of
/// behaviourally identical prefetchers compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefetcherSnapshot {
    /// Sequential streak length that arms the prefetcher.
    pub trigger: u32,
    /// Pages read ahead once armed (0 disables prefetching).
    pub window: u32,
    /// End of the last observed host read (`u64::MAX` before the first).
    pub last_end: u64,
    /// Current sequential streak length.
    pub streak: u32,
    /// Highest page readahead has been issued up to.
    pub issued_up_to: u64,
    /// Outstanding readahead as `(lpn, ready instant)`, sorted by page.
    pub ready: Vec<(u64, SimTime)>,
    /// Prefetch hits served so far.
    pub hits: u64,
    /// Pages issued for readahead so far.
    pub issued: u64,
}

impl Prefetcher {
    /// A prefetcher arming after `trigger` consecutive sequential reads and
    /// reading `window_pages` ahead (0 disables prefetching).
    pub fn new(trigger: u32, window_pages: u32) -> Self {
        Prefetcher {
            trigger: trigger.max(1),
            window: window_pages,
            last_end: u64::MAX, // nothing matches before the first observe
            streak: 0,
            issued_up_to: 0,
            ready: HashMap::new(),
            hits: 0,
            issued: 0,
        }
    }

    /// Prefetch hits served so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Pages issued for readahead so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Notes a host read of `pages` pages starting at `first_lpn` and
    /// returns the page range the device should read ahead, if the stream
    /// is sequential enough.
    pub fn observe(&mut self, first_lpn: u64, pages: u64) -> Option<Range<u64>> {
        if self.window == 0 {
            return None;
        }
        if first_lpn == self.last_end {
            self.streak = self.streak.saturating_add(1);
        } else {
            // Stream broke: discard stale readahead state.
            self.streak = 1;
            self.ready.clear();
            self.issued_up_to = first_lpn + pages;
        }
        self.last_end = first_lpn + pages;
        if self.streak >= self.trigger {
            let start = self.issued_up_to.max(self.last_end);
            let end = self.last_end + self.window as u64;
            if end > start {
                self.issued_up_to = end;
                self.issued += end - start;
                return Some(start..end);
            }
        }
        None
    }

    /// Records that readahead of `lpn` will be ready at `at`.
    pub fn insert(&mut self, lpn: u64, at: SimTime) {
        self.ready.insert(lpn, at);
    }

    /// Consumes the readiness entry for `lpn`, if prefetched.
    pub fn take(&mut self, lpn: u64) -> Option<SimTime> {
        let hit = self.ready.remove(&lpn);
        if hit.is_some() {
            self.hits += 1;
        }
        hit
    }

    /// Captures the prefetcher's complete state.
    pub fn snapshot(&self) -> PrefetcherSnapshot {
        let mut ready: Vec<(u64, SimTime)> =
            self.ready.iter().map(|(&lpn, &at)| (lpn, at)).collect();
        ready.sort_unstable_by_key(|&(lpn, _)| lpn);
        PrefetcherSnapshot {
            trigger: self.trigger,
            window: self.window,
            last_end: self.last_end,
            streak: self.streak,
            issued_up_to: self.issued_up_to,
            ready,
            hits: self.hits,
            issued: self.issued,
        }
    }

    /// Rebuilds a prefetcher that continues exactly where `snapshot` was
    /// taken.
    pub fn restore(snapshot: PrefetcherSnapshot) -> Self {
        Prefetcher {
            trigger: snapshot.trigger.max(1),
            window: snapshot.window,
            last_end: snapshot.last_end,
            streak: snapshot.streak,
            issued_up_to: snapshot.issued_up_to,
            ready: snapshot.ready.into_iter().collect(),
            hits: snapshot.hits,
            issued: snapshot.issued,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_reads_never_arm() {
        let mut pf = Prefetcher::new(2, 8);
        assert_eq!(pf.observe(10, 1), None);
        assert_eq!(pf.observe(100, 1), None);
        assert_eq!(pf.observe(7, 1), None);
        assert_eq!(pf.issued(), 0);
    }

    #[test]
    fn sequential_stream_arms_and_extends() {
        let mut pf = Prefetcher::new(2, 8);
        assert_eq!(pf.observe(0, 4), None);
        assert_eq!(pf.observe(4, 4), Some(8..16));
        // Next request extends the window by exactly the consumed amount.
        assert_eq!(pf.observe(8, 4), Some(16..20));
        assert_eq!(pf.observe(12, 4), Some(20..24));
    }

    #[test]
    fn stream_break_clears_state() {
        let mut pf = Prefetcher::new(2, 8);
        pf.observe(0, 4);
        pf.observe(4, 4);
        pf.insert(8, SimTime::ZERO);
        // Jump elsewhere: stale entries must be dropped.
        assert_eq!(pf.observe(1000, 4), None);
        assert!(pf.take(8).is_none());
    }

    #[test]
    fn take_counts_hits_once() {
        let mut pf = Prefetcher::new(1, 4);
        pf.observe(0, 1);
        pf.insert(1, SimTime::ZERO);
        assert!(pf.take(1).is_some());
        assert!(pf.take(1).is_none());
        assert_eq!(pf.hits(), 1);
    }

    #[test]
    fn disabled_window_is_inert() {
        let mut pf = Prefetcher::new(1, 0);
        assert_eq!(pf.observe(0, 1), None);
        assert_eq!(pf.observe(1, 1), None);
    }

    #[test]
    fn trigger_one_arms_immediately() {
        let mut pf = Prefetcher::new(1, 4);
        assert_eq!(pf.observe(0, 2), Some(2..6));
    }

    #[test]
    fn snapshot_restore_preserves_streak_and_readahead() {
        let mut a = Prefetcher::new(2, 8);
        a.observe(0, 4);
        a.observe(4, 4);
        a.insert(8, SimTime::ZERO);
        a.insert(9, SimTime::ZERO);
        a.take(8);
        let snap = a.snapshot();
        let mut b = Prefetcher::restore(snap.clone());
        assert_eq!(b.snapshot(), snap, "round trip is lossless");
        // The armed stream keeps extending identically…
        assert_eq!(a.observe(8, 4), b.observe(8, 4));
        // …and pending readahead survives.
        assert_eq!(a.take(9), b.take(9));
        assert_eq!(a.hits(), b.hits());
        assert_eq!(a.issued(), b.issued());
    }
}
