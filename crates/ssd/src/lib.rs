//! Local flash SSD device model.
//!
//! Assembles the substrates into a device with the behaviours the paper's
//! local-SSD baseline (Samsung 970 Pro) exhibits:
//!
//! * a serialized **firmware pipeline** (per-command processing cost — the
//!   queue-depth latency knee of Figure 2),
//! * a full-duplex **host DMA link** (per-byte transfer cost — the I/O-size
//!   latency slope of Figure 2),
//! * a DRAM **write buffer** that acknowledges writes at DRAM speed while
//!   draining to flash through the FTL (why small writes are ~10 µs but
//!   sustained writes collapse when GC starts — Figure 3),
//! * a sequential **readahead prefetcher** (why sequential reads are ~10 µs
//!   but random reads pay a NAND sense — Observation 1's asymmetry),
//! * the full page-mapping FTL with garbage collection from `uc-ftl`.
//!
//! # Example
//!
//! ```
//! use uc_blockdev::{BlockDevice, IoRequest};
//! use uc_sim::SimTime;
//! use uc_ssd::{Ssd, SsdConfig};
//!
//! let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(1 << 30));
//! let done = ssd.submit(&IoRequest::write(0, 4096, SimTime::ZERO))?;
//! // A buffered 4 KiB write completes in ~10 us, not a NAND program time.
//! assert!((done - SimTime::ZERO).as_micros_f64() < 20.0);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
mod config;
mod device;
mod persist;
mod prefetch;

pub use buffer::{WriteBuffer, WriteBufferSnapshot};
pub use config::SsdConfig;
pub use device::{Ssd, SsdCheckpoint, SsdStats};
pub use prefetch::{Prefetcher, PrefetcherSnapshot};
