//! DRAM write-buffer model.

use std::collections::{HashMap, VecDeque};
use uc_sim::SimTime;

/// A FIFO ring of page slots between the host and the flash drain engine.
///
/// Writes are acknowledged once their pages are *admitted* to the buffer;
/// admission of page `k` must wait until page `k − capacity` has drained to
/// flash. This is the mechanism that makes small writes ~10 µs on an idle
/// device yet collapses sustained write throughput to the flash drain rate
/// (and, under GC, to `drain / write-amplification`) — the Figure 3
/// behaviour of the paper's local SSD.
///
/// The buffer also answers read lookups: a read of a page still resident
/// (admitted but not yet drained) is served from DRAM.
///
/// # Example
///
/// ```
/// use uc_sim::SimTime;
/// use uc_ssd::WriteBuffer;
///
/// let mut buf = WriteBuffer::new(2);
/// let (s0, a0) = buf.admit(SimTime::ZERO);
/// assert_eq!(a0, SimTime::ZERO); // room available: admitted instantly
/// buf.record_drain(s0, 7, SimTime::from_nanos(100));
/// assert!(buf.contains(7, SimTime::ZERO));
/// assert!(!buf.contains(7, SimTime::from_nanos(200))); // drained
/// ```
#[derive(Debug, Clone)]
pub struct WriteBuffer {
    capacity: usize,
    /// `ring[k % capacity]` = drain-finish time of admitted page `k`.
    ring: Vec<SimTime>,
    /// Pages admitted so far.
    admitted: u64,
    /// Resident set: logical page -> (admission sequence, drain finish).
    resident: HashMap<u64, (u64, SimTime)>,
    /// Prune queue in admission order: (drain finish, lpn, sequence).
    pending: VecDeque<(SimTime, u64, u64)>,
    hits: u64,
}

/// The complete serializable state of a [`WriteBuffer`].
///
/// The resident set (a hash map inside the live buffer) is stored sorted
/// by logical page — the canonical form — so two snapshots of
/// behaviourally identical buffers compare equal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteBufferSnapshot {
    /// Buffer capacity in page slots.
    pub capacity: usize,
    /// Drain-finish time of each ring slot (`ring[k % capacity]` for
    /// admitted page `k`).
    pub ring: Vec<SimTime>,
    /// Pages admitted so far.
    pub admitted: u64,
    /// Resident set as `(lpn, admission sequence, drain finish)`, sorted
    /// by logical page.
    pub resident: Vec<(u64, u64, SimTime)>,
    /// Prune queue in admission order: `(drain finish, lpn, sequence)`.
    pub pending: Vec<(SimTime, u64, u64)>,
    /// Read hits served so far.
    pub hits: u64,
}

impl WriteBuffer {
    /// A buffer holding `capacity_pages` page slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_pages == 0`.
    pub fn new(capacity_pages: usize) -> Self {
        assert!(capacity_pages > 0, "write buffer needs at least one page");
        WriteBuffer {
            capacity: capacity_pages,
            ring: vec![SimTime::ZERO; capacity_pages],
            admitted: 0,
            resident: HashMap::new(),
            pending: VecDeque::new(),
            hits: 0,
        }
    }

    /// Buffer capacity in pages.
    pub fn capacity_pages(&self) -> usize {
        self.capacity
    }

    /// Total pages ever admitted.
    pub fn admitted_pages(&self) -> u64 {
        self.admitted
    }

    /// Read hits served from the buffer.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Reserves the next buffer slot for a page whose host transfer
    /// finishes at `ready`.
    ///
    /// Returns `(sequence, admission time)`: the admission time is `ready`
    /// if a slot is free, otherwise the drain-finish time of the page this
    /// slot is recycled from. The caller must follow up with
    /// [`WriteBuffer::record_drain`] for the same sequence.
    pub fn admit(&mut self, ready: SimTime) -> (u64, SimTime) {
        let k = self.admitted;
        self.admitted += 1;
        let at = if k >= self.capacity as u64 {
            ready.max(self.ring[(k % self.capacity as u64) as usize])
        } else {
            ready
        };
        (k, at)
    }

    /// Records that the page admitted as `seq` holds logical page `lpn` and
    /// will finish draining to flash at `drain`.
    pub fn record_drain(&mut self, seq: u64, lpn: u64, drain: SimTime) {
        self.ring[(seq % self.capacity as u64) as usize] = drain;
        self.resident.insert(lpn, (seq, drain));
        self.pending.push_back((drain, lpn, seq));
    }

    /// `true` if `lpn` is resident (admitted, not yet drained) at `now`.
    ///
    /// Increments the hit counter on success.
    pub fn contains(&mut self, lpn: u64, now: SimTime) -> bool {
        self.prune(now);
        let hit = self
            .resident
            .get(&lpn)
            .is_some_and(|&(_, drain)| drain > now);
        if hit {
            self.hits += 1;
        }
        hit
    }

    /// Approximate resident page count at `now`.
    pub fn occupancy(&mut self, now: SimTime) -> usize {
        self.prune(now);
        self.pending.len()
    }

    /// Captures the buffer's complete state.
    pub fn snapshot(&self) -> WriteBufferSnapshot {
        let mut resident: Vec<(u64, u64, SimTime)> = self
            .resident
            .iter()
            .map(|(&lpn, &(seq, drain))| (lpn, seq, drain))
            .collect();
        resident.sort_unstable_by_key(|&(lpn, _, _)| lpn);
        WriteBufferSnapshot {
            capacity: self.capacity,
            ring: self.ring.clone(),
            admitted: self.admitted,
            resident,
            pending: self.pending.iter().copied().collect(),
            hits: self.hits,
        }
    }

    /// Rebuilds a buffer that continues exactly where `snapshot` was
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's capacity is zero or disagrees with its
    /// ring length.
    pub fn restore(snapshot: WriteBufferSnapshot) -> Self {
        assert!(
            snapshot.capacity > 0,
            "write buffer needs at least one page"
        );
        assert_eq!(
            snapshot.ring.len(),
            snapshot.capacity,
            "snapshot ring length disagrees with capacity"
        );
        WriteBuffer {
            capacity: snapshot.capacity,
            ring: snapshot.ring,
            admitted: snapshot.admitted,
            resident: snapshot
                .resident
                .into_iter()
                .map(|(lpn, seq, drain)| (lpn, (seq, drain)))
                .collect(),
            pending: snapshot.pending.into_iter().collect(),
            hits: snapshot.hits,
        }
    }

    /// Removes bookkeeping for pages that finished draining by `now`.
    fn prune(&mut self, now: SimTime) {
        while let Some(&(drain, lpn, seq)) = self.pending.front() {
            if drain > now {
                break;
            }
            self.pending.pop_front();
            // Only evict if the resident entry is the same admission (the
            // lpn may have been rewritten and now maps to a newer slot).
            if self.resident.get(&lpn).is_some_and(|&(s, _)| s == seq) {
                self.resident.remove(&lpn);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    fn t(us: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_micros(us)
    }

    #[test]
    fn admission_is_instant_until_full() {
        let mut buf = WriteBuffer::new(3);
        for _ in 0..3 {
            let (_, at) = buf.admit(t(1));
            assert_eq!(at, t(1));
        }
    }

    #[test]
    fn full_buffer_waits_for_drain() {
        let mut buf = WriteBuffer::new(2);
        let (s0, _) = buf.admit(t(0));
        buf.record_drain(s0, 0, t(100));
        let (s1, _) = buf.admit(t(0));
        buf.record_drain(s1, 1, t(200));
        // Slot 0 recycles at t=100.
        let (_, at) = buf.admit(t(1));
        assert_eq!(at, t(100));
    }

    #[test]
    fn reads_hit_resident_pages_only() {
        let mut buf = WriteBuffer::new(4);
        let (s, _) = buf.admit(t(0));
        buf.record_drain(s, 42, t(50));
        assert!(buf.contains(42, t(10)));
        assert!(!buf.contains(42, t(60)));
        assert!(!buf.contains(7, t(10)));
        assert_eq!(buf.hits(), 1);
    }

    #[test]
    fn rewrite_keeps_newer_entry_alive() {
        let mut buf = WriteBuffer::new(4);
        let (s0, _) = buf.admit(t(0));
        buf.record_drain(s0, 9, t(10));
        let (s1, _) = buf.admit(t(0));
        buf.record_drain(s1, 9, t(100));
        // Old entry drains at t=10, but the rewrite is resident until t=100.
        assert!(buf.contains(9, t(50)));
    }

    #[test]
    fn occupancy_tracks_drains() {
        let mut buf = WriteBuffer::new(8);
        for i in 0..4u64 {
            let (s, _) = buf.admit(t(0));
            buf.record_drain(s, i, t(10 * (i + 1)));
        }
        assert_eq!(buf.occupancy(t(0)), 4);
        assert_eq!(buf.occupancy(t(25)), 2);
        assert_eq!(buf.occupancy(t(100)), 0);
        assert_eq!(buf.admitted_pages(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_rejected() {
        let _ = WriteBuffer::new(0);
    }

    #[test]
    fn snapshot_restore_preserves_admission_and_residency() {
        let mut a = WriteBuffer::new(2);
        for i in 0..3u64 {
            let (s, _) = a.admit(t(i));
            a.record_drain(s, i, t(100 * (i + 1)));
        }
        let snap = a.snapshot();
        let mut b = WriteBuffer::restore(snap.clone());
        assert_eq!(b.snapshot(), snap, "round trip is lossless");
        // Admission back-pressure continues identically…
        assert_eq!(a.admit(t(5)), b.admit(t(5)));
        // …and so do residency answers and occupancy.
        assert_eq!(a.contains(2, t(150)), b.contains(2, t(150)));
        assert_eq!(a.occupancy(t(150)), b.occupancy(t(150)));
        assert_eq!(a.hits(), b.hits());
    }
}
