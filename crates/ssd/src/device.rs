//! The assembled SSD device.

use crate::{Prefetcher, PrefetcherSnapshot, SsdConfig, WriteBuffer, WriteBufferSnapshot};
use uc_blockdev::{
    BlockDevice, CheckpointDevice, CheckpointError, DeviceCheckpoint, DeviceInfo, IoKind,
    IoRequest, IoResult,
};
use uc_ftl::{Ftl, FtlCheckpoint, FtlStats};
use uc_sim::{Resource, ResourceSnapshot, RngSnapshot, SimRng, SimTime};

/// Activity counters of an [`Ssd`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SsdStats {
    /// Read requests served.
    pub reads: u64,
    /// Write requests served.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Pages served from the DRAM write buffer.
    pub buffer_hits: u64,
    /// Pages served from the readahead prefetcher.
    pub prefetch_hits: u64,
    /// Pages fetched ahead by the prefetcher.
    pub prefetch_issued: u64,
}

/// A local flash SSD.
///
/// Composes the firmware pipeline, host DMA lanes, DRAM write buffer,
/// readahead prefetcher and the page-mapping FTL into one
/// [`BlockDevice`]. See the crate docs for which paper behaviour each
/// component produces.
///
/// # Example
///
/// ```
/// use uc_blockdev::{BlockDevice, IoRequest};
/// use uc_sim::SimTime;
/// use uc_ssd::{Ssd, SsdConfig};
///
/// let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(1 << 30));
/// let w = ssd.submit(&IoRequest::write(0, 8192, SimTime::ZERO))?;
/// let r = ssd.submit(&IoRequest::read(0, 8192, w))?;
/// assert!(r > w);
/// assert_eq!(ssd.stats().writes, 1);
/// # Ok::<(), uc_blockdev::IoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Ssd {
    config: SsdConfig,
    info: DeviceInfo,
    ftl: Ftl,
    firmware: Resource,
    read_lane: Resource,
    write_lane: Resource,
    buffer: WriteBuffer,
    prefetcher: Prefetcher,
    rng: SimRng,
    stats: SsdStats,
}

/// The complete serializable state of an [`Ssd`]: the configuration plus
/// one snapshot per stateful layer (FTL and flash timelines, firmware and
/// DMA-lane resources, write buffer, prefetcher, jitter RNG, counters).
///
/// Captured by [`Ssd::snapshot`] (or type-erased through
/// [`CheckpointDevice::checkpoint`]); [`Ssd::restore`] rebuilds a device
/// that serves any subsequent request sequence with completion instants
/// identical to the original's.
#[derive(Debug, Clone, PartialEq)]
pub struct SsdCheckpoint {
    /// The configuration the device was built with.
    pub config: SsdConfig,
    /// FTL state (mapping, free blocks, GC cursor, wear, flash timelines).
    pub ftl: FtlCheckpoint,
    /// Firmware pipeline timeline.
    pub firmware: ResourceSnapshot,
    /// Host-DMA read lane timeline.
    pub read_lane: ResourceSnapshot,
    /// Host-DMA write lane timeline.
    pub write_lane: ResourceSnapshot,
    /// DRAM write-buffer state.
    pub buffer: WriteBufferSnapshot,
    /// Readahead prefetcher state.
    pub prefetcher: PrefetcherSnapshot,
    /// Firmware jitter RNG state.
    pub rng: RngSnapshot,
    /// Device activity counters.
    pub stats: SsdStats,
}

impl Ssd {
    /// Builds the device described by `config`, seeding its internal jitter
    /// stream deterministically from the configuration name.
    pub fn new(config: SsdConfig) -> Self {
        Ssd::with_seed(config, 0x55D0)
    }

    /// Builds the device with an explicit jitter seed.
    pub fn with_seed(config: SsdConfig, seed: u64) -> Self {
        let ftl = Ftl::new(config.ftl);
        let page = ftl.page_size() as u64;
        let capacity = ftl.logical_pages() * page;
        let info = DeviceInfo::new(config.name.clone(), capacity, ftl.page_size());
        let buffer_pages = (config.write_buffer_bytes / page).max(1) as usize;
        Ssd {
            buffer: WriteBuffer::new(buffer_pages),
            prefetcher: Prefetcher::new(config.prefetch_trigger, config.prefetch_window_pages),
            ftl,
            info,
            firmware: Resource::new(),
            read_lane: Resource::new(),
            write_lane: Resource::new(),
            rng: SimRng::new(seed),
            stats: SsdStats::default(),
            config,
        }
    }

    /// Device activity counters.
    pub fn stats(&self) -> SsdStats {
        self.stats
    }

    /// FTL counters (host/GC pages, write amplification).
    pub fn ftl_stats(&self) -> FtlStats {
        self.ftl.stats()
    }

    /// The device's page size in bytes.
    pub fn page_size(&self) -> u32 {
        self.ftl.page_size()
    }

    /// Immutable access to the FTL (wear, mapping state) for analysis.
    pub fn ftl(&self) -> &Ftl {
        &self.ftl
    }

    /// Captures the device's complete state as a typed checkpoint.
    pub fn snapshot(&self) -> SsdCheckpoint {
        SsdCheckpoint {
            config: self.config.clone(),
            ftl: self.ftl.checkpoint(),
            firmware: self.firmware.snapshot(),
            read_lane: self.read_lane.snapshot(),
            write_lane: self.write_lane.snapshot(),
            buffer: self.buffer.snapshot(),
            prefetcher: self.prefetcher.snapshot(),
            rng: self.rng.snapshot(),
            stats: self.stats,
        }
    }

    /// Rebuilds a device that continues exactly where `checkpoint` was
    /// taken.
    pub fn restore(checkpoint: SsdCheckpoint) -> Self {
        let ftl = Ftl::restore(checkpoint.ftl);
        let page = ftl.page_size() as u64;
        let capacity = ftl.logical_pages() * page;
        let info = DeviceInfo::new(checkpoint.config.name.clone(), capacity, ftl.page_size());
        Ssd {
            buffer: WriteBuffer::restore(checkpoint.buffer),
            prefetcher: Prefetcher::restore(checkpoint.prefetcher),
            ftl,
            info,
            firmware: Resource::restore(checkpoint.firmware),
            read_lane: Resource::restore(checkpoint.read_lane),
            write_lane: Resource::restore(checkpoint.write_lane),
            rng: SimRng::restore(checkpoint.rng),
            stats: checkpoint.stats,
            config: checkpoint.config,
        }
    }

    fn fw_acquire(&mut self, now: SimTime) -> SimTime {
        let cost = self.config.firmware_per_cmd.sample(&mut self.rng);
        self.firmware.acquire(now, cost).1
    }

    fn serve_write(&mut self, req: &IoRequest) -> SimTime {
        let page = self.ftl.page_size() as u64;
        let first = req.offset / page;
        let pages = (req.len as u64) / page;
        let per_page_bus = self.config.bus_time(page as u32);

        let t_fw = self.fw_acquire(req.submit_time);
        let mut last_admit = t_fw;
        for i in 0..pages {
            let lpn = first + i;
            // DMA the page into the staging area (serialized write lane)...
            let (_, transferred) = self.write_lane.acquire(t_fw, per_page_bus);
            // ...then claim a buffer slot (may wait for the drain engine).
            let (seq, admit) = self.buffer.admit(transferred);
            let drain = self.ftl.write_page(admit, lpn);
            self.buffer.record_drain(seq, lpn, drain);
            last_admit = last_admit.max(admit);
        }
        self.stats.writes += 1;
        self.stats.write_bytes += req.len as u64;
        last_admit + self.config.buffer_latency
    }

    fn serve_read(&mut self, req: &IoRequest) -> SimTime {
        let page = self.ftl.page_size() as u64;
        let first = req.offset / page;
        let pages = (req.len as u64) / page;
        let per_page_bus = self.config.bus_time(page as u32);
        let logical_pages = self.ftl.logical_pages();

        let t_fw = self.fw_acquire(req.submit_time);

        // Arm/extend readahead before serving, so this request benefits
        // from ranges issued by earlier requests.
        if let Some(range) = self.prefetcher.observe(first, pages) {
            for lpn in range {
                if lpn >= logical_pages {
                    break;
                }
                let ready = self.ftl.read_page(t_fw, lpn);
                self.prefetcher.insert(lpn, ready);
                self.stats.prefetch_issued += 1;
            }
        }

        let mut done = t_fw;
        for i in 0..pages {
            let lpn = first + i;
            let ready = if self.buffer.contains(lpn, t_fw) {
                self.stats.buffer_hits += 1;
                t_fw + self.config.buffer_latency
            } else if let Some(at) = self.prefetcher.take(lpn) {
                self.stats.prefetch_hits += 1;
                at.max(t_fw + self.config.buffer_latency)
            } else {
                self.ftl.read_page(t_fw, lpn)
            };
            // DMA back to the host as each page arrives (pipelined).
            let (_, transferred) = self.read_lane.acquire(ready, per_page_bus);
            done = done.max(transferred);
        }
        self.stats.reads += 1;
        self.stats.read_bytes += req.len as u64;
        done
    }
}

impl BlockDevice for Ssd {
    fn info(&self) -> DeviceInfo {
        self.info.clone()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        self.info.validate(req)?;
        let done = match req.kind {
            IoKind::Write => self.serve_write(req),
            IoKind::Read => self.serve_read(req),
        };
        Ok(done)
    }

    // `submit_batch` deliberately stays on the trait default: the default
    // body is monomorphized per impl, so batched submission is already a
    // loop of statically dispatched `submit` calls with identical
    // completion instants (asserted by `batch_submission_matches_sequential`).

    fn observe_into(&self, prefix: &str, obs: &mut uc_obs::MetricsRegistry) {
        let f = self.ftl.stats();
        let flash = self.ftl.flash_stats();
        let wear = self.ftl.wear();
        for (name, v) in [
            ("host.reads", self.stats.reads),
            ("host.writes", self.stats.writes),
            ("host.read_bytes", self.stats.read_bytes),
            ("host.write_bytes", self.stats.write_bytes),
            ("buffer.hits", self.stats.buffer_hits),
            ("prefetch.hits", self.stats.prefetch_hits),
            ("prefetch.issued", self.stats.prefetch_issued),
            ("ftl.host_pages_written", f.host_pages_written),
            ("ftl.host_pages_read", f.host_pages_read),
            ("ftl.gc_pages_relocated", f.gc_pages_relocated),
            ("ftl.gc_blocks_erased", f.gc_blocks_erased),
            ("ftl.gc_invocations", f.gc_invocations),
            ("ftl.pages_trimmed", f.pages_trimmed),
            ("ftl.map_updates", f.map_updates()),
            ("flash.reads", flash.reads),
            ("flash.programs", flash.programs),
            ("flash.erases", flash.erases),
        ] {
            let id = obs.counter(&format!("{prefix}.{name}"));
            obs.set_counter(id, v);
        }
        for (name, v) in [
            ("ftl.mapped_pages", self.ftl.mapped_pages() as i64),
            ("ftl.valid_pages", self.ftl.total_valid_pages() as i64),
            ("ftl.free_blocks", self.ftl.free_blocks() as i64),
            ("ftl.wa_milli", f.wa_milli() as i64),
            ("ftl.wear_spread", wear.spread() as i64),
        ] {
            let id = obs.gauge(&format!("{prefix}.{name}"));
            obs.set(id, v);
        }
    }
}

impl CheckpointDevice for Ssd {
    fn checkpoint(&self) -> DeviceCheckpoint {
        // `SsdCheckpoint` is a `PersistPayload`, so every checkpoint taken
        // through this seam has a durable on-disk form (`save_to`).
        DeviceCheckpoint::persistent(self.info.name(), self.snapshot())
    }

    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        checkpoint.expect_device(self.info.name())?;
        let state = checkpoint.into_state::<SsdCheckpoint>()?;
        #[cfg(feature = "strict-invariants")]
        let expected = state.clone();
        let restored = Ssd::restore(state);
        // Same name is not enough: a checkpoint from a differently-scaled
        // device must not silently shrink or grow this one.
        if restored.info != self.info {
            return Err(CheckpointError::DeviceMismatch {
                expected: format!("{} ({} B)", self.info.name(), self.info.capacity()),
                found: format!("{} ({} B)", restored.info.name(), restored.info.capacity()),
            });
        }
        // Contract hook (deep): thaw(freeze(d)) is observationally exact —
        // re-freezing the thawed device reproduces the checkpoint verbatim.
        #[cfg(feature = "strict-invariants")]
        uc_invariant::deep_enforce(|| {
            if restored.snapshot() != expected {
                return Err(uc_invariant::Violation::new(
                    "uc-ssd/Ssd",
                    "thaw-freeze-exact",
                    "re-freezing the restored device does not reproduce its checkpoint",
                ));
            }
            Ok(())
        });
        *self = restored;
        Ok(())
    }
}

// The factory contract: built devices cross thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Ssd>()
};

#[cfg(test)]
mod tests {
    use super::*;
    use uc_blockdev::IoBatch;
    use uc_sim::SimDuration;

    fn ssd() -> Ssd {
        Ssd::new(SsdConfig::samsung_970_pro(1 << 30))
    }

    #[test]
    fn batch_submission_matches_sequential() {
        let reqs: Vec<IoRequest> = (0..24u64)
            .map(|i| {
                let off = (i.wrapping_mul(2654435761) % 1024) * 4096;
                if i % 3 == 0 {
                    IoRequest::read(off, 4096, SimTime::ZERO)
                } else {
                    IoRequest::write(off, 8192, SimTime::ZERO)
                }
            })
            .collect();
        let mut sequential = ssd();
        let expected: Vec<SimTime> = reqs.iter().map(|r| sequential.submit(r).unwrap()).collect();
        let mut batched = ssd();
        let batch: IoBatch = reqs.iter().copied().collect();
        let done: Vec<SimTime> = batched
            .submit_batch(&batch)
            .unwrap()
            .iter()
            .map(|c| c.completes)
            .collect();
        assert_eq!(done, expected);
        assert_eq!(batched.stats(), sequential.stats());
    }

    fn us(d: SimDuration) -> f64 {
        d.as_micros_f64()
    }

    #[test]
    fn small_write_is_buffered_fast() {
        let mut dev = ssd();
        let done = dev
            .submit(&IoRequest::write(0, 4096, SimTime::ZERO))
            .unwrap();
        let lat = us(done - SimTime::ZERO);
        assert!(lat < 20.0, "buffered 4K write took {lat} us");
    }

    #[test]
    fn random_read_pays_nand_sense() {
        let mut dev = ssd();
        let done = dev
            .submit(&IoRequest::read(4096 * 999, 4096, SimTime::ZERO))
            .unwrap();
        let lat = us(done - SimTime::ZERO);
        assert!(
            (30.0..90.0).contains(&lat),
            "4K random read took {lat} us, expected a NAND sense"
        );
    }

    #[test]
    fn sequential_reads_become_prefetch_hits() {
        let mut dev = ssd();
        let mut now = SimTime::ZERO;
        let mut lats = Vec::new();
        for i in 0..16u64 {
            let done = dev.submit(&IoRequest::read(i * 4096, 4096, now)).unwrap();
            lats.push(us(done - now));
            now = done;
        }
        // After warmup the stream is served from readahead at ~bus speed.
        let warm = &lats[4..];
        let avg = warm.iter().sum::<f64>() / warm.len() as f64;
        assert!(avg < 15.0, "warm sequential reads averaged {avg} us");
        assert!(dev.stats().prefetch_hits > 8);
    }

    #[test]
    fn read_after_write_hits_buffer() {
        let mut dev = ssd();
        let w = dev
            .submit(&IoRequest::write(8192, 4096, SimTime::ZERO))
            .unwrap();
        let r = dev.submit(&IoRequest::read(8192, 4096, w)).unwrap();
        assert!(dev.stats().buffer_hits >= 1);
        assert!(us(r - w) < 20.0, "buffered read took {} us", us(r - w));
    }

    #[test]
    fn firmware_serializes_at_depth() {
        // Submit a burst of 16 4K writes at t=0; the last completion should
        // reflect ~16 firmware slots (~2 us each), like the paper's QD16 row.
        let mut dev = ssd();
        let mut last = SimTime::ZERO;
        for i in 0..16u64 {
            let done = dev
                .submit(&IoRequest::write(i * 4096, 4096, SimTime::ZERO))
                .unwrap();
            last = last.max(done);
        }
        let lat = us(last - SimTime::ZERO);
        assert!((25.0..80.0).contains(&lat), "QD16 burst tail was {lat} us");
    }

    #[test]
    fn large_write_costs_transfer_time() {
        let mut dev = ssd();
        let done = dev
            .submit(&IoRequest::write(0, 256 * 1024, SimTime::ZERO))
            .unwrap();
        let lat = us(done - SimTime::ZERO);
        // 256 KiB at 2.8 GB/s is ~94 us of DMA.
        assert!((80.0..200.0).contains(&lat), "256K write took {lat} us");
    }

    #[test]
    fn validation_errors_propagate() {
        let mut dev = ssd();
        assert!(dev
            .submit(&IoRequest::read(1, 4096, SimTime::ZERO))
            .is_err());
        assert!(dev
            .submit(&IoRequest::read(dev.info().capacity(), 4096, SimTime::ZERO))
            .is_err());
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = ssd();
        dev.submit(&IoRequest::write(0, 8192, SimTime::ZERO))
            .unwrap();
        dev.submit(&IoRequest::read(0, 4096, SimTime::ZERO))
            .unwrap();
        let s = dev.stats();
        assert_eq!(s.writes, 1);
        assert_eq!(s.reads, 1);
        assert_eq!(s.write_bytes, 8192);
        assert_eq!(s.read_bytes, 4096);
        assert_eq!(dev.ftl_stats().host_pages_written, 2);
    }

    #[test]
    fn checkpoint_restore_continues_identically() {
        // Drive mixed traffic to a midpoint, checkpoint, restore onto a
        // fresh device, and verify both serve the same remaining requests
        // with identical completion instants and counters.
        let mut a = ssd();
        let mut now = SimTime::ZERO;
        let mut state = 11u64;
        let next_req = |state: &mut u64, now: SimTime| {
            *state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (*state % 2048) * 4096;
            if (*state).is_multiple_of(3) {
                IoRequest::read(off, 4096, now)
            } else {
                IoRequest::write(off, 8192, now)
            }
        };
        for _ in 0..64 {
            now = a.submit(&next_req(&mut state, now)).unwrap();
        }
        let cp = CheckpointDevice::checkpoint(&a);
        let mut b = ssd();
        b.restore_from(cp).unwrap();
        assert_eq!(b.snapshot(), a.snapshot(), "restore is lossless");
        let mut now_b = now;
        let mut state_b = state;
        for _ in 0..64 {
            let done_a = a.submit(&next_req(&mut state, now)).unwrap();
            let done_b = b.submit(&next_req(&mut state_b, now_b)).unwrap();
            assert_eq!(done_a, done_b);
            now = done_a;
            now_b = done_b;
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.ftl_stats(), b.ftl_stats());
    }

    #[test]
    fn checkpoint_rejects_wrong_device() {
        let cp = CheckpointDevice::checkpoint(&ssd());
        let mut other = Ssd::new(SsdConfig::samsung_970_pro(1 << 30).with_name("other"));
        assert!(matches!(
            other.restore_from(cp),
            Err(CheckpointError::DeviceMismatch { .. })
        ));
    }

    #[test]
    fn sustained_random_writes_slow_to_drain_rate() {
        // Shrink the buffer so drain pressure appears quickly.
        let cfg = SsdConfig::samsung_970_pro(1 << 30).with_write_buffer(1 << 20);
        let mut dev = Ssd::new(cfg);
        let cap = dev.info().capacity();
        let io = 64 * 1024u32;
        let mut now = SimTime::ZERO;
        let mut state = 7u64;
        let slots = cap / io as u64;
        // Push 2x the buffer size through and watch latency rise to ~drain.
        let mut first = SimDuration::ZERO;
        let mut last = SimDuration::ZERO;
        for i in 0..64 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (state % slots) * io as u64;
            let done = dev.submit(&IoRequest::write(off, io, now)).unwrap();
            if i == 0 {
                first = done - now;
            }
            last = done - now;
            now = done;
        }
        assert!(
            last > first,
            "back-pressure should raise write latency ({} -> {})",
            first,
            last
        );
    }
}
