//! [`Persist`] codecs for the local-SSD checkpoint types.
//!
//! [`SsdCheckpoint`] is a [`PersistPayload`], so an `Ssd`'s type-erased
//! [`DeviceCheckpoint`](uc_blockdev::DeviceCheckpoint) can be saved to
//! and loaded from disk under the stable record tag
//! [`SsdCheckpoint::KIND`].

use crate::{PrefetcherSnapshot, SsdCheckpoint, SsdConfig, SsdStats, WriteBufferSnapshot};
use uc_blockdev::PersistPayload;
use uc_ftl::FtlCheckpoint;
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{LatencyDist, ResourceSnapshot, RngSnapshot, SimDuration, SimTime};

impl Persist for SsdConfig {
    fn encode(&self, w: &mut Encoder) {
        w.put_str(&self.name);
        self.ftl.encode(w);
        self.firmware_per_cmd.encode(w);
        w.put_f64(self.host_bus_bytes_per_sec);
        w.put_u64(self.write_buffer_bytes);
        self.buffer_latency.encode(w);
        w.put_u32(self.prefetch_trigger);
        w.put_u32(self.prefetch_window_pages);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = SsdConfig {
            name: r.get_string()?,
            ftl: uc_ftl::FtlConfig::decode(r)?,
            firmware_per_cmd: LatencyDist::decode(r)?,
            host_bus_bytes_per_sec: r.get_f64()?,
            write_buffer_bytes: r.get_u64()?,
            buffer_latency: SimDuration::decode(r)?,
            prefetch_trigger: r.get_u32()?,
            prefetch_window_pages: r.get_u32()?,
        };
        if !(config.host_bus_bytes_per_sec > 0.0 && config.host_bus_bytes_per_sec.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "SsdConfig.host_bus_bytes_per_sec",
            });
        }
        Ok(config)
    }
}

impl Persist for WriteBufferSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.capacity.encode(w);
        self.ring.encode(w);
        w.put_u64(self.admitted);
        self.resident.encode(w);
        self.pending.encode(w);
        w.put_u64(self.hits);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = WriteBufferSnapshot {
            capacity: usize::decode(r)?,
            ring: Vec::<SimTime>::decode(r)?,
            admitted: r.get_u64()?,
            resident: Vec::<(u64, u64, SimTime)>::decode(r)?,
            pending: Vec::<(SimTime, u64, u64)>::decode(r)?,
            hits: r.get_u64()?,
        };
        if snapshot.capacity == 0 || snapshot.ring.len() != snapshot.capacity {
            return Err(DecodeError::InvalidValue {
                what: "WriteBufferSnapshot.ring",
            });
        }
        Ok(snapshot)
    }
}

impl Persist for PrefetcherSnapshot {
    fn encode(&self, w: &mut Encoder) {
        w.put_u32(self.trigger);
        w.put_u32(self.window);
        w.put_u64(self.last_end);
        w.put_u32(self.streak);
        w.put_u64(self.issued_up_to);
        self.ready.encode(w);
        w.put_u64(self.hits);
        w.put_u64(self.issued);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(PrefetcherSnapshot {
            trigger: r.get_u32()?,
            window: r.get_u32()?,
            last_end: r.get_u64()?,
            streak: r.get_u32()?,
            issued_up_to: r.get_u64()?,
            ready: Vec::<(u64, SimTime)>::decode(r)?,
            hits: r.get_u64()?,
            issued: r.get_u64()?,
        })
    }
}

impl Persist for SsdStats {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.reads);
        w.put_u64(self.writes);
        w.put_u64(self.read_bytes);
        w.put_u64(self.write_bytes);
        w.put_u64(self.buffer_hits);
        w.put_u64(self.prefetch_hits);
        w.put_u64(self.prefetch_issued);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SsdStats {
            reads: r.get_u64()?,
            writes: r.get_u64()?,
            read_bytes: r.get_u64()?,
            write_bytes: r.get_u64()?,
            buffer_hits: r.get_u64()?,
            prefetch_hits: r.get_u64()?,
            prefetch_issued: r.get_u64()?,
        })
    }
}

impl Persist for SsdCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        self.ftl.encode(w);
        self.firmware.encode(w);
        self.read_lane.encode(w);
        self.write_lane.encode(w);
        self.buffer.encode(w);
        self.prefetcher.encode(w);
        self.rng.encode(w);
        self.stats.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SsdCheckpoint {
            config: SsdConfig::decode(r)?,
            ftl: FtlCheckpoint::decode(r)?,
            firmware: ResourceSnapshot::decode(r)?,
            read_lane: ResourceSnapshot::decode(r)?,
            write_lane: ResourceSnapshot::decode(r)?,
            buffer: WriteBufferSnapshot::decode(r)?,
            prefetcher: PrefetcherSnapshot::decode(r)?,
            rng: RngSnapshot::decode(r)?,
            stats: SsdStats::decode(r)?,
        })
    }
}

impl PersistPayload for SsdCheckpoint {
    const KIND: &'static str = "uc.ssd-checkpoint.v1";
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Ssd;
    use uc_blockdev::{BlockDevice, IoRequest};

    #[test]
    fn busy_ssd_checkpoint_round_trips() {
        let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
        let mut now = SimTime::ZERO;
        let mut state = 17u64;
        for _ in 0..96 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let off = (state % 2048) * 4096;
            let req = if state.is_multiple_of(3) {
                IoRequest::read(off, 4096, now)
            } else {
                IoRequest::write(off, 8192, now)
            };
            now = ssd.submit(&req).unwrap();
        }
        let checkpoint = ssd.snapshot();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = SsdCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, checkpoint);

        // The decoded checkpoint restores into a device whose future
        // schedule is identical to the original's.
        let mut restored = Ssd::restore(back);
        let req = IoRequest::write(0, 8192, now);
        assert_eq!(restored.submit(&req), ssd.submit(&req));
    }

    #[test]
    fn corrupt_buffer_ring_is_typed() {
        let mut checkpoint = Ssd::new(SsdConfig::samsung_970_pro(256 << 20)).snapshot();
        checkpoint.buffer.ring.pop();
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        assert!(matches!(
            SsdCheckpoint::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "WriteBufferSnapshot.ring"
            })
        ));
    }
}
