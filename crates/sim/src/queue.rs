//! Time-ordered event calendar.

use crate::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap of `(SimTime, T)` events with FIFO tie-breaking.
///
/// Events scheduled for the same instant pop in insertion order, which keeps
/// simulations deterministic regardless of heap internals.
///
/// # Example
///
/// ```
/// use uc_sim::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_nanos(20), "late");
/// q.push(SimTime::from_nanos(10), "early");
/// q.push(SimTime::from_nanos(10), "early-second");
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(10), "early-second")));
/// assert_eq!(q.pop(), Some((SimTime::from_nanos(20), "late")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    time: SimTime,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse so BinaryHeap (a max-heap) pops the smallest time first,
        // breaking ties by insertion sequence.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> EventQueue<T> {
    /// An empty calendar.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `item` at `time`.
    pub fn push(&mut self, time: SimTime, item: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry { time, seq, item });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|e| (e.time, e.item))
    }

    /// The time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<T> Extend<(SimTime, T)> for EventQueue<T> {
    fn extend<I: IntoIterator<Item = (SimTime, T)>>(&mut self, iter: I) {
        for (time, item) in iter {
            self.push(time, item);
        }
    }
}

impl<T> FromIterator<(SimTime, T)> for EventQueue<T> {
    fn from_iter<I: IntoIterator<Item = (SimTime, T)>>(iter: I) -> Self {
        let mut q = EventQueue::new();
        q.extend(iter);
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for t in [5u64, 3, 9, 1, 7] {
            q.push(SimTime::from_nanos(t), t);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(10);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop()).map(|(_, v)| v).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_len_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_nanos(4), ());
        q.push(SimTime::from_nanos(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(2)));
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let q: EventQueue<&str> =
            vec![(SimTime::from_nanos(2), "b"), (SimTime::from_nanos(1), "a")]
                .into_iter()
                .collect();
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(1)));
    }
}
