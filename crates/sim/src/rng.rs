//! Seedable, forkable random-number generation.
//!
//! The generator is a self-contained xoshiro256++ implementation rather than
//! a wrapper over an external crate: simulation results must be reproducible
//! bit-for-bit across library versions and platforms, and xoshiro256++ is a
//! small, well-studied generator with a fixed, portable output sequence.

/// A deterministic random-number generator for simulation use.
///
/// Every source of randomness in the workspace flows through a `SimRng`
/// seeded from a user-supplied `u64`, so any experiment can be replayed
/// exactly. Independent sub-streams (one per device, per workload, per
/// placement map…) are derived with [`SimRng::fork`], which mixes a stream
/// identifier into the parent seed so sibling streams are uncorrelated and
/// insensitive to how many draws the parent has made.
///
/// # Example
///
/// ```
/// use uc_sim::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_f64(), b.next_f64()); // same seed, same stream
///
/// let mut net = a.fork(1);
/// let mut gc = a.fork(2);
/// assert_ne!(net.next_f64(), gc.next_f64()); // independent sub-streams
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// The complete serializable state of a [`SimRng`].
///
/// Captured by [`SimRng::snapshot`] and turned back into a generator with
/// [`SimRng::restore`]; the restored generator continues the output
/// sequence exactly where the snapshot was taken. This is the bottom layer
/// of the device checkpoint machinery (`uc-blockdev`'s
/// `CheckpointDevice`): every source of randomness in a device model can
/// be frozen mid-stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngSnapshot {
    /// The seed the generator was created with.
    pub seed: u64,
    /// The four xoshiro256++ state words at the capture instant.
    pub state: [u64; 4],
}

/// SplitMix64 finalizer; used for seeding and to decorrelate forked seeds.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    ///
    /// The four 64-bit words of xoshiro state are expanded from the seed
    /// with SplitMix64, as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut s = seed;
        let mut state = [0u64; 4];
        for w in &mut state {
            s = s.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(s);
        }
        // Guard against the (astronomically unlikely) all-zero state.
        if state == [0; 4] {
            state = [0xDEAD_BEEF, 1, 2, 3];
        }
        SimRng { seed, state }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Captures the generator's complete state.
    pub fn snapshot(&self) -> RngSnapshot {
        RngSnapshot {
            seed: self.seed,
            state: self.state,
        }
    }

    /// Rebuilds a generator that continues exactly where `snapshot` was
    /// taken.
    pub fn restore(snapshot: RngSnapshot) -> Self {
        SimRng {
            seed: snapshot.seed,
            state: snapshot.state,
        }
    }

    /// Derives an independent child generator for stream `stream_id`.
    ///
    /// Forking depends only on the parent's seed and `stream_id`, never on
    /// how many values the parent has drawn, so adding a new consumer of
    /// randomness does not perturb existing streams.
    pub fn fork(&self, stream_id: u64) -> SimRng {
        SimRng::new(splitmix64(
            self.seed ^ splitmix64(stream_id.wrapping_add(1)),
        ))
    }

    /// The next raw 64-bit output (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform sample in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[low, high)`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased samples.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn range_u64(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "range_u64 requires low < high");
        let span = high - low;
        // Lemire's method with rejection to remove modulo bias.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let lo = m as u64;
            if lo >= span {
                return low + (m >> 64) as u64;
            }
            // Rejection zone: only reached with probability < span/2^64.
            let threshold = span.wrapping_neg() % span;
            if lo >= threshold {
                return low + (m >> 64) as u64;
            }
        }
    }

    /// A uniform index in `[0, len)`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "index requires a non-empty range");
        self.range_u64(0, len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }

    /// A standard-normal sample (Box–Muller transform).
    pub fn standard_normal(&mut self) -> f64 {
        // Box–Muller: u1 in (0,1], u2 in [0,1).
        let u1: f64 = 1.0 - self.next_f64();
        let u2: f64 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// A normal sample with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// A log-normal sample with the given median and shape `sigma`.
    ///
    /// The underlying normal has mean `ln(median)` and standard deviation
    /// `sigma`, so half the samples fall below `median`.
    pub fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * self.standard_normal()).exp()
    }

    /// A bounded Pareto sample in `[scale, cap]` with tail index `shape`.
    ///
    /// Used for heavy-tailed network/replica delays where a hard upper bound
    /// (hedging / timeout) exists.
    pub fn bounded_pareto(&mut self, scale: f64, shape: f64, cap: f64) -> f64 {
        let l = scale.max(f64::MIN_POSITIVE);
        let h = cap.max(l);
        let a = shape.max(1e-9);
        let u = self.next_f64().clamp(0.0, 1.0 - 1e-15);
        let la = l.powf(a);
        let ha = h.powf(a);
        // Inverse CDF of the bounded Pareto distribution.
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / a)
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn fork_is_stable_regardless_of_parent_draws() {
        let parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        for _ in 0..10 {
            parent2.next_f64();
        }
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn forked_streams_differ() {
        let parent = SimRng::new(7);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..32).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 4, "forked streams should be uncorrelated");
    }

    #[test]
    fn fork_zero_differs_from_parent() {
        let parent = SimRng::new(7);
        let mut child = parent.fork(0);
        let mut parent = parent;
        let same = (0..32)
            .filter(|_| child.next_u64() == parent.next_u64())
            .count();
        assert!(same < 4, "fork(0) must not clone the parent stream");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SimRng::new(11);
        for _ in 0..10_000 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = SimRng::new(1);
        for _ in 0..1000 {
            let v = rng.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SimRng::new(13);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[rng.range_u64(0, 8) as usize] += 1;
        }
        for (i, c) in counts.iter().enumerate() {
            let expected = n / 8;
            assert!(
                (*c as i64 - expected as i64).unsigned_abs() < (expected / 10) as u64,
                "bucket {i}: {c}"
            );
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = SimRng::new(2);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(100.0, 15.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 1.0, "mean {mean}");
        assert!((var.sqrt() - 15.0).abs() < 1.0, "std {}", var.sqrt());
    }

    #[test]
    fn lognormal_median_is_plausible() {
        let mut rng = SimRng::new(3);
        let mut samples: Vec<f64> = (0..10_001).map(|_| rng.lognormal(50.0, 0.8)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[5000];
        assert!((median - 50.0).abs() < 5.0, "median {median}");
    }

    #[test]
    fn bounded_pareto_stays_in_bounds() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            let v = rng.bounded_pareto(10.0, 1.5, 1000.0);
            assert!(
                (10.0..=1000.0 + 1e-6).contains(&v),
                "sample {v} escaped bounds"
            );
        }
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-0.5));
        assert!(rng.chance(1.5));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SimRng::new(6);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn snapshot_restore_continues_the_stream() {
        let mut a = SimRng::new(21);
        for _ in 0..17 {
            a.next_u64();
        }
        let snap = a.snapshot();
        let mut b = SimRng::restore(snap);
        assert_eq!(b.seed(), 21);
        assert_eq!(b.snapshot(), snap, "restore is lossless");
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn clone_replays_identically() {
        let mut a = SimRng::new(9);
        a.next_u64();
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
