//! Latency distributions used to model service times and jitter.

use crate::{SimDuration, SimRng};

/// A distribution over non-negative latencies.
///
/// Device models use `LatencyDist` wherever a service time is not a single
/// constant: NAND operation variation, network round-trip jitter, replica
/// tail events. All samples are clamped to be non-negative.
///
/// The [`LatencyDist::Mixture`] variant composes a common-case distribution
/// with a rare heavy tail, which is how the elastic-SSD models reproduce the
/// P99.9-vs-average separation of Figure 2 in the paper.
///
/// # Example
///
/// ```
/// use uc_sim::{LatencyDist, SimDuration, SimRng};
///
/// let dist = LatencyDist::lognormal(SimDuration::from_micros(300), 0.2)
///     .with_tail(LatencyDist::uniform(
///         SimDuration::from_millis(1),
///         SimDuration::from_millis(3),
///     ), 0.001);
/// let mut rng = SimRng::new(1);
/// let sample = dist.sample(&mut rng);
/// assert!(sample > SimDuration::ZERO);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyDist {
    /// Always the same value.
    Constant(SimDuration),
    /// Uniform over `[low, high]`.
    Uniform {
        /// Inclusive lower bound.
        low: SimDuration,
        /// Inclusive upper bound.
        high: SimDuration,
    },
    /// Normal with the given mean and standard deviation, truncated at zero.
    Normal {
        /// Mean of the untruncated normal.
        mean: SimDuration,
        /// Standard deviation of the untruncated normal.
        std_dev: SimDuration,
    },
    /// Log-normal with the given median and shape parameter.
    LogNormal {
        /// Median of the distribution (50th percentile).
        median: SimDuration,
        /// Shape (standard deviation of the underlying normal, in log space).
        sigma: f64,
    },
    /// Bounded Pareto over `[scale, cap]` with tail index `shape`.
    BoundedPareto {
        /// Minimum value (also the Pareto scale parameter).
        scale: SimDuration,
        /// Tail index; smaller values give heavier tails.
        shape: f64,
        /// Hard upper bound (e.g. a hedging timeout).
        cap: SimDuration,
    },
    /// With probability `tail_prob` sample `tail`, otherwise sample `base`.
    Mixture {
        /// Common-case distribution.
        base: Box<LatencyDist>,
        /// Rare-event distribution.
        tail: Box<LatencyDist>,
        /// Probability of drawing from `tail`, in `[0, 1]`.
        tail_prob: f64,
    },
}

impl LatencyDist {
    /// A constant latency.
    pub fn constant(value: SimDuration) -> Self {
        LatencyDist::Constant(value)
    }

    /// A uniform latency over `[low, high]`.
    pub fn uniform(low: SimDuration, high: SimDuration) -> Self {
        LatencyDist::Uniform {
            low: low.min(high),
            high: low.max(high),
        }
    }

    /// A zero-truncated normal latency.
    pub fn normal(mean: SimDuration, std_dev: SimDuration) -> Self {
        LatencyDist::Normal { mean, std_dev }
    }

    /// A log-normal latency with the given median and shape.
    pub fn lognormal(median: SimDuration, sigma: f64) -> Self {
        LatencyDist::LogNormal { median, sigma }
    }

    /// A bounded-Pareto latency over `[scale, cap]`.
    pub fn bounded_pareto(scale: SimDuration, shape: f64, cap: SimDuration) -> Self {
        LatencyDist::BoundedPareto { scale, shape, cap }
    }

    /// Wraps `self` as the common case of a mixture with the given rare tail.
    pub fn with_tail(self, tail: LatencyDist, tail_prob: f64) -> Self {
        LatencyDist::Mixture {
            base: Box::new(self),
            tail: Box::new(tail),
            tail_prob: tail_prob.clamp(0.0, 1.0),
        }
    }

    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        match self {
            LatencyDist::Constant(v) => *v,
            LatencyDist::Uniform { low, high } => {
                if low == high {
                    *low
                } else {
                    SimDuration::from_nanos(rng.range_u64(low.as_nanos(), high.as_nanos() + 1))
                }
            }
            LatencyDist::Normal { mean, std_dev } => {
                let v = rng.normal(mean.as_nanos() as f64, std_dev.as_nanos() as f64);
                SimDuration::from_nanos(v.max(0.0) as u64)
            }
            LatencyDist::LogNormal { median, sigma } => {
                let v = rng.lognormal(median.as_nanos() as f64, *sigma);
                SimDuration::from_nanos(v.max(0.0) as u64)
            }
            LatencyDist::BoundedPareto { scale, shape, cap } => {
                let v = rng.bounded_pareto(scale.as_nanos() as f64, *shape, cap.as_nanos() as f64);
                SimDuration::from_nanos(v.max(0.0) as u64)
            }
            LatencyDist::Mixture {
                base,
                tail,
                tail_prob,
            } => {
                if rng.chance(*tail_prob) {
                    tail.sample(rng)
                } else {
                    base.sample(rng)
                }
            }
        }
    }

    /// The mean of the distribution, computed analytically where possible.
    ///
    /// For [`LatencyDist::BoundedPareto`] this is the exact bounded-Pareto
    /// mean; for mixtures it is the probability-weighted mean of the parts.
    pub fn mean(&self) -> SimDuration {
        match self {
            LatencyDist::Constant(v) => *v,
            LatencyDist::Uniform { low, high } => {
                SimDuration::from_nanos((low.as_nanos() + high.as_nanos()) / 2)
            }
            LatencyDist::Normal { mean, .. } => *mean,
            LatencyDist::LogNormal { median, sigma } => {
                let m = median.as_nanos() as f64 * (sigma * sigma / 2.0).exp();
                SimDuration::from_nanos(m as u64)
            }
            LatencyDist::BoundedPareto { scale, shape, cap } => {
                let l = scale.as_nanos() as f64;
                let h = cap.as_nanos() as f64;
                let a = *shape;
                let mean = if (a - 1.0).abs() < 1e-9 {
                    // alpha == 1: mean = ln(h/l) * l*h/(h-l)
                    (h.ln() - l.ln()) * l * h / (h - l)
                } else {
                    (l.powf(a) / (1.0 - (l / h).powf(a)))
                        * (a / (a - 1.0))
                        * (1.0 / l.powf(a - 1.0) - 1.0 / h.powf(a - 1.0))
                };
                SimDuration::from_nanos(mean.max(0.0) as u64)
            }
            LatencyDist::Mixture {
                base,
                tail,
                tail_prob,
            } => {
                let b = base.mean().as_nanos() as f64;
                let t = tail.mean().as_nanos() as f64;
                SimDuration::from_nanos((b * (1.0 - tail_prob) + t * tail_prob) as u64)
            }
        }
    }
}

impl Default for LatencyDist {
    /// A zero-latency constant, the identity for latency composition.
    fn default() -> Self {
        LatencyDist::Constant(SimDuration::ZERO)
    }
}

impl From<SimDuration> for LatencyDist {
    fn from(value: SimDuration) -> Self {
        LatencyDist::Constant(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_mean(dist: &LatencyDist, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::new(seed);
        (0..n)
            .map(|_| dist.sample(&mut rng).as_nanos() as f64)
            .sum::<f64>()
            / n as f64
    }

    #[test]
    fn constant_always_same() {
        let d = LatencyDist::constant(SimDuration::from_micros(5));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), SimDuration::from_micros(5));
        }
    }

    #[test]
    fn uniform_respects_bounds_and_swapped_args() {
        let d = LatencyDist::uniform(SimDuration::from_micros(9), SimDuration::from_micros(3));
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_micros(3) && s <= SimDuration::from_micros(9));
        }
    }

    #[test]
    fn uniform_degenerate_is_constant() {
        let d = LatencyDist::uniform(SimDuration::from_micros(4), SimDuration::from_micros(4));
        let mut rng = SimRng::new(3);
        assert_eq!(d.sample(&mut rng), SimDuration::from_micros(4));
    }

    #[test]
    fn normal_is_truncated_at_zero() {
        let d = LatencyDist::normal(SimDuration::from_nanos(10), SimDuration::from_micros(1));
        let mut rng = SimRng::new(4);
        for _ in 0..1000 {
            // All samples representable (>= 0 by type); just exercise sampling.
            let _ = d.sample(&mut rng);
        }
    }

    #[test]
    fn empirical_means_track_analytic_means() {
        let cases = [
            LatencyDist::uniform(SimDuration::from_micros(2), SimDuration::from_micros(10)),
            LatencyDist::normal(SimDuration::from_micros(50), SimDuration::from_micros(5)),
            LatencyDist::lognormal(SimDuration::from_micros(100), 0.4),
            LatencyDist::bounded_pareto(
                SimDuration::from_micros(10),
                1.5,
                SimDuration::from_millis(10),
            ),
        ];
        for (i, d) in cases.iter().enumerate() {
            let analytic = d.mean().as_nanos() as f64;
            let empirical = sample_mean(d, 60_000, 100 + i as u64);
            let rel = (empirical - analytic).abs() / analytic;
            assert!(
                rel < 0.08,
                "case {i}: analytic {analytic} empirical {empirical}"
            );
        }
    }

    #[test]
    fn mixture_tail_frequency() {
        let d = LatencyDist::constant(SimDuration::from_micros(1))
            .with_tail(LatencyDist::constant(SimDuration::from_millis(1)), 0.01);
        let mut rng = SimRng::new(5);
        let n = 100_000;
        let tails = (0..n)
            .filter(|_| d.sample(&mut rng) == SimDuration::from_millis(1))
            .count();
        let frac = tails as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.003, "tail fraction {frac}");
    }

    #[test]
    fn mixture_mean_is_weighted() {
        let d = LatencyDist::constant(SimDuration::from_nanos(100))
            .with_tail(LatencyDist::constant(SimDuration::from_nanos(10_000)), 0.5);
        assert_eq!(d.mean(), SimDuration::from_nanos(5050));
    }

    #[test]
    fn from_duration_is_constant() {
        let d: LatencyDist = SimDuration::from_micros(3).into();
        assert_eq!(d, LatencyDist::constant(SimDuration::from_micros(3)));
    }
}
