//! Token-bucket rate limiting.

use crate::{SimDuration, SimTime};
use uc_invariant::{ensure, Contract, Violation};

/// A deterministic token bucket.
///
/// This is the mechanism behind the elastic SSD's *throughput budget* and
/// *IOPS budget* (Observation 4 of the paper): tokens refill at a constant
/// `rate` up to a `burst` capacity, and a request for `n` tokens is granted
/// at the earliest instant at which `n` tokens have accumulated. Grants are
/// committed in call order, so callers must invoke [`TokenBucket::reserve`]
/// with non-decreasing `now` values (the closed-loop drivers in
/// `uc-workload` guarantee this).
///
/// # Example
///
/// ```
/// use uc_sim::{SimDuration, SimTime, TokenBucket};
///
/// // 1000 tokens/s, burst of 100 tokens.
/// let mut tb = TokenBucket::new(100.0, 1000.0);
/// let g1 = tb.reserve(SimTime::ZERO, 100); // burst absorbed instantly
/// let g2 = tb.reserve(SimTime::ZERO, 100); // must wait for refill
/// assert_eq!(g1, SimTime::ZERO);
/// assert_eq!(g2, SimTime::ZERO + SimDuration::from_millis(100));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    burst: f64,
    rate_per_sec: f64,
    available: f64,
    last: SimTime,
    granted_total: u64,
}

/// The complete serializable state of a [`TokenBucket`].
///
/// Captures both the configuration (burst, rate — the rate may have been
/// changed mid-run by a throttle policy) and the accrual state, so a
/// restored bucket grants exactly the same instants the original would
/// have.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TokenBucketSnapshot {
    /// Bucket capacity in tokens.
    pub burst: f64,
    /// Refill rate in tokens per second at the capture instant.
    pub rate_per_sec: f64,
    /// Tokens available at the capture instant.
    pub available: f64,
    /// The accrual clock (instant of the last settle or deferred grant).
    pub last: SimTime,
    /// Total tokens granted since construction or reset.
    pub granted_total: u64,
}

impl TokenBucket {
    /// Creates a bucket that starts full.
    ///
    /// `burst` is the bucket capacity in tokens; `rate_per_sec` is the refill
    /// rate in tokens per second.
    ///
    /// # Panics
    ///
    /// Panics if `burst <= 0` or `rate_per_sec <= 0`, or either is non-finite.
    pub fn new(burst: f64, rate_per_sec: f64) -> Self {
        assert!(
            burst > 0.0 && burst.is_finite(),
            "token bucket burst must be positive and finite"
        );
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "token bucket rate must be positive and finite"
        );
        TokenBucket {
            burst,
            rate_per_sec,
            available: burst,
            last: SimTime::ZERO,
            granted_total: 0,
        }
    }

    /// The refill rate in tokens per second.
    pub fn rate(&self) -> f64 {
        self.rate_per_sec
    }

    /// The burst capacity in tokens.
    pub fn burst(&self) -> f64 {
        self.burst
    }

    /// Total tokens granted since construction or [`TokenBucket::reset`].
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Changes the refill rate from `now` onward.
    ///
    /// Accrued tokens are first settled at the old rate. Used by provider
    /// throttle policies that flow-limit a tenant mid-run (Figure 3,
    /// ESSD-1's post-5.1 TB behaviour in the paper).
    pub fn set_rate(&mut self, now: SimTime, rate_per_sec: f64) {
        assert!(
            rate_per_sec > 0.0 && rate_per_sec.is_finite(),
            "token bucket rate must be positive and finite"
        );
        self.settle(now);
        self.rate_per_sec = rate_per_sec;
    }

    /// Grants `tokens` at the earliest possible instant `>= now`;
    /// returns that instant and debits the bucket.
    ///
    /// Requests larger than the burst capacity are granted at the instant
    /// the *full* amount has flowed (the bucket cannot hold it at once, so
    /// the grant time is paced by the refill rate alone).
    pub fn reserve(&mut self, now: SimTime, tokens: u64) -> SimTime {
        self.settle(now);
        self.granted_total += tokens;
        let need = tokens as f64;
        if need <= self.available {
            self.available -= need;
            return self.last;
        }
        let deficit = need - self.available;
        let wait = SimDuration::from_secs_f64(deficit / self.rate_per_sec);
        self.available = 0.0;
        let grant = self.last + wait;
        self.last = grant;

        // Contract hook (O(1)): a deferred grant drains the bucket exactly
        // — never below zero — and keeps the accrual clock at the grant.
        uc_invariant::enforce(|| {
            ensure!(
                self,
                "deferred-grant-drains-exactly",
                self.available == 0.0 && self.last == grant,
                "deferred grant left {} tokens, clock {:?} vs grant {:?}",
                self.available,
                self.last,
                grant
            );
            Ok(())
        });
        grant
    }

    /// The earliest instant at which `tokens` could be granted, without
    /// committing the grant.
    pub fn peek(&self, now: SimTime, tokens: u64) -> SimTime {
        let mut copy = self.clone();
        copy.reserve(now, tokens)
    }

    /// Refills the bucket to full and forgets grant history.
    pub fn reset(&mut self, now: SimTime) {
        self.available = self.burst;
        self.last = now;
        self.granted_total = 0;
    }

    /// Captures the bucket's complete state.
    pub fn snapshot(&self) -> TokenBucketSnapshot {
        TokenBucketSnapshot {
            burst: self.burst,
            rate_per_sec: self.rate_per_sec,
            available: self.available,
            last: self.last,
            granted_total: self.granted_total,
        }
    }

    /// Rebuilds a bucket that continues exactly where `snapshot` was
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's burst or rate is not positive and finite.
    pub fn restore(snapshot: TokenBucketSnapshot) -> Self {
        assert!(
            snapshot.burst > 0.0 && snapshot.burst.is_finite(),
            "token bucket burst must be positive and finite"
        );
        assert!(
            snapshot.rate_per_sec > 0.0 && snapshot.rate_per_sec.is_finite(),
            "token bucket rate must be positive and finite"
        );
        TokenBucket {
            burst: snapshot.burst,
            rate_per_sec: snapshot.rate_per_sec,
            available: snapshot.available,
            last: snapshot.last,
            granted_total: snapshot.granted_total,
        }
    }

    /// Advances the accrual clock to `max(now, last)`.
    fn settle(&mut self, now: SimTime) {
        if now > self.last {
            let dt = (now - self.last).as_secs_f64();
            self.available = (self.available + dt * self.rate_per_sec).min(self.burst);
            self.last = now;
        }
        // Contract hook (O(1)): refill clamps at burst, never negative.
        uc_invariant::debug_check(self);
    }
}

/// Conservation audit for the token bucket: tokens never go negative,
/// never exceed the burst capacity, and the configuration stays sane. O(1).
impl Contract for TokenBucket {
    fn contract_name(&self) -> &'static str {
        "uc-sim/TokenBucket"
    }

    fn check(&self) -> Result<(), Violation> {
        ensure!(
            self,
            "burst-positive-finite",
            self.burst > 0.0 && self.burst.is_finite(),
            "burst is {}",
            self.burst
        );
        ensure!(
            self,
            "rate-positive-finite",
            self.rate_per_sec > 0.0 && self.rate_per_sec.is_finite(),
            "rate is {}",
            self.rate_per_sec
        );
        ensure!(
            self,
            "no-negative-balance",
            self.available >= 0.0,
            "available balance is {}",
            self.available
        );
        ensure!(
            self,
            "balance-within-burst",
            self.available <= self.burst,
            "available {} exceeds burst capacity {}",
            self.available,
            self.burst
        );
        ensure!(
            self,
            "balance-finite",
            self.available.is_finite(),
            "available balance is {}",
            self.available
        );
        Ok(())
    }
}

/// An indexed set of per-tenant token buckets.
///
/// A fleet places many tenants on shared devices, each with its own
/// throughput budget; this is the container that keeps those budgets
/// together so they can be reserved against by tenant index, snapshotted
/// as one unit at a checkpoint boundary, and audited as one conservation
/// contract (every bucket sane, and the set-level grant ledger equal to
/// the sum of per-bucket grants — a lost or double-counted grant is a
/// structural violation, not a silent drift).
#[derive(Debug, Clone, Default)]
pub struct BucketSet {
    buckets: Vec<TokenBucket>,
    granted_total: u64,
}

impl BucketSet {
    /// An empty set.
    pub fn new() -> Self {
        BucketSet::default()
    }

    /// Appends a bucket, returning its index.
    pub fn push(&mut self, bucket: TokenBucket) -> usize {
        self.buckets.push(bucket);
        self.buckets.len() - 1
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// `true` if the set holds no buckets.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }

    /// The bucket at `index`.
    pub fn get(&self, index: usize) -> &TokenBucket {
        &self.buckets[index]
    }

    /// Grants `tokens` from bucket `index` at the earliest instant
    /// `>= now` (see [`TokenBucket::reserve`]), updating the set-level
    /// grant ledger.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn reserve(&mut self, index: usize, now: SimTime, tokens: u64) -> SimTime {
        let grant = self.buckets[index].reserve(now, tokens);
        self.granted_total += tokens;
        // Contract hook (O(1) amortized over the touched bucket): the
        // set-level ledger and the touched bucket stay mutually sane.
        uc_invariant::enforce(|| self.buckets[index].check());
        grant
    }

    /// Total tokens granted across every bucket since construction or
    /// the last restore.
    pub fn granted_total(&self) -> u64 {
        self.granted_total
    }

    /// Captures every bucket's complete state, in index order.
    pub fn snapshot(&self) -> Vec<TokenBucketSnapshot> {
        self.buckets.iter().map(TokenBucket::snapshot).collect()
    }

    /// Rebuilds a set that continues exactly where `snapshots` were
    /// taken (the ledger is recomputed from the buckets, so a restored
    /// set always satisfies its own conservation contract).
    pub fn restore(snapshots: &[TokenBucketSnapshot]) -> Self {
        let buckets: Vec<TokenBucket> =
            snapshots.iter().map(|s| TokenBucket::restore(*s)).collect();
        let granted_total = buckets.iter().map(TokenBucket::granted_total).sum();
        BucketSet {
            buckets,
            granted_total,
        }
    }
}

/// Conservation audit for the bucket set: every member bucket upholds its
/// own contract, and the set-level grant ledger equals the sum of
/// per-bucket grants. O(buckets).
impl Contract for BucketSet {
    fn contract_name(&self) -> &'static str {
        "uc-sim/BucketSet"
    }

    fn check(&self) -> Result<(), Violation> {
        for bucket in &self.buckets {
            bucket.check()?;
        }
        let sum: u64 = self.buckets.iter().map(TokenBucket::granted_total).sum();
        ensure!(
            self,
            "grant-ledger-conservation",
            sum == self.granted_total,
            "per-bucket grants sum to {sum} but the set ledger holds {}",
            self.granted_total
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_is_granted_instantly() {
        let mut tb = TokenBucket::new(1000.0, 100.0);
        assert_eq!(tb.reserve(SimTime::ZERO, 1000), SimTime::ZERO);
    }

    #[test]
    fn sustained_rate_matches_refill() {
        // 1 MB/s; ask for 10 x 1 MB back to back: last grant at ~9 s
        // (the first MB rides the initial burst).
        let mut tb = TokenBucket::new(1e6, 1e6);
        let mut grant = SimTime::ZERO;
        for _ in 0..10 {
            grant = tb.reserve(SimTime::ZERO, 1_000_000);
        }
        let secs = grant.as_secs_f64();
        assert!((secs - 9.0).abs() < 1e-6, "grant at {secs}s");
    }

    #[test]
    fn oversized_request_is_paced_by_rate() {
        let mut tb = TokenBucket::new(100.0, 1000.0);
        // 1100 tokens: 100 from the burst + 1000 refilled over 1 s.
        let g = tb.reserve(SimTime::ZERO, 1100);
        assert!((g.as_secs_f64() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn idle_time_refills_up_to_burst() {
        let mut tb = TokenBucket::new(100.0, 100.0);
        tb.reserve(SimTime::ZERO, 100);
        // Wait 10 s: bucket refills but clamps at burst = 100.
        let later = SimTime::ZERO + SimDuration::from_secs(10);
        assert_eq!(tb.reserve(later, 100), later);
        let g = tb.reserve(later, 100);
        assert!(g > later, "second burst must wait");
    }

    #[test]
    fn set_rate_takes_effect_for_future_grants() {
        let mut tb = TokenBucket::new(1.0, 1000.0);
        tb.reserve(SimTime::ZERO, 1); // drain burst
        tb.set_rate(SimTime::ZERO, 10.0);
        let g = tb.reserve(SimTime::ZERO, 10);
        assert!((g.as_secs_f64() - 1.0).abs() < 1e-3, "10 tokens at 10/s");
    }

    #[test]
    fn peek_does_not_commit() {
        let tb = TokenBucket::new(100.0, 100.0);
        let p1 = tb.peek(SimTime::ZERO, 100);
        let p2 = tb.peek(SimTime::ZERO, 100);
        assert_eq!(p1, p2);
    }

    #[test]
    fn granted_total_accumulates() {
        let mut tb = TokenBucket::new(100.0, 100.0);
        tb.reserve(SimTime::ZERO, 40);
        tb.reserve(SimTime::ZERO, 2);
        assert_eq!(tb.granted_total(), 42);
        tb.reset(SimTime::ZERO);
        assert_eq!(tb.granted_total(), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        let _ = TokenBucket::new(1.0, 0.0);
    }

    #[test]
    fn snapshot_restore_preserves_grant_schedule() {
        let mut a = TokenBucket::new(100.0, 1000.0);
        a.reserve(SimTime::ZERO, 80);
        a.set_rate(SimTime::ZERO + SimDuration::from_millis(1), 500.0);
        let snap = a.snapshot();
        let mut b = TokenBucket::restore(snap);
        assert_eq!(b.snapshot(), snap, "round trip is lossless");
        assert_eq!(b.rate(), a.rate());
        let now = SimTime::ZERO + SimDuration::from_millis(2);
        for tokens in [10, 200, 45] {
            assert_eq!(a.reserve(now, tokens), b.reserve(now, tokens));
        }
        assert_eq!(a.granted_total(), b.granted_total());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn restore_rejects_bad_rate() {
        let mut snap = TokenBucket::new(1.0, 1.0).snapshot();
        snap.rate_per_sec = f64::NAN;
        let _ = TokenBucket::restore(snap);
    }

    #[test]
    fn bucket_set_grants_independently_per_index() {
        let mut set = BucketSet::new();
        assert!(set.is_empty());
        let slow = set.push(TokenBucket::new(100.0, 100.0));
        let fast = set.push(TokenBucket::new(100.0, 100_000.0));
        assert_eq!((slow, fast, set.len()), (0, 1, 2));
        // Drain both bursts, then ask again: only the slow tenant waits.
        set.reserve(slow, SimTime::ZERO, 100);
        set.reserve(fast, SimTime::ZERO, 100);
        let g_slow = set.reserve(slow, SimTime::ZERO, 100);
        let g_fast = set.reserve(fast, SimTime::ZERO, 100);
        assert!(g_slow > g_fast, "budgets are isolated per tenant");
        assert_eq!(set.granted_total(), 400);
        assert_eq!(set.check(), Ok(()));
    }

    #[test]
    fn bucket_set_snapshot_restore_preserves_schedules_and_ledger() {
        let mut set = BucketSet::new();
        set.push(TokenBucket::new(50.0, 1000.0));
        set.push(TokenBucket::new(200.0, 500.0));
        set.reserve(0, SimTime::ZERO, 80);
        set.reserve(1, SimTime::ZERO, 150);
        let snaps = set.snapshot();
        let mut thawed = BucketSet::restore(&snaps);
        assert_eq!(thawed.granted_total(), set.granted_total());
        assert_eq!(thawed.check(), Ok(()));
        let now = SimTime::ZERO + SimDuration::from_millis(3);
        for idx in [0usize, 1, 0] {
            assert_eq!(set.reserve(idx, now, 40), thawed.reserve(idx, now, 40));
        }
    }

    #[test]
    fn bucket_set_ledger_violation_is_reported() {
        let mut set = BucketSet::new();
        set.push(TokenBucket::new(10.0, 10.0));
        set.reserve(0, SimTime::ZERO, 5);
        // Corrupt the ledger the way a lost grant would.
        set.granted_total += 1;
        let v = set.check().unwrap_err();
        assert_eq!(v.invariant, "grant-ledger-conservation");
        assert_eq!(v.contract, "uc-sim/BucketSet");
    }
}
