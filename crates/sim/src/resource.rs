//! Busy-until resource timelines.
//!
//! Device models in this workspace are *timeline-driven*: rather than
//! scheduling explicit events for every internal state change, each shared
//! station (a firmware pipeline, a DMA engine, a flash die, a storage-node
//! service pool) is a resource that, given a request arrival time and a
//! service time, answers "when would this request start and finish?". The
//! answer is exact for FIFO stations and makes the simulators both simple
//! and fast.

use crate::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use uc_invariant::{ensure, Contract, Violation};

/// A serialized FIFO station (one server).
///
/// Models anything that processes one request at a time in arrival order:
/// a command-processing firmware stage, a bus/DMA engine, a network link
/// serializing bytes.
///
/// # Example
///
/// ```
/// use uc_sim::{Resource, SimDuration, SimTime};
///
/// let mut bus = Resource::new();
/// let t0 = SimTime::ZERO;
/// let (s1, f1) = bus.acquire(t0, SimDuration::from_micros(4));
/// let (s2, f2) = bus.acquire(t0, SimDuration::from_micros(4));
/// assert_eq!(s1, t0);
/// assert_eq!(s2, f1); // queued behind the first request
/// assert_eq!(f2, t0 + SimDuration::from_micros(8));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Resource {
    busy_until: SimTime,
    busy_time: SimDuration,
}

/// The complete serializable state of a [`Resource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceSnapshot {
    /// The instant the resource becomes idle.
    pub busy_until: SimTime,
    /// Total service time accumulated.
    pub busy_time: SimDuration,
}

/// The complete serializable state of a [`ParallelResource`].
///
/// The per-server free-at instants are stored in ascending order — the
/// canonical form — so two snapshots of behaviourally identical stations
/// compare equal regardless of the internal heap layout they were captured
/// from. Restoring from the sorted form is exact: the station only ever
/// consults the *earliest-free* server, and servers with equal free-at
/// instants are interchangeable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParallelResourceSnapshot {
    /// Per-server free-at instants, sorted ascending.
    pub servers: Vec<SimTime>,
    /// Total service time accumulated across all servers.
    pub busy_time: SimDuration,
}

impl Resource {
    /// A resource that is idle from the simulation epoch.
    pub fn new() -> Self {
        Resource::default()
    }

    /// Reserves the resource for `service` starting no earlier than `now`.
    ///
    /// Returns `(start, finish)` of the granted slot and advances the
    /// timeline so later calls queue behind this one.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let finish = start + service;
        self.busy_until = finish;
        self.busy_time += service;
        (start, finish)
    }

    /// The earliest instant at which new work could start.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Total service time accumulated (for utilization accounting).
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Forgets all scheduled work; the resource is idle from `SimTime::ZERO`.
    pub fn reset(&mut self) {
        *self = Resource::default();
    }

    /// Captures the resource's complete state.
    pub fn snapshot(&self) -> ResourceSnapshot {
        ResourceSnapshot {
            busy_until: self.busy_until,
            busy_time: self.busy_time,
        }
    }

    /// Rebuilds a resource that continues exactly where `snapshot` was
    /// taken.
    pub fn restore(snapshot: ResourceSnapshot) -> Self {
        Resource {
            busy_until: snapshot.busy_until,
            busy_time: snapshot.busy_time,
        }
    }
}

/// A k-server FIFO station.
///
/// Models stations with internal parallelism: the set of flash dies reached
/// through independent channels, a storage node's worker pool, parallel
/// network connections. Each arriving request is assigned to the server
/// that frees up earliest.
///
/// # Example
///
/// ```
/// use uc_sim::{ParallelResource, SimDuration, SimTime};
///
/// let mut dies = ParallelResource::new(2);
/// let t0 = SimTime::ZERO;
/// let service = SimDuration::from_micros(100);
/// let (_, f1) = dies.acquire(t0, service);
/// let (_, f2) = dies.acquire(t0, service);
/// let (_, f3) = dies.acquire(t0, service);
/// assert_eq!(f1, t0 + service);       // first server
/// assert_eq!(f2, t0 + service);       // second server, in parallel
/// assert_eq!(f3, t0 + service * 2);   // queued behind the first
/// ```
#[derive(Debug, Clone)]
pub struct ParallelResource {
    servers: BinaryHeap<Reverse<SimTime>>,
    capacity: usize,
    busy_time: SimDuration,
}

impl ParallelResource {
    /// A station with `servers` parallel servers, all idle from the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `servers == 0`.
    pub fn new(servers: usize) -> Self {
        assert!(servers > 0, "ParallelResource requires at least one server");
        ParallelResource {
            servers: (0..servers).map(|_| Reverse(SimTime::ZERO)).collect(),
            capacity: servers,
            busy_time: SimDuration::ZERO,
        }
    }

    /// Number of servers.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Reserves the earliest-free server for `service` starting no earlier
    /// than `now`; returns `(start, finish)`.
    pub fn acquire(&mut self, now: SimTime, service: SimDuration) -> (SimTime, SimTime) {
        let Reverse(free) = self.servers.pop().expect("at least one server");
        let start = now.max(free);
        let finish = start + service;
        self.servers.push(Reverse(finish));
        self.busy_time += service;
        // Contract hook (O(1)): the pop/push pair conserved the server
        // count — a lost server would silently serialize the station.
        uc_invariant::enforce(|| {
            ensure!(
                self,
                "server-count-conserved",
                self.servers.len() == self.capacity,
                "{} servers in heap, capacity {}",
                self.servers.len(),
                self.capacity
            );
            Ok(())
        });
        (start, finish)
    }

    /// The earliest instant at which any server could start new work.
    pub fn free_at(&self) -> SimTime {
        self.servers
            .peek()
            .map(|Reverse(t)| *t)
            .unwrap_or(SimTime::ZERO)
    }

    /// The instant at which *all* currently scheduled work completes.
    pub fn drained_at(&self) -> SimTime {
        self.servers
            .iter()
            .map(|Reverse(t)| *t)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Total service time accumulated across all servers.
    pub fn busy_time(&self) -> SimDuration {
        self.busy_time
    }

    /// Forgets all scheduled work.
    pub fn reset(&mut self) {
        *self = ParallelResource::new(self.capacity);
    }

    /// Captures the station's complete state in canonical (sorted) form.
    pub fn snapshot(&self) -> ParallelResourceSnapshot {
        let mut servers: Vec<SimTime> = self.servers.iter().map(|Reverse(t)| *t).collect();
        servers.sort_unstable();
        ParallelResourceSnapshot {
            servers,
            busy_time: self.busy_time,
        }
    }

    /// Rebuilds a station that continues exactly where `snapshot` was
    /// taken.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot holds no servers.
    pub fn restore(snapshot: ParallelResourceSnapshot) -> Self {
        assert!(
            !snapshot.servers.is_empty(),
            "ParallelResource snapshot requires at least one server"
        );
        ParallelResource {
            capacity: snapshot.servers.len(),
            servers: snapshot.servers.into_iter().map(Reverse).collect(),
            busy_time: snapshot.busy_time,
        }
    }
}

/// Structural audit of a k-server station: the server pool never leaks or
/// duplicates a server. O(servers).
impl Contract for ParallelResource {
    fn contract_name(&self) -> &'static str {
        "uc-sim/ParallelResource"
    }

    fn check(&self) -> Result<(), Violation> {
        ensure!(
            self,
            "capacity-positive",
            self.capacity > 0,
            "station has zero capacity"
        );
        ensure!(
            self,
            "server-count-conserved",
            self.servers.len() == self.capacity,
            "{} servers in heap, capacity {}",
            self.servers.len(),
            self.capacity
        );
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_resource_queues_fifo() {
        let mut r = Resource::new();
        let d = SimDuration::from_micros(10);
        let (s1, f1) = r.acquire(SimTime::ZERO, d);
        let (s2, f2) = r.acquire(SimTime::ZERO, d);
        assert_eq!(s1, SimTime::ZERO);
        assert_eq!(s2, f1);
        assert_eq!(f2.as_nanos(), 20_000);
        assert_eq!(r.busy_time(), SimDuration::from_micros(20));
    }

    #[test]
    fn serial_resource_idles_between_arrivals() {
        let mut r = Resource::new();
        let d = SimDuration::from_micros(1);
        let (_, f1) = r.acquire(SimTime::ZERO, d);
        let late = f1 + SimDuration::from_micros(100);
        let (s2, _) = r.acquire(late, d);
        assert_eq!(s2, late, "an idle resource starts work immediately");
    }

    #[test]
    fn parallel_resource_uses_all_servers() {
        let mut r = ParallelResource::new(4);
        let d = SimDuration::from_micros(50);
        let finishes: Vec<SimTime> = (0..8).map(|_| r.acquire(SimTime::ZERO, d).1).collect();
        let first_wave = finishes.iter().filter(|f| **f == SimTime::ZERO + d).count();
        let second_wave = finishes
            .iter()
            .filter(|f| **f == SimTime::ZERO + d * 2)
            .count();
        assert_eq!(first_wave, 4);
        assert_eq!(second_wave, 4);
    }

    #[test]
    fn parallel_resource_free_and_drained() {
        let mut r = ParallelResource::new(2);
        let d = SimDuration::from_micros(10);
        r.acquire(SimTime::ZERO, d);
        assert_eq!(r.free_at(), SimTime::ZERO, "one server still idle");
        r.acquire(SimTime::ZERO, d * 3);
        assert_eq!(r.free_at(), SimTime::ZERO + d);
        assert_eq!(r.drained_at(), SimTime::ZERO + d * 3);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_server_station_panics() {
        let _ = ParallelResource::new(0);
    }

    #[test]
    fn snapshot_restore_resumes_both_station_kinds() {
        let d = SimDuration::from_micros(10);
        let mut serial = Resource::new();
        serial.acquire(SimTime::ZERO, d);
        let resumed = Resource::restore(serial.snapshot());
        assert_eq!(resumed.free_at(), serial.free_at());
        assert_eq!(resumed.busy_time(), serial.busy_time());

        let mut pool = ParallelResource::new(3);
        pool.acquire(SimTime::ZERO, d);
        pool.acquire(SimTime::ZERO, d * 4);
        let snap = pool.snapshot();
        assert_eq!(snap.servers.len(), 3);
        assert!(snap.servers.windows(2).all(|w| w[0] <= w[1]), "canonical");
        let mut resumed = ParallelResource::restore(snap.clone());
        assert_eq!(resumed.capacity(), 3);
        assert_eq!(resumed.snapshot(), snap, "round trip is lossless");
        // The resumed pool schedules exactly as the original would.
        assert_eq!(
            resumed.acquire(SimTime::ZERO, d),
            pool.acquire(SimTime::ZERO, d)
        );
        assert_eq!(resumed.drained_at(), pool.drained_at());
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn empty_parallel_snapshot_rejected() {
        let _ = ParallelResource::restore(ParallelResourceSnapshot {
            servers: Vec::new(),
            busy_time: SimDuration::ZERO,
        });
    }

    #[test]
    fn reset_clears_schedule() {
        let mut r = Resource::new();
        r.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        r.reset();
        assert_eq!(r.free_at(), SimTime::ZERO);
        let mut p = ParallelResource::new(3);
        p.acquire(SimTime::ZERO, SimDuration::from_secs(1));
        p.reset();
        assert_eq!(p.drained_at(), SimTime::ZERO);
        assert_eq!(p.capacity(), 3);
    }
}
