//! Virtual-time types: [`SimTime`] and [`SimDuration`].

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since simulation start.
///
/// `SimTime` is a newtype over `u64` so instants and durations cannot be
/// confused ([`SimDuration`] is the span type). Arithmetic follows the
/// standard-library convention: `SimTime + SimDuration -> SimTime` and
/// `SimTime - SimTime -> SimDuration`.
///
/// # Example
///
/// ```
/// use uc_sim::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_micros(5);
/// assert_eq!(t.as_nanos(), 5_000);
/// assert_eq!(t - SimTime::ZERO, SimDuration::from_micros(5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use uc_sim::SimDuration;
///
/// let d = SimDuration::from_micros(3) + SimDuration::from_nanos(500);
/// assert_eq!(d.as_nanos(), 3_500);
/// assert!(d < SimDuration::from_millis(1));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; useful as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (lossy for very large times).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span since `earlier`, saturating to zero if `earlier` is later.
    ///
    /// Prefer this over `self - earlier` when the ordering of the two
    /// instants is not statically guaranteed.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from fractional seconds, rounding to whole nanoseconds.
    ///
    /// Negative and non-finite inputs are clamped to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round().min(u64::MAX as f64) as u64)
    }

    /// Creates a span from fractional microseconds, rounding to nanoseconds.
    ///
    /// Negative and non-finite inputs are clamped to zero.
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// The span as whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The span as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// The span as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the span is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Multiplies the span by a non-negative float, rounding to nanoseconds.
    ///
    /// Negative and non-finite factors are clamped to zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        if !factor.is_finite() || factor <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration(((self.0 as f64) * factor).round().min(u64::MAX as f64) as u64)
    }

    /// Saturating subtraction of two spans.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// The larger of two spans.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// The smaller of two spans.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// The span between two instants.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is unknown.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimTime subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "SimDuration subtraction underflow");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, Add::add)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimDuration::from_micros(1).as_nanos(), 1_000);
        assert_eq!(SimDuration::from_millis(1).as_nanos(), 1_000_000);
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
        assert_eq!(SimDuration::from_micros_f64(1.5).as_nanos(), 1_500);
    }

    #[test]
    fn negative_float_inputs_clamp_to_zero() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_micros(7).mul_f64(-2.0), SimDuration::ZERO);
    }

    #[test]
    fn time_duration_arithmetic() {
        let t = SimTime::from_nanos(100);
        let d = SimDuration::from_nanos(50);
        assert_eq!((t + d).as_nanos(), 150);
        assert_eq!((t + d) - t, d);
        assert_eq!((t - d).as_nanos(), 50);
        assert_eq!(t.saturating_since(t + d), SimDuration::ZERO);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_micros(10);
        assert_eq!((d * 3).as_nanos(), 30_000);
        assert_eq!((d / 4).as_nanos(), 2_500);
        assert_eq!(d.mul_f64(0.5).as_nanos(), 5_000);
    }

    #[test]
    fn ordering_and_min_max() {
        let a = SimTime::from_nanos(1);
        let b = SimTime::from_nanos(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let x = SimDuration::from_nanos(1);
        let y = SimDuration::from_nanos(9);
        assert_eq!(x.max(y), y);
        assert_eq!(x.min(y), x);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(SimDuration::from_micros).sum();
        assert_eq!(total, SimDuration::from_micros(10));
    }
}
