//! Deterministic discrete-event simulation kernel for the Unwritten Contract
//! framework.
//!
//! This crate provides the primitives every device model in the workspace is
//! built on:
//!
//! * [`SimTime`] / [`SimDuration`] — a nanosecond-resolution virtual clock,
//! * [`EventQueue`] — a time-ordered event calendar with FIFO tie-breaking,
//! * [`SimRng`] — a seedable, forkable random-number generator so every
//!   experiment is reproducible bit-for-bit,
//! * [`LatencyDist`] — latency distributions (constant, uniform, normal,
//!   log-normal, bounded Pareto, and tail mixtures) used to model service
//!   times and network jitter,
//! * [`Resource`] / [`ParallelResource`] — busy-until timelines modelling
//!   serialized and k-server stations (firmware pipelines, flash dies,
//!   storage-node service pools),
//! * [`TokenBucket`] — the rate-limiter used for elastic-SSD throughput and
//!   IOPS budgets.
//!
//! Every stateful primitive can be frozen into a plain-data snapshot type
//! ([`RngSnapshot`], [`ResourceSnapshot`], [`ParallelResourceSnapshot`],
//! [`TokenBucketSnapshot`]) and restored exactly — the bottom layer of the
//! device checkpoint/restore API (`uc-blockdev`'s `CheckpointDevice`) that
//! lets long endurance runs be sliced into resumable segments.
//!
//! # Example
//!
//! ```
//! use uc_sim::{Resource, SimDuration, SimTime, TokenBucket};
//!
//! // A serialized firmware pipeline that takes 2 us per command.
//! let mut firmware = Resource::new();
//! let t0 = SimTime::ZERO;
//! let (start, finish) = firmware.acquire(t0, SimDuration::from_micros(2));
//! assert_eq!(start, t0);
//! assert_eq!(finish, t0 + SimDuration::from_micros(2));
//!
//! // A 1 GB/s byte budget: the second 4 KiB grant is delayed.
//! let mut budget = TokenBucket::new(4096.0, 1e9);
//! let g1 = budget.reserve(t0, 4096);
//! let g2 = budget.reserve(t0, 4096);
//! assert_eq!(g1, t0);
//! assert!(g2 > t0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod persist;
mod queue;
mod resource;
mod rng;
mod time;
mod token;

pub use dist::LatencyDist;
pub use queue::EventQueue;
pub use resource::{ParallelResource, ParallelResourceSnapshot, Resource, ResourceSnapshot};
pub use rng::{RngSnapshot, SimRng};
pub use time::{SimDuration, SimTime};
pub use token::{BucketSet, TokenBucket, TokenBucketSnapshot};
