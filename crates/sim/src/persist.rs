//! [`Persist`] codecs for the simulation kernel's snapshot types.
//!
//! These are the leaves of every device checkpoint: virtual-time values,
//! RNG state, resource timelines, token buckets and latency
//! distributions. Each codec round-trips losslessly
//! (`decode(encode(x)) == x`) and rejects malformed bytes with a typed
//! [`DecodeError`] — the foundation the on-disk checkpoint format
//! (`uc-persist` records) is built on.

use crate::{
    LatencyDist, ParallelResourceSnapshot, ResourceSnapshot, RngSnapshot, SimDuration, SimRng,
    SimTime, TokenBucketSnapshot,
};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};

impl Persist for SimTime {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SimTime::from_nanos(r.get_u64()?))
    }
}

impl Persist for SimDuration {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.as_nanos());
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SimDuration::from_nanos(r.get_u64()?))
    }
}

impl Persist for RngSnapshot {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.seed);
        self.state.encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(RngSnapshot {
            seed: r.get_u64()?,
            state: <[u64; 4]>::decode(r)?,
        })
    }
}

impl Persist for SimRng {
    fn encode(&self, w: &mut Encoder) {
        self.snapshot().encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(SimRng::restore(RngSnapshot::decode(r)?))
    }
}

impl Persist for ResourceSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.busy_until.encode(w);
        self.busy_time.encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ResourceSnapshot {
            busy_until: SimTime::decode(r)?,
            busy_time: SimDuration::decode(r)?,
        })
    }
}

impl Persist for ParallelResourceSnapshot {
    fn encode(&self, w: &mut Encoder) {
        self.servers.encode(w);
        self.busy_time.encode(w);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let servers = Vec::<SimTime>::decode(r)?;
        if servers.is_empty() {
            // `ParallelResource::restore` requires at least one server;
            // reject here so decoding never yields a panic-on-use value.
            return Err(DecodeError::InvalidValue {
                what: "ParallelResourceSnapshot.servers",
            });
        }
        Ok(ParallelResourceSnapshot {
            servers,
            busy_time: SimDuration::decode(r)?,
        })
    }
}

impl Persist for TokenBucketSnapshot {
    fn encode(&self, w: &mut Encoder) {
        w.put_f64(self.burst);
        w.put_f64(self.rate_per_sec);
        w.put_f64(self.available);
        self.last.encode(w);
        w.put_u64(self.granted_total);
    }
    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = TokenBucketSnapshot {
            burst: r.get_f64()?,
            rate_per_sec: r.get_f64()?,
            available: r.get_f64()?,
            last: SimTime::decode(r)?,
            granted_total: r.get_u64()?,
        };
        if !(snapshot.burst > 0.0 && snapshot.burst.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "TokenBucketSnapshot.burst",
            });
        }
        if !(snapshot.rate_per_sec > 0.0 && snapshot.rate_per_sec.is_finite()) {
            return Err(DecodeError::InvalidValue {
                what: "TokenBucketSnapshot.rate_per_sec",
            });
        }
        Ok(snapshot)
    }
}

/// Variant tags of the [`LatencyDist`] wire form.
mod dist_tag {
    pub const CONSTANT: u8 = 0;
    pub const UNIFORM: u8 = 1;
    pub const NORMAL: u8 = 2;
    pub const LOG_NORMAL: u8 = 3;
    pub const BOUNDED_PARETO: u8 = 4;
    pub const MIXTURE: u8 = 5;
}

impl Persist for LatencyDist {
    fn encode(&self, w: &mut Encoder) {
        match self {
            LatencyDist::Constant(v) => {
                w.put_u8(dist_tag::CONSTANT);
                v.encode(w);
            }
            LatencyDist::Uniform { low, high } => {
                w.put_u8(dist_tag::UNIFORM);
                low.encode(w);
                high.encode(w);
            }
            LatencyDist::Normal { mean, std_dev } => {
                w.put_u8(dist_tag::NORMAL);
                mean.encode(w);
                std_dev.encode(w);
            }
            LatencyDist::LogNormal { median, sigma } => {
                w.put_u8(dist_tag::LOG_NORMAL);
                median.encode(w);
                w.put_f64(*sigma);
            }
            LatencyDist::BoundedPareto { scale, shape, cap } => {
                w.put_u8(dist_tag::BOUNDED_PARETO);
                scale.encode(w);
                w.put_f64(*shape);
                cap.encode(w);
            }
            LatencyDist::Mixture {
                base,
                tail,
                tail_prob,
            } => {
                w.put_u8(dist_tag::MIXTURE);
                base.encode(w);
                tail.encode(w);
                w.put_f64(*tail_prob);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            dist_tag::CONSTANT => Ok(LatencyDist::Constant(SimDuration::decode(r)?)),
            dist_tag::UNIFORM => Ok(LatencyDist::Uniform {
                low: SimDuration::decode(r)?,
                high: SimDuration::decode(r)?,
            }),
            dist_tag::NORMAL => Ok(LatencyDist::Normal {
                mean: SimDuration::decode(r)?,
                std_dev: SimDuration::decode(r)?,
            }),
            dist_tag::LOG_NORMAL => Ok(LatencyDist::LogNormal {
                median: SimDuration::decode(r)?,
                sigma: r.get_f64()?,
            }),
            dist_tag::BOUNDED_PARETO => Ok(LatencyDist::BoundedPareto {
                scale: SimDuration::decode(r)?,
                shape: r.get_f64()?,
                cap: SimDuration::decode(r)?,
            }),
            dist_tag::MIXTURE => Ok(LatencyDist::Mixture {
                base: Box::new(LatencyDist::decode(r)?),
                tail: Box::new(LatencyDist::decode(r)?),
                tail_prob: r.get_f64()?,
            }),
            _ => Err(DecodeError::InvalidValue {
                what: "LatencyDist tag",
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Persist + PartialEq + std::fmt::Debug>(value: T) -> T {
        let mut w = Encoder::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = T::decode(&mut r).expect("decodes");
        r.finish().expect("fully consumed");
        assert_eq!(back, value);
        back
    }

    #[test]
    fn time_types_round_trip() {
        round_trip(SimTime::from_nanos(123_456_789));
        round_trip(SimTime::MAX);
        round_trip(SimDuration::from_micros(42));
    }

    #[test]
    fn rng_round_trip_continues_the_stream() {
        let mut rng = SimRng::new(77);
        for _ in 0..13 {
            rng.next_u64();
        }
        round_trip(rng.snapshot());
        let mut w = Encoder::new();
        rng.encode(&mut w);
        let bytes = w.into_bytes();
        let mut back = SimRng::decode(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back.next_u64(), rng.next_u64());
    }

    #[test]
    fn resource_snapshots_round_trip() {
        let mut res = crate::Resource::new();
        res.acquire(SimTime::ZERO, SimDuration::from_micros(9));
        round_trip(res.snapshot());

        let mut pool = crate::ParallelResource::new(3);
        pool.acquire(SimTime::ZERO, SimDuration::from_micros(5));
        round_trip(pool.snapshot());
    }

    #[test]
    fn empty_server_pool_rejected() {
        let mut w = Encoder::new();
        Vec::<SimTime>::new().encode(&mut w);
        SimDuration::ZERO.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            ParallelResourceSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "ParallelResourceSnapshot.servers"
            })
        );
    }

    #[test]
    fn token_bucket_round_trips_and_validates() {
        let mut bucket = crate::TokenBucket::new(1000.0, 5e6);
        bucket.reserve(SimTime::ZERO, 300);
        round_trip(bucket.snapshot());

        let mut bad = bucket.snapshot();
        bad.rate_per_sec = f64::NAN;
        let mut w = Encoder::new();
        bad.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(
            TokenBucketSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "TokenBucketSnapshot.rate_per_sec"
            })
        );
    }

    #[test]
    fn every_dist_variant_round_trips() {
        let us = SimDuration::from_micros;
        for dist in [
            LatencyDist::constant(us(5)),
            LatencyDist::uniform(us(1), us(9)),
            LatencyDist::normal(us(50), us(5)),
            LatencyDist::lognormal(us(100), 0.4),
            LatencyDist::bounded_pareto(us(10), 1.5, us(10_000)),
            LatencyDist::lognormal(us(50), 0.25)
                .with_tail(LatencyDist::bounded_pareto(us(500), 1.2, us(5000)), 0.001),
        ] {
            round_trip(dist);
        }
    }

    #[test]
    fn unknown_dist_tag_is_typed() {
        assert_eq!(
            LatencyDist::decode(&mut Decoder::new(&[99])),
            Err(DecodeError::InvalidValue {
                what: "LatencyDist tag"
            })
        );
    }
}
