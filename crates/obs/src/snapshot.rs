//! Rendered metric snapshots: stable text, Prometheus text, persist codec.

use std::fmt::Write as _;

use uc_metrics::LatencyHistogram;
use uc_persist::{DecodeError, Decoder, Encoder, Persist};

/// Integer summary of a [`LatencyHistogram`].
///
/// Snapshots carry only integers — no floating-point formatting — so that
/// rendering is byte-stable across platforms and two same-seed runs
/// compare equal with `cmp`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistSummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Exact sum of all samples in nanoseconds.
    pub sum_ns: u128,
    /// Exact minimum (0 if empty).
    pub min_ns: u64,
    /// Exact maximum (0 if empty).
    pub max_ns: u64,
    /// Median, within bucket quantization.
    pub p50_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
}

impl HistSummary {
    /// Summarizes a histogram.
    pub fn of(h: &LatencyHistogram) -> Self {
        HistSummary {
            count: h.count(),
            sum_ns: h.sum_nanos(),
            min_ns: h.min().as_nanos(),
            max_ns: h.max().as_nanos(),
            p50_ns: h.percentile(50.0).as_nanos(),
            p99_ns: h.percentile(99.0).as_nanos(),
            p999_ns: h.percentile(99.9).as_nanos(),
        }
    }

    /// Exact integer mean (sum / count), or 0 if empty.
    pub fn mean_ns(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum_ns / self.count as u128) as u64
        }
    }
}

impl Persist for HistSummary {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.count);
        w.put_u64((self.sum_ns >> 64) as u64);
        w.put_u64(self.sum_ns as u64);
        w.put_u64(self.min_ns);
        w.put_u64(self.max_ns);
        w.put_u64(self.p50_ns);
        w.put_u64(self.p99_ns);
        w.put_u64(self.p999_ns);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let count = r.get_u64()?;
        let sum_hi = r.get_u64()?;
        let sum_lo = r.get_u64()?;
        Ok(HistSummary {
            count,
            sum_ns: ((sum_hi as u128) << 64) | sum_lo as u128,
            min_ns: r.get_u64()?,
            max_ns: r.get_u64()?,
            p50_ns: r.get_u64()?,
            p99_ns: r.get_u64()?,
            p999_ns: r.get_u64()?,
        })
    }
}

/// One metric's value inside a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Point-in-time level (may be negative).
    Gauge(i64),
    /// Latency distribution summary.
    Histogram(HistSummary),
}

const TAG_COUNTER: u8 = 0;
const TAG_GAUGE: u8 = 1;
const TAG_HIST: u8 = 2;

impl Persist for MetricValue {
    fn encode(&self, w: &mut Encoder) {
        match self {
            MetricValue::Counter(v) => {
                w.put_u8(TAG_COUNTER);
                w.put_u64(*v);
            }
            MetricValue::Gauge(v) => {
                w.put_u8(TAG_GAUGE);
                w.put_i64(*v);
            }
            MetricValue::Histogram(s) => {
                w.put_u8(TAG_HIST);
                s.encode(w);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            TAG_COUNTER => Ok(MetricValue::Counter(r.get_u64()?)),
            TAG_GAUGE => Ok(MetricValue::Gauge(r.get_i64()?)),
            TAG_HIST => Ok(MetricValue::Histogram(HistSummary::decode(r)?)),
            _ => Err(DecodeError::InvalidValue {
                what: "MetricValue.tag",
            }),
        }
    }
}

/// An ordered list of `(name, value)` metric rows.
///
/// Order is registration order, preserved end to end: registry →
/// snapshot → render → persist → decode. Merging snapshots appends.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsSnapshot {
    /// Metric rows in registration order.
    pub entries: Vec<(String, MetricValue)>,
}

impl ObsSnapshot {
    /// An empty snapshot.
    pub fn new() -> Self {
        ObsSnapshot::default()
    }

    /// Appends one row.
    pub fn push(&mut self, name: String, value: MetricValue) {
        self.entries.push((name, value));
    }

    /// Appends every row of `other`, prefixing each name with `prefix.`.
    /// An empty prefix appends names unchanged.
    pub fn extend_prefixed(&mut self, prefix: &str, other: &ObsSnapshot) {
        for (name, value) in &other.entries {
            let full = if prefix.is_empty() {
                name.clone()
            } else {
                format!("{prefix}.{name}")
            };
            self.entries.push((full, value.clone()));
        }
    }

    /// Looks up a row by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Convenience: counter value by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricValue::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Convenience: histogram summary by name.
    pub fn histogram(&self, name: &str) -> Option<&HistSummary> {
        match self.get(name)? {
            MetricValue::Histogram(s) => Some(s),
            _ => None,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the snapshot as stable plain text, one metric per line.
    ///
    /// This is the byte-compared form: integers only, registration order,
    /// `\n` separators.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "counter {name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "gauge {name} {v}");
                }
                MetricValue::Histogram(s) => {
                    let _ = writeln!(
                        out,
                        "hist {name} count={} mean_ns={} min_ns={} max_ns={} \
                         p50_ns={} p99_ns={} p999_ns={}",
                        s.count,
                        s.mean_ns(),
                        s.min_ns,
                        s.max_ns,
                        s.p50_ns,
                        s.p99_ns,
                        s.p999_ns
                    );
                }
            }
        }
        out
    }

    /// Renders the snapshot in Prometheus text exposition format.
    ///
    /// Dots (and any other non-`[a-zA-Z0-9_]` byte) in metric names become
    /// underscores. Histograms expand to `_count`, `_sum_ns`, and
    /// `_p50/_p99/_p999/_min/_max` nanosecond gauges.
    pub fn render_prometheus(&self) -> String {
        fn sanitize(name: &str) -> String {
            name.chars()
                .map(|c| {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        c
                    } else {
                        '_'
                    }
                })
                .collect()
        }
        let mut out = String::new();
        for (name, value) in &self.entries {
            let n = sanitize(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {n} counter");
                    let _ = writeln!(out, "{n} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {n} gauge");
                    let _ = writeln!(out, "{n} {v}");
                }
                MetricValue::Histogram(s) => {
                    let _ = writeln!(out, "# TYPE {n}_count counter");
                    let _ = writeln!(out, "{n}_count {}", s.count);
                    let _ = writeln!(out, "# TYPE {n}_sum_ns counter");
                    let _ = writeln!(out, "{n}_sum_ns {}", s.sum_ns);
                    for (suffix, v) in [
                        ("min_ns", s.min_ns),
                        ("max_ns", s.max_ns),
                        ("p50_ns", s.p50_ns),
                        ("p99_ns", s.p99_ns),
                        ("p999_ns", s.p999_ns),
                    ] {
                        let _ = writeln!(out, "# TYPE {n}_{suffix} gauge");
                        let _ = writeln!(out, "{n}_{suffix} {v}");
                    }
                }
            }
        }
        out
    }
}

impl Persist for ObsSnapshot {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.entries.len() as u64);
        for (name, value) in &self.entries {
            w.put_str(name);
            value.encode(w);
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let n = r.get_u64()? as usize;
        // Each entry costs at least a length-prefixed name (8 bytes) plus a
        // tag byte; reject counts the remaining buffer cannot possibly hold.
        if n > r.remaining() / 9 + 1 {
            return Err(DecodeError::InvalidValue {
                what: "ObsSnapshot.len",
            });
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.get_string()?;
            let value = MetricValue::decode(r)?;
            entries.push((name, value));
        }
        Ok(ObsSnapshot { entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::SimDuration;

    fn sample() -> ObsSnapshot {
        let mut h = LatencyHistogram::new();
        h.record(SimDuration::from_micros(10));
        h.record(SimDuration::from_micros(20));
        let mut snap = ObsSnapshot::new();
        snap.push("a.count".into(), MetricValue::Counter(3));
        snap.push("a.depth".into(), MetricValue::Gauge(-2));
        snap.push(
            "a.lat_ns".into(),
            MetricValue::Histogram(HistSummary::of(&h)),
        );
        snap
    }

    #[test]
    fn text_render_is_stable_and_integer_only() {
        let text = sample().render_text();
        assert!(text.starts_with("counter a.count 3\n"));
        assert!(text.contains("gauge a.depth -2\n"));
        assert!(text.contains("hist a.lat_ns count=2 mean_ns=15000"));
        assert!(
            !text.contains('.') || !text.contains("e-"),
            "no float formatting"
        );
    }

    #[test]
    fn prometheus_render_sanitizes_names() {
        let prom = sample().render_prometheus();
        assert!(prom.contains("# TYPE a_count counter"));
        assert!(prom.contains("a_count 3"));
        assert!(prom.contains("a_lat_ns_p99_ns "));
        assert!(!prom.contains("a.count"), "dots must be sanitized");
    }

    #[test]
    fn persist_round_trip_is_exact() {
        let snap = sample();
        let mut w = Encoder::new();
        snap.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = ObsSnapshot::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn absurd_length_prefix_is_rejected() {
        let mut w = Encoder::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        assert!(matches!(
            ObsSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn bad_value_tag_is_rejected() {
        let mut w = Encoder::new();
        w.put_u64(1);
        w.put_str("x");
        w.put_u8(9);
        let bytes = w.into_bytes();
        assert!(matches!(
            ObsSnapshot::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "MetricValue.tag"
            })
        ));
    }

    #[test]
    fn extend_prefixed_rewrites_names() {
        let mut base = ObsSnapshot::new();
        base.extend_prefixed("fleet.device0", &sample());
        assert_eq!(base.entries[0].0, "fleet.device0.a.count");
        assert_eq!(base.counter("fleet.device0.a.count"), Some(3));
    }

    #[test]
    fn hist_summary_mean_is_exact() {
        let s = HistSummary {
            count: 3,
            sum_ns: 10,
            ..HistSummary::default()
        };
        assert_eq!(s.mean_ns(), 3);
        assert_eq!(HistSummary::default().mean_ns(), 0);
    }
}
