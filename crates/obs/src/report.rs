//! The `uc.obs.v1` telemetry record: snapshot + flight events.

use std::io;
use std::path::Path;

use uc_persist::{DecodeError, Decoder, Encoder, Persist};

use crate::flight::{FlightRecorder, ObsEvent};
use crate::snapshot::ObsSnapshot;

/// Record kind tag for persisted telemetry dumps.
pub const OBS_RECORD_KIND: &str = "uc.obs.v1";

/// A complete telemetry capture: every metric plus the flight-recorder
/// tail, persisted through the standard checksummed record envelope.
///
/// Dumped in three situations: on demand (`--obs-dump`), when a contract
/// violation fires (the last events name the violating seam), and from
/// crash hooks right before a seeded kill.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ObsReport {
    /// All metrics at capture time, registration-ordered.
    pub snapshot: ObsSnapshot,
    /// Flight-recorder tail, oldest first.
    pub events: Vec<ObsEvent>,
    /// Events evicted from the ring before capture.
    pub dropped_events: u64,
}

impl ObsReport {
    /// Captures a registry snapshot together with the flight tail.
    pub fn capture(reg: &crate::MetricsRegistry, flight: &FlightRecorder) -> Self {
        ObsReport {
            snapshot: reg.snapshot(),
            events: flight.to_vec(),
            dropped_events: flight.dropped(),
        }
    }

    /// Renders the whole report as stable text: snapshot rows, then the
    /// event tail. This is the byte-compared determinism surface.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("uc.obs.v1\n");
        out.push_str(&self.snapshot.render_text());
        out.push_str(&format!(
            "flight events={} dropped={}\n",
            self.events.len(),
            self.dropped_events
        ));
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Serializes into a framed `uc.obs.v1` record.
    pub fn to_record_bytes(&self) -> Vec<u8> {
        let mut w = Encoder::new();
        self.encode(&mut w);
        uc_persist::encode_record(OBS_RECORD_KIND, w.as_bytes())
    }

    /// Writes the report to `path` atomically (tmp + rename).
    pub fn save_to(&self, path: &Path) -> io::Result<()> {
        let mut w = Encoder::new();
        self.encode(&mut w);
        uc_persist::write_record_file(path, OBS_RECORD_KIND, w.as_bytes())
    }

    /// Reads a report back from `path`, verifying envelope and kind.
    pub fn load_from(path: &Path) -> Result<Self, DecodeError> {
        let (kind, payload) = uc_persist::read_record_file(path)?;
        if kind != OBS_RECORD_KIND {
            return Err(DecodeError::UnknownKind { found: kind });
        }
        let mut r = Decoder::new(&payload);
        let report = ObsReport::decode(&mut r)?;
        r.finish()?;
        Ok(report)
    }
}

impl Persist for ObsReport {
    fn encode(&self, w: &mut Encoder) {
        self.snapshot.encode(w);
        w.put_u64(self.dropped_events);
        w.put_u64(self.events.len() as u64);
        for e in &self.events {
            e.encode(w);
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let snapshot = ObsSnapshot::decode(r)?;
        let dropped_events = r.get_u64()?;
        let n = r.get_u64()? as usize;
        // Each event is at least seq+at+len(what)+a+b = 40 bytes.
        if n > r.remaining() / 40 + 1 {
            return Err(DecodeError::InvalidValue {
                what: "ObsReport.events.len",
            });
        }
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(ObsEvent::decode(r)?);
        }
        Ok(ObsReport {
            snapshot,
            events,
            dropped_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;
    use uc_sim::{SimDuration, SimTime};

    fn sample() -> ObsReport {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("x.ios");
        let h = reg.hist("x.lat_ns");
        reg.add(c, 11);
        reg.record(h, SimDuration::from_micros(100));
        let mut flight = FlightRecorder::new(2);
        flight.record(SimTime::from_nanos(1), "first", 0, 0);
        flight.record(SimTime::from_nanos(2), "second", 1, 2);
        flight.record(SimTime::from_nanos(3), "third", 3, 4);
        ObsReport::capture(&reg, &flight)
    }

    #[test]
    fn capture_takes_flight_tail_and_drop_count() {
        let r = sample();
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.dropped_events, 1);
        assert_eq!(r.events[0].what, "second");
        assert_eq!(r.snapshot.counter("x.ios"), Some(11));
    }

    #[test]
    fn render_text_lists_snapshot_then_events() {
        let text = sample().render_text();
        assert!(text.starts_with("uc.obs.v1\ncounter x.ios 11\n"));
        assert!(text.contains("flight events=2 dropped=1\n"));
        assert!(text.ends_with("flight[2] t=3 third a=3 b=4\n"));
    }

    #[test]
    fn file_round_trip_preserves_everything() {
        let dir = std::env::temp_dir().join(format!("uc-obs-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.obs");
        let report = sample();
        report.save_to(&path).unwrap();
        let back = ObsReport::load_from(&path).unwrap();
        assert_eq!(back, report);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wrong_kind_is_rejected() {
        let dir = std::env::temp_dir().join(format!("uc-obs-kind-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("other.rec");
        uc_persist::write_record_file(&path, "uc.other.v1", b"payload").unwrap();
        assert!(matches!(
            ObsReport::load_from(&path),
            Err(DecodeError::UnknownKind { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn absurd_event_count_is_rejected() {
        let mut w = Encoder::new();
        ObsSnapshot::new().encode(&mut w);
        w.put_u64(0); // dropped
        w.put_u64(u64::MAX); // event count
        let bytes = w.into_bytes();
        assert!(matches!(
            ObsReport::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
    }
}
