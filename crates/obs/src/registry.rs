//! Insertion-ordered registry of named counters, gauges, and histograms.

use uc_metrics::LatencyHistogram;
use uc_sim::SimDuration;

use crate::snapshot::{HistSummary, MetricValue, ObsSnapshot};

/// Handle to a registered counter. Copy it into the owning struct once;
/// incrementing through it is an indexed add with no name lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered latency histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistId(usize);

#[derive(Debug, Clone, Copy)]
enum Slot {
    Counter(usize),
    Gauge(usize),
    Hist(usize),
}

/// A registry of named metrics with deterministic snapshot order.
///
/// Names are hierarchical `subsystem.component.metric` strings. Registering
/// the same name twice returns the same handle, so components can be
/// re-instantiated (e.g. across a crash-resume boundary) without duplicating
/// rows. Snapshots list metrics in first-registration order — never sorted,
/// never hashed — which is what makes two same-seed runs byte-identical.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    names: Vec<(String, Slot)>,
    counters: Vec<u64>,
    gauges: Vec<i64>,
    hists: Vec<LatencyHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.names
            .iter()
            .find(|(n, _)| n == name)
            .map(|&(_, slot)| slot)
    }

    /// Registers (or re-fetches) a counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type;
    /// a name means one thing forever.
    pub fn counter(&mut self, name: &str) -> CounterId {
        match self.lookup(name) {
            Some(Slot::Counter(i)) => CounterId(i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.counters.len();
                self.counters.push(0);
                self.names.push((name.to_string(), Slot::Counter(i)));
                CounterId(i)
            }
        }
    }

    /// Registers (or re-fetches) a gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        match self.lookup(name) {
            Some(Slot::Gauge(i)) => GaugeId(i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.gauges.len();
                self.gauges.push(0);
                self.names.push((name.to_string(), Slot::Gauge(i)));
                GaugeId(i)
            }
        }
    }

    /// Registers (or re-fetches) a latency histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric type.
    pub fn hist(&mut self, name: &str) -> HistId {
        match self.lookup(name) {
            Some(Slot::Hist(i)) => HistId(i),
            Some(_) => panic!("metric {name:?} already registered with a different type"),
            None => {
                let i = self.hists.len();
                self.hists.push(LatencyHistogram::new());
                self.names.push((name.to_string(), Slot::Hist(i)));
                HistId(i)
            }
        }
    }

    /// Increments a counter by one (saturating).
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Adds `n` to a counter (saturating).
    pub fn add(&mut self, id: CounterId, n: u64) {
        let c = &mut self.counters[id.0];
        *c = c.saturating_add(n);
    }

    /// Overwrites a counter with an absolute total.
    ///
    /// For mirror-style publication (`observe_into`): a device that is
    /// observed repeatedly into the same registry re-states its cumulative
    /// totals instead of double-counting them.
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.counters[id.0] = v;
    }

    /// Sets a gauge to `v`.
    pub fn set(&mut self, id: GaugeId, v: i64) {
        self.gauges[id.0] = v;
    }

    /// Raises a gauge to `v` if `v` is larger (high-water mark).
    pub fn set_max(&mut self, id: GaugeId, v: i64) {
        let g = &mut self.gauges[id.0];
        *g = (*g).max(v);
    }

    /// Records one latency sample into a histogram.
    pub fn record(&mut self, id: HistId, value: SimDuration) {
        self.hists[id.0].record(value);
    }

    /// Records a raw nanosecond value into a histogram.
    pub fn record_ns(&mut self, id: HistId, nanos: u64) {
        self.hists[id.0].record(SimDuration::from_nanos(nanos));
    }

    /// Current value of a counter.
    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0]
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, id: GaugeId) -> i64 {
        self.gauges[id.0]
    }

    /// Borrow of a registered histogram (for merging/aggregation).
    pub fn hist_value(&self, id: HistId) -> &LatencyHistogram {
        &self.hists[id.0]
    }

    /// Mutable borrow of a registered histogram.
    pub fn hist_mut(&mut self, id: HistId) -> &mut LatencyHistogram {
        &mut self.hists[id.0]
    }

    /// Looks up a counter's value by name (slow; for tests and rendering).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        match self.lookup(name)? {
            Slot::Counter(i) => Some(self.counters[i]),
            _ => None,
        }
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` if nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Renders every metric into an [`ObsSnapshot`] in registration order.
    pub fn snapshot(&self) -> ObsSnapshot {
        let mut snap = ObsSnapshot::new();
        self.snapshot_into(&mut snap);
        snap
    }

    /// Appends every metric to an existing snapshot in registration order.
    pub fn snapshot_into(&self, snap: &mut ObsSnapshot) {
        for (name, slot) in &self.names {
            let value = match *slot {
                Slot::Counter(i) => MetricValue::Counter(self.counters[i]),
                Slot::Gauge(i) => MetricValue::Gauge(self.gauges[i]),
                Slot::Hist(i) => MetricValue::Histogram(HistSummary::of(&self.hists[i])),
            };
            snap.push(name.clone(), value);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_are_stable_and_deduplicated() {
        let mut reg = MetricsRegistry::new();
        let a = reg.counter("x.a");
        let b = reg.counter("x.b");
        assert_ne!(a, b);
        assert_eq!(reg.counter("x.a"), a);
        reg.inc(a);
        reg.add(a, 4);
        assert_eq!(reg.counter_value(a), 5);
        assert_eq!(reg.counter_value(b), 0);
    }

    #[test]
    fn counters_saturate_instead_of_wrapping() {
        let mut reg = MetricsRegistry::new();
        let c = reg.counter("x.near_max");
        reg.add(c, u64::MAX - 1);
        reg.add(c, 5);
        assert_eq!(reg.counter_value(c), u64::MAX);
    }

    #[test]
    fn gauges_set_and_high_water() {
        let mut reg = MetricsRegistry::new();
        let g = reg.gauge("x.depth");
        reg.set(g, -3);
        assert_eq!(reg.gauge_value(g), -3);
        reg.set_max(g, 7);
        reg.set_max(g, 2);
        assert_eq!(reg.gauge_value(g), 7);
    }

    #[test]
    fn snapshot_preserves_registration_order() {
        let mut reg = MetricsRegistry::new();
        reg.counter("z.last_registered_first");
        reg.gauge("a.gauge");
        reg.hist("m.hist");
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["z.last_registered_first", "a.gauge", "m.hist"]);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.counter("x.same");
        reg.gauge("x.same");
    }

    #[test]
    fn hist_records_flow_into_summary() {
        let mut reg = MetricsRegistry::new();
        let h = reg.hist("x.lat");
        reg.record(h, SimDuration::from_micros(10));
        reg.record_ns(h, 30_000);
        let snap = reg.snapshot();
        match snap.get("x.lat") {
            Some(MetricValue::Histogram(s)) => {
                assert_eq!(s.count, 2);
                assert_eq!(s.min_ns, 10_000);
                assert_eq!(s.max_ns, 30_000);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }
}
