//! Cloneable shared handle over a registry + flight recorder.

use std::sync::{Arc, Mutex};

use uc_metrics::LatencyHistogram;
use uc_sim::{SimDuration, SimTime};

use crate::flight::FlightRecorder;
use crate::registry::{CounterId, GaugeId, HistId, MetricsRegistry};
use crate::report::ObsReport;
use crate::snapshot::ObsSnapshot;

#[derive(Debug, Default)]
struct ObsCore {
    registry: MetricsRegistry,
    flight: FlightRecorder,
}

/// Shared telemetry hub for contexts touched from several places at once.
///
/// The serve pool is hit by the event loop, the Prometheus endpoint
/// thread, and control-lane metrics frames concurrently; they all clone
/// one `ObsHub`. Single-owner contexts (a `FleetSim`) hold a plain
/// [`MetricsRegistry`] instead — no locking on the hot path.
///
/// Handle registration goes through the same dedupe rules as the
/// registry, so cloning the hub and re-registering a name yields the same
/// handle.
#[derive(Debug, Clone, Default)]
pub struct ObsHub {
    inner: Arc<Mutex<ObsCore>>,
}

impl ObsHub {
    /// A fresh hub with an empty registry and a default-capacity ring.
    pub fn new() -> Self {
        ObsHub::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ObsCore> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Registers (or re-fetches) a counter.
    pub fn counter(&self, name: &str) -> CounterId {
        self.lock().registry.counter(name)
    }

    /// Registers (or re-fetches) a gauge.
    pub fn gauge(&self, name: &str) -> GaugeId {
        self.lock().registry.gauge(name)
    }

    /// Registers (or re-fetches) a histogram.
    pub fn hist(&self, name: &str) -> HistId {
        self.lock().registry.hist(name)
    }

    /// Increments a counter by one.
    pub fn inc(&self, id: CounterId) {
        self.lock().registry.inc(id);
    }

    /// Adds `n` to a counter.
    pub fn add(&self, id: CounterId, n: u64) {
        self.lock().registry.add(id, n);
    }

    /// Sets a gauge.
    pub fn set(&self, id: GaugeId, v: i64) {
        self.lock().registry.set(id, v);
    }

    /// Raises a gauge high-water mark.
    pub fn set_max(&self, id: GaugeId, v: i64) {
        self.lock().registry.set_max(id, v);
    }

    /// Records a latency sample.
    pub fn record(&self, id: HistId, value: SimDuration) {
        self.lock().registry.record(id, value);
    }

    /// Records a raw nanosecond latency value.
    pub fn record_ns(&self, id: HistId, nanos: u64) {
        self.lock().registry.record_ns(id, nanos);
    }

    /// Records a flight event.
    pub fn event(&self, at: SimTime, what: impl Into<String>, a: u64, b: u64) {
        self.lock().flight.record(at, what, a, b);
    }

    /// Clones a registered histogram (for merge-based aggregation).
    pub fn hist_clone(&self, id: HistId) -> LatencyHistogram {
        self.lock().registry.hist_value(id).clone()
    }

    /// Merges the named histograms into one (per-lane → pool-level).
    pub fn merged_hist(&self, ids: &[HistId]) -> LatencyHistogram {
        let core = self.lock();
        let mut merged = LatencyHistogram::new();
        for &id in ids {
            merged.merge(core.registry.hist_value(id));
        }
        merged
    }

    /// Runs `f` with the registry locked (escape hatch for bulk work).
    pub fn with_registry<R>(&self, f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
        f(&mut self.lock().registry)
    }

    /// Current snapshot of every metric, registration-ordered.
    pub fn snapshot(&self) -> ObsSnapshot {
        self.lock().registry.snapshot()
    }

    /// Full report: snapshot plus flight tail.
    pub fn report(&self) -> ObsReport {
        let core = self.lock();
        ObsReport::capture(&core.registry, &core.flight)
    }

    /// Counter value by name (slow; tests and rendering only).
    pub fn counter_by_name(&self, name: &str) -> Option<u64> {
        self.lock().registry.counter_by_name(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_state() {
        let hub = ObsHub::new();
        let c = hub.counter("x.n");
        let other = hub.clone();
        other.add(c, 3);
        assert_eq!(hub.counter_by_name("x.n"), Some(3));
    }

    #[test]
    fn reregistration_across_clones_yields_same_handle() {
        let hub = ObsHub::new();
        let a = hub.counter("x.same");
        let b = hub.clone().counter("x.same");
        assert_eq!(a, b);
    }

    #[test]
    fn merged_hist_aggregates_lanes() {
        let hub = ObsHub::new();
        let l0 = hub.hist("lane0.svc");
        let l1 = hub.hist("lane1.svc");
        hub.record(l0, SimDuration::from_micros(10));
        hub.record(l1, SimDuration::from_micros(30));
        let merged = hub.merged_hist(&[l0, l1]);
        assert_eq!(merged.count(), 2);
        assert_eq!(merged.max(), SimDuration::from_micros(30));
    }

    #[test]
    fn report_includes_flight_tail() {
        let hub = ObsHub::new();
        hub.event(SimTime::from_nanos(9), "poll", 1, 0);
        let report = hub.report();
        assert_eq!(report.events.len(), 1);
        assert_eq!(report.events[0].what, "poll");
    }
}
