//! Bounded flight-recorder ring of sim-time-stamped events.

use std::collections::VecDeque;

use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::SimTime;

/// One structured event in the flight recorder.
///
/// Events are deliberately flat — a label plus two untyped operands —
/// so recording never allocates beyond the label and rendering stays
/// byte-stable. Conventions: `a` identifies the subject (tenant, lane,
/// block), `b` carries a quantity (bytes, pages, epoch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotone sequence number across the whole recorder lifetime,
    /// including dropped events (so gaps are visible in a dump).
    pub seq: u64,
    /// Simulated time the event fired at.
    pub at: SimTime,
    /// What happened, e.g. `"migration-freeze"` or
    /// `"contract-violation: …"`.
    pub what: String,
    /// First operand (subject id).
    pub a: u64,
    /// Second operand (quantity).
    pub b: u64,
}

impl ObsEvent {
    /// Stable one-line rendering used in dumps.
    pub fn render(&self) -> String {
        format!(
            "flight[{}] t={} {} a={} b={}",
            self.seq,
            self.at.as_nanos(),
            self.what,
            self.a,
            self.b
        )
    }
}

impl Persist for ObsEvent {
    fn encode(&self, w: &mut Encoder) {
        w.put_u64(self.seq);
        w.put_u64(self.at.as_nanos());
        w.put_str(&self.what);
        w.put_u64(self.a);
        w.put_u64(self.b);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ObsEvent {
            seq: r.get_u64()?,
            at: SimTime::from_nanos(r.get_u64()?),
            what: r.get_string()?,
            a: r.get_u64()?,
            b: r.get_u64()?,
        })
    }
}

/// A bounded ring buffer of the last N [`ObsEvent`]s.
///
/// When a contract violation fires or a crash hook trips, the most recent
/// events are exactly the postmortem trail: what the stack was doing right
/// before things went wrong. Old events are dropped (and counted) rather
/// than blocking or growing without bound.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<ObsEvent>,
    next_seq: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// Default ring capacity used by subsystems that don't override it.
    pub const DEFAULT_CAPACITY: usize = 256;

    /// A recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity: capacity.max(1),
            ring: VecDeque::new(),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Records one event, evicting the oldest if the ring is full.
    pub fn record(&mut self, at: SimTime, what: impl Into<String>, a: u64, b: u64) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(ObsEvent {
            seq: self.next_seq,
            at,
            what: what.into(),
            a,
            b,
        });
        self.next_seq += 1;
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.ring.iter()
    }

    /// The retained events as an owned vec, oldest first.
    pub fn to_vec(&self) -> Vec<ObsEvent> {
        self.ring.iter().cloned().collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// `true` if nothing has been recorded (or everything was dropped).
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// How many events were evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut f = FlightRecorder::new(3);
        for i in 0..5u64 {
            f.record(t(i), "e", i, 0);
        }
        assert_eq!(f.len(), 3);
        assert_eq!(f.dropped(), 2);
        let seqs: Vec<u64> = f.events().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn sequence_numbers_survive_eviction() {
        let mut f = FlightRecorder::new(1);
        f.record(t(0), "first", 0, 0);
        f.record(t(1), "second", 0, 0);
        assert_eq!(f.events().next().unwrap().seq, 1);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut f = FlightRecorder::new(0);
        f.record(t(0), "e", 0, 0);
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn event_round_trips_through_persist() {
        let e = ObsEvent {
            seq: 7,
            at: t(1234),
            what: "migration-freeze".into(),
            a: 3,
            b: 9,
        };
        let mut w = Encoder::new();
        e.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = ObsEvent::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn render_is_stable() {
        let e = ObsEvent {
            seq: 0,
            at: t(5),
            what: "gc-start".into(),
            a: 1,
            b: 2,
        };
        assert_eq!(e.render(), "flight[0] t=5 gc-start a=1 b=2");
    }
}
