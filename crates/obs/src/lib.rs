//! Deterministic telemetry for the Unwritten Contract framework.
//!
//! Every layer of the stack — FTL, eSSD devices, fleet scheduler, serve
//! event loop — measures itself through this crate so that the numbers the
//! paper's observations hinge on (latency percentiles, throttle counts, GC
//! churn) come out of one registry, in one format, with one determinism
//! guarantee: **two same-seed runs render byte-identical snapshots**.
//!
//! Three pieces:
//!
//! * [`MetricsRegistry`] — named counters, gauges, and
//!   [`LatencyHistogram`](uc_metrics::LatencyHistogram)s. Registration
//!   returns copyable typed handles ([`CounterId`], [`GaugeId`], [`HistId`])
//!   so the hot path never re-hashes or re-formats a metric name.
//!   Names are hierarchical `subsystem.component.metric` strings and
//!   snapshots preserve registration order.
//! * [`FlightRecorder`] — a bounded ring of sim-time-stamped
//!   [`ObsEvent`]s. The last N interesting things that happened (GC
//!   victims, migration phases, contract violations) survive to a
//!   postmortem dump even when the run dies.
//! * [`ObsReport`] — snapshot + flight events, persisted as a `uc.obs.v1`
//!   record through the same checksummed envelope as every other artifact,
//!   and rendered as stable text, Prometheus text, or merged into bench
//!   JSON.
//!
//! Shared contexts (the serve pool, which is touched by the event loop,
//! the Prometheus endpoint thread, and wire control frames at once) use
//! [`ObsHub`], a cloneable `Arc<Mutex<…>>` wrapper over the same core.
//!
//! # Example
//!
//! ```
//! use uc_obs::{FlightRecorder, MetricsRegistry, ObsReport};
//! use uc_sim::{SimDuration, SimTime};
//!
//! let mut reg = MetricsRegistry::new();
//! let ios = reg.counter("ssd.host.ios");
//! let lat = reg.hist("ssd.host.latency_ns");
//! reg.add(ios, 2);
//! reg.record(lat, SimDuration::from_micros(80));
//! reg.record(lat, SimDuration::from_micros(120));
//!
//! let mut flight = FlightRecorder::new(64);
//! flight.record(SimTime::from_nanos(5), "gc-start", 1, 0);
//!
//! let report = ObsReport::capture(&reg, &flight);
//! assert!(report.render_text().contains("ssd.host.ios 2"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod flight;
mod hub;
mod registry;
mod report;
mod snapshot;

pub use flight::{FlightRecorder, ObsEvent};
pub use hub::ObsHub;
pub use registry::{CounterId, GaugeId, HistId, MetricsRegistry};
pub use report::{ObsReport, OBS_RECORD_KIND};
pub use snapshot::{HistSummary, MetricValue, ObsSnapshot};
