//! Block I/O traces: record, generate, parse and replay.
//!
//! Traces make the burst-smoothing analyses of Implication 4 concrete: a
//! production-like arrival pattern can be generated (or imported from a
//! simple text format), inspected as a per-window demand profile for the
//! smoothing planner in `uc-core`, and replayed open-loop against any
//! device — shaped or unshaped.

use crate::JobReport;
use std::fmt;
use std::str::FromStr;
use uc_blockdev::{BlockDevice, IoError, IoKind};
use uc_sim::{SimDuration, SimRng, SimTime};

/// One traced I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Arrival instant.
    pub at: SimTime,
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset.
    pub offset: u64,
    /// Length in bytes.
    pub len: u32,
}

impl TraceEntry {
    /// Validates this entry in isolation: the length must be non-zero
    /// and, when a device `capacity` is known, `offset + len` must fit
    /// inside it.
    ///
    /// This is the entry-level half of the shared trace validation — the
    /// text parser calls it per line, the binary decoder per record, and
    /// [`Trace::validate`] over a whole trace — so a malformed entry is a
    /// typed [`TraceError`] at ingest time, never a mid-replay failure on
    /// its first I/O.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ZeroLength`] or [`TraceError::OutOfRange`]
    /// (with `index` as given).
    pub fn validate(&self, index: usize, capacity: Option<u64>) -> Result<(), TraceError> {
        if self.len == 0 {
            return Err(TraceError::ZeroLength { index });
        }
        let end = self.offset.saturating_add(self.len as u64);
        if let Some(capacity) = capacity {
            if end > capacity {
                return Err(TraceError::OutOfRange {
                    index,
                    end,
                    capacity,
                });
            }
        }
        Ok(())
    }
}

/// Why a trace (or one of its entries) is invalid.
///
/// Shared by the text parser, the binary decoder in `uc-trace`, and the
/// replay drivers: an invalid trace is rejected with one of these typed
/// errors *before* any I/O is issued, instead of surfacing as the first
/// request's [`IoError`] halfway through a replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceError {
    /// An entry's length is zero.
    ZeroLength {
        /// Index of the offending entry.
        index: usize,
    },
    /// An entry extends past the device capacity.
    OutOfRange {
        /// Index of the offending entry.
        index: usize,
        /// First byte past the entry's range.
        end: u64,
        /// The device capacity the trace was validated against.
        capacity: u64,
    },
    /// An entry arrives earlier than its predecessor (the sequence is
    /// not arrival-ordered).
    TimestampRegression {
        /// Index of the offending entry.
        index: usize,
        /// The predecessor's arrival instant.
        prev: SimTime,
        /// The offending entry's arrival instant.
        at: SimTime,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::ZeroLength { index } => {
                write!(f, "trace entry {index}: zero-length i/o")
            }
            TraceError::OutOfRange {
                index,
                end,
                capacity,
            } => write!(
                f,
                "trace entry {index}: i/o extends to byte {end} beyond capacity {capacity}"
            ),
            TraceError::TimestampRegression { index, prev, at } => write!(
                f,
                "trace entry {index}: arrival {} ns precedes the previous entry's {} ns",
                at.as_nanos(),
                prev.as_nanos()
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// Validates an arrival-ordered entry sequence: every entry passes
/// [`TraceEntry::validate`] and timestamps never decrease.
///
/// A [`Trace`] is sorted by construction, so its own
/// [`Trace::validate`] can never report a regression — this standalone
/// form exists for decoders (the binary trace reader) that ingest entry
/// streams *before* they become a `Trace` and must reject unsorted
/// input rather than silently reorder it.
///
/// # Errors
///
/// Returns the first [`TraceError`] found, with the offending entry's
/// index.
pub fn validate_entries(entries: &[TraceEntry], capacity: Option<u64>) -> Result<(), TraceError> {
    let mut prev = SimTime::ZERO;
    for (index, entry) in entries.iter().enumerate() {
        entry.validate(index, capacity)?;
        if entry.at < prev {
            return Err(TraceError::TimestampRegression {
                index,
                prev,
                at: entry.at,
            });
        }
        prev = entry.at;
    }
    Ok(())
}

/// An arrival-ordered block I/O trace.
///
/// # Text format
///
/// One entry per line: `<nanos> <R|W> <offset> <len>`, e.g.
///
/// ```text
/// 0 W 0 4096
/// 1000000 R 8192 4096
/// ```
///
/// # Example
///
/// ```
/// use uc_workload::Trace;
///
/// let trace: Trace = "0 W 0 4096\n1000 R 4096 4096".parse()?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.total_bytes(), 8192);
/// # Ok::<(), uc_workload::ParseTraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// Error parsing the trace text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What was wrong.
    pub reason: String,
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Builds a trace from entries, sorting them by arrival time (stable).
    pub fn from_entries(mut entries: Vec<TraceEntry>) -> Self {
        entries.sort_by_key(|e| e.at);
        Trace { entries }
    }

    /// The entries in arrival order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of I/Os.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` if the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total bytes across all entries.
    pub fn total_bytes(&self) -> u64 {
        self.entries.iter().map(|e| e.len as u64).sum()
    }

    /// The arrival instant of the last entry, or zero if empty.
    pub fn duration(&self) -> SimDuration {
        self.entries
            .last()
            .map(|e| e.at.saturating_since(SimTime::ZERO))
            .unwrap_or(SimDuration::ZERO)
    }

    /// Generates an on/off bursty write trace: every `period`, a burst of
    /// `burst_ios` I/Os of `io_size` bytes arrives at once, at uniformly
    /// random aligned offsets within `span_bytes`.
    ///
    /// # Panics
    ///
    /// Panics if `io_size == 0` or `span_bytes < io_size`.
    pub fn bursty_writes(
        bursts: u64,
        burst_ios: u64,
        period: SimDuration,
        io_size: u32,
        span_bytes: u64,
        seed: u64,
    ) -> Self {
        assert!(io_size > 0, "i/o size must be positive");
        assert!(span_bytes >= io_size as u64, "span cannot hold one i/o");
        let mut rng = SimRng::new(seed);
        let slots = span_bytes / io_size as u64;
        let mut entries = Vec::with_capacity((bursts * burst_ios) as usize);
        for b in 0..bursts {
            let at = SimTime::ZERO + period * b;
            for _ in 0..burst_ios {
                entries.push(TraceEntry {
                    at,
                    kind: IoKind::Write,
                    offset: rng.range_u64(0, slots) * io_size as u64,
                    len: io_size,
                });
            }
        }
        Trace { entries }
    }

    /// The demand profile: bytes arriving in each consecutive window —
    /// the input shape `uc-core`'s smoothing planner consumes.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn demand_profile(&self, window: SimDuration) -> Vec<u64> {
        assert!(!window.is_zero(), "window must be non-zero");
        let mut out: Vec<u64> = Vec::new();
        for e in &self.entries {
            let idx = (e.at.as_nanos() / window.as_nanos()) as usize;
            if idx >= out.len() {
                out.resize(idx + 1, 0);
            }
            out[idx] += e.len as u64;
        }
        out
    }

    /// Renders the text format (same output as the [`fmt::Display`] impl).
    pub fn to_text(&self) -> String {
        self.to_string()
    }

    /// Validates every entry against a device of `capacity` bytes:
    /// non-zero lengths and in-range offsets (arrival order holds by
    /// construction).
    ///
    /// The replay drivers call this before issuing any I/O, so a bad
    /// trace is a typed [`TraceError`] up front instead of an
    /// [`IoError`] on whichever entry first hits the device.
    ///
    /// # Errors
    ///
    /// Returns the first [`TraceError`] found.
    pub fn validate(&self, capacity: u64) -> Result<(), TraceError> {
        validate_entries(&self.entries, Some(capacity))
    }
}

/// Structural audit of a trace: entries are arrival-ordered (the property
/// `Trace::from_entries` sorting establishes and every later operation
/// must preserve) and individually well-formed. O(entries).
impl uc_invariant::Contract for Trace {
    fn contract_name(&self) -> &'static str {
        "uc-workload/Trace"
    }

    fn check(&self) -> Result<(), uc_invariant::Violation> {
        validate_entries(&self.entries, None).map_err(|e| {
            uc_invariant::Violation::new(self.contract_name(), "entry-monotonicity", e.to_string())
        })
    }
}

impl fmt::Display for Trace {
    /// Writes the parseable text format: one `<nanos> <R|W> <offset>
    /// <len>` line per entry, so `trace.to_string().parse::<Trace>()`
    /// round-trips.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.entries {
            writeln!(
                f,
                "{} {} {} {}",
                e.at.as_nanos(),
                if e.kind.is_write() { 'W' } else { 'R' },
                e.offset,
                e.len
            )?;
        }
        Ok(())
    }
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut entries = Vec::new();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |reason: &str| ParseTraceError {
                line: i + 1,
                reason: reason.to_string(),
            };
            let mut parts = line.split_whitespace();
            let at: u64 = parts
                .next()
                .ok_or_else(|| err("missing arrival time"))?
                .parse()
                .map_err(|_| err("bad arrival time"))?;
            let kind = match parts.next().ok_or_else(|| err("missing direction"))? {
                "R" | "r" => IoKind::Read,
                "W" | "w" => IoKind::Write,
                other => return Err(err(&format!("bad direction `{other}`"))),
            };
            let offset: u64 = parts
                .next()
                .ok_or_else(|| err("missing offset"))?
                .parse()
                .map_err(|_| err("bad offset"))?;
            let len: u32 = parts
                .next()
                .ok_or_else(|| err("missing length"))?
                .parse()
                .map_err(|_| err("bad length"))?;
            if parts.next().is_some() {
                return Err(err("trailing fields"));
            }
            let entry = TraceEntry {
                at: SimTime::from_nanos(at),
                kind,
                offset,
                len,
            };
            // The shared entry validation (capacity is unknown at parse
            // time; range checks happen against a concrete device in
            // `Trace::validate`).
            entry
                .validate(entries.len(), None)
                .map_err(|e| err(&e.to_string()))?;
            entries.push(entry);
        }
        Ok(Trace::from_entries(entries))
    }
}

/// Replays a trace open-loop against a device (arrivals are honoured even
/// if the device falls behind), collecting the usual [`JobReport`] over
/// the historical 100 ms throughput window.
///
/// This is a thin wrapper over [`replay_with`](crate::replay_with) with
/// [`ReplayConfig::open_loop`](crate::ReplayConfig::open_loop): requests
/// route through the queue-pair API ([`BlockDevice::submit_batch`]) one
/// burst per doorbell, which produces completions identical to the old
/// request-at-a-time loop. Use `replay_with` directly to choose the
/// window, a closed-loop mode, or a `speed` factor.
///
/// # Errors
///
/// Propagates the first validation error (e.g. a trace offset beyond the
/// device capacity) — now detected up front, before any I/O is issued —
/// or the first [`IoError`] the device reports.
pub fn replay<D: BlockDevice + ?Sized>(dev: &mut D, trace: &Trace) -> Result<JobReport, IoError> {
    crate::replay_with(dev, trace, &crate::ReplayConfig::open_loop()).map_err(|e| match e {
        crate::ReplayError::Io(e) => e,
        crate::ReplayError::Trace(TraceError::ZeroLength { .. }) => IoError::ZeroLength,
        crate::ReplayError::Trace(TraceError::OutOfRange { end, capacity, .. }) => {
            IoError::OutOfRange { end, capacity }
        }
        crate::ReplayError::Trace(TraceError::TimestampRegression { .. }) => {
            unreachable!("Trace entries are arrival-sorted by construction")
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_round_trip() {
        let text = "0 W 0 4096\n1000 R 8192 4096\n";
        let trace: Trace = text.parse().unwrap();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.to_text(), text);
        assert_eq!(trace.entries()[1].kind, IoKind::Read);
    }

    #[test]
    fn parse_skips_comments_and_blank_lines() {
        let trace: Trace = "# header\n\n0 W 0 4096\n".parse().unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = "0 W 0 4096\nbogus".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 2);
        assert!(!err.to_string().is_empty());
        let err = "0 X 0 4096".parse::<Trace>().unwrap_err();
        assert!(err.reason.contains("direction"));
        let err = "0 W 0 4096 extra".parse::<Trace>().unwrap_err();
        assert!(err.reason.contains("trailing"));
    }

    #[test]
    fn display_from_str_round_trip() {
        // Generate a non-trivial trace, render it through `Display`, parse
        // it back, and require exact equality (and a stable re-render).
        let original = Trace::bursty_writes(3, 7, SimDuration::from_millis(2), 8192, 4 << 20, 42);
        let text = original.to_string();
        let reparsed: Trace = text.parse().unwrap();
        assert_eq!(reparsed, original);
        assert_eq!(reparsed.to_string(), text);
        assert_eq!(original.to_text(), text, "to_text delegates to Display");
        // An empty trace renders to nothing and parses back empty.
        assert_eq!(Trace::new().to_string(), "");
        assert_eq!("".parse::<Trace>().unwrap(), Trace::new());
    }

    #[test]
    fn parse_error_line_numbers_are_one_based_and_count_skipped_lines() {
        // The bad line is line 5 of the input: a header comment, a blank
        // line and two good entries precede it. Skipped lines still count.
        let text = "# header\n\n0 W 0 4096\n10 R 4096 4096\n20 Q 0 4096\n";
        let err = text.parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 5);
        assert!(err.reason.contains("direction"));
        assert_eq!(err.to_string(), "trace line 5: bad direction `Q`");
    }

    #[test]
    fn entries_sort_by_arrival() {
        let trace = Trace::from_entries(vec![
            TraceEntry {
                at: SimTime::from_nanos(500),
                kind: IoKind::Write,
                offset: 0,
                len: 4096,
            },
            TraceEntry {
                at: SimTime::from_nanos(100),
                kind: IoKind::Read,
                offset: 4096,
                len: 4096,
            },
        ]);
        assert_eq!(trace.entries()[0].at, SimTime::from_nanos(100));
    }

    #[test]
    fn bursty_generator_shape() {
        let t = Trace::bursty_writes(4, 10, SimDuration::from_millis(10), 4096, 1 << 20, 7);
        assert_eq!(t.len(), 40);
        assert_eq!(t.total_bytes(), 40 * 4096);
        let profile = t.demand_profile(SimDuration::from_millis(10));
        assert_eq!(profile, vec![40960; 4]);
        // Finer windows expose the burstiness.
        let fine = t.demand_profile(SimDuration::from_millis(1));
        assert_eq!(fine.iter().filter(|&&d| d > 0).count(), 4);
    }

    #[test]
    fn replay_reports_queueing() {
        use uc_blockdev::{DeviceInfo, IoRequest, IoResult};
        struct Slow(uc_sim::Resource);
        impl BlockDevice for Slow {
            fn info(&self) -> DeviceInfo {
                DeviceInfo::new("slow", 1 << 30, 4096)
            }
            fn submit(&mut self, req: &IoRequest) -> IoResult {
                self.info().validate(req)?;
                Ok(self
                    .0
                    .acquire(req.submit_time, SimDuration::from_micros(100))
                    .1)
            }
        }
        let trace = Trace::bursty_writes(1, 10, SimDuration::from_secs(1), 4096, 1 << 20, 1);
        let mut dev = Slow(uc_sim::Resource::new());
        let report = replay(&mut dev, &trace).unwrap();
        assert_eq!(report.ios, 10);
        assert_eq!(report.latency.max(), SimDuration::from_micros(1000));
    }

    #[test]
    fn validation_is_typed_and_shared() {
        // Zero length: caught by the parser (with a line number)…
        let err = "0 W 0 0".parse::<Trace>().unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.reason.contains("zero-length"));
        // …and by the trace-level validator (with an entry index).
        let zero = TraceEntry {
            at: SimTime::ZERO,
            kind: IoKind::Write,
            offset: 0,
            len: 0,
        };
        assert_eq!(
            zero.validate(3, None),
            Err(TraceError::ZeroLength { index: 3 })
        );
        // Range checks need a capacity.
        let far = TraceEntry {
            at: SimTime::ZERO,
            kind: IoKind::Read,
            offset: 1 << 20,
            len: 4096,
        };
        assert_eq!(far.validate(0, None), Ok(()));
        assert_eq!(
            far.validate(0, Some(1 << 20)),
            Err(TraceError::OutOfRange {
                index: 0,
                end: (1 << 20) + 4096,
                capacity: 1 << 20,
            })
        );
        // A whole trace validates against a device capacity; the first
        // offender's index is reported.
        let trace = Trace::from_entries(vec![
            TraceEntry {
                at: SimTime::ZERO,
                kind: IoKind::Write,
                offset: 0,
                len: 4096,
            },
            far,
        ]);
        assert!(trace.validate(2 << 20).is_ok());
        assert_eq!(
            trace.validate(1 << 20),
            Err(TraceError::OutOfRange {
                index: 1,
                end: (1 << 20) + 4096,
                capacity: 1 << 20,
            })
        );
        // The standalone entry-sequence validator also rejects unsorted
        // streams (a binary decoder must not silently reorder).
        let unsorted = vec![far, zero];
        assert!(matches!(
            validate_entries(&unsorted, None),
            Err(TraceError::ZeroLength { index: 1 })
        ));
        let regressing = vec![
            TraceEntry {
                at: SimTime::from_nanos(100),
                kind: IoKind::Write,
                offset: 0,
                len: 4096,
            },
            TraceEntry {
                at: SimTime::from_nanos(50),
                kind: IoKind::Write,
                offset: 0,
                len: 4096,
            },
        ];
        let err = validate_entries(&regressing, None).unwrap_err();
        assert!(matches!(
            err,
            TraceError::TimestampRegression { index: 1, .. }
        ));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn deterministic_generation() {
        let a = Trace::bursty_writes(2, 5, SimDuration::from_millis(1), 4096, 1 << 20, 9);
        let b = Trace::bursty_writes(2, 5, SimDuration::from_millis(1), 4096, 1 << 20, 9);
        assert_eq!(a, b);
    }
}
