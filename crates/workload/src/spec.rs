//! Job specifications.

use uc_sim::{SimDuration, SimTime};

/// The access patterns of the paper's experiments (§III-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Uniform random reads.
    RandRead,
    /// Uniform random writes.
    RandWrite,
    /// Sequential reads (wrapping at the end of the span).
    SeqRead,
    /// Sequential writes (wrapping at the end of the span).
    SeqWrite,
    /// A random mix of reads and writes.
    Mixed {
        /// Fraction of operations that are writes, in `[0, 1]`.
        write_ratio: f64,
        /// `true` for random offsets, `false` for two sequential cursors.
        random: bool,
    },
    /// Skewed random access: a hot subset of the span absorbs most I/Os
    /// (the classic 90/10 shape of real key-value and cache workloads).
    Hotspot {
        /// Fraction of the span that is hot, in `(0, 1)`.
        hot_fraction: f64,
        /// Probability an access lands in the hot region, in `[0, 1]`.
        hot_probability: f64,
        /// Fraction of operations that are writes, in `[0, 1]`.
        write_ratio: f64,
    },
}

impl AccessPattern {
    /// `true` if every operation is a write.
    pub fn is_pure_write(&self) -> bool {
        matches!(self, AccessPattern::RandWrite | AccessPattern::SeqWrite)
            || matches!(self, AccessPattern::Mixed { write_ratio, .. } if *write_ratio >= 1.0)
            || matches!(self, AccessPattern::Hotspot { write_ratio, .. } if *write_ratio >= 1.0)
    }

    /// `true` if offsets are generated randomly.
    pub fn is_random(&self) -> bool {
        match self {
            AccessPattern::RandRead | AccessPattern::RandWrite => true,
            AccessPattern::SeqRead | AccessPattern::SeqWrite => false,
            AccessPattern::Mixed { random, .. } => *random,
            AccessPattern::Hotspot { .. } => true,
        }
    }
}

/// When a job stops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobLimit {
    /// Stop after this many I/Os.
    Ios(u64),
    /// Stop once this many bytes have been transferred.
    Bytes(u64),
    /// Stop at the first completion at or past this simulated time span.
    Elapsed(SimDuration),
}

/// A declarative workload description.
///
/// # Example
///
/// ```
/// use uc_workload::{AccessPattern, JobLimit, JobSpec};
///
/// let spec = JobSpec::new(AccessPattern::RandWrite, 128 << 10, 32)
///     .with_byte_limit(1 << 30)
///     .with_seed(7);
/// assert_eq!(spec.limit, JobLimit::Bytes(1 << 30));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Access pattern.
    pub pattern: AccessPattern,
    /// Bytes per I/O.
    pub io_size: u32,
    /// Outstanding requests the driver maintains.
    pub queue_depth: usize,
    /// Optional working-set restriction `[start, end)` in bytes; the whole
    /// device when `None`.
    pub span: Option<(u64, u64)>,
    /// Stop condition.
    pub limit: JobLimit,
    /// Seed for offset/mix randomness.
    pub seed: u64,
    /// Window width for throughput timelines.
    pub throughput_window: SimDuration,
    /// Virtual instant the job starts submitting at.
    ///
    /// Defaults to [`SimTime::ZERO`]. When chaining jobs on the *same*
    /// device (e.g. precondition then measure), start the second job at
    /// the first job's `finished_at` so device timelines stay monotone.
    pub start: SimTime,
}

impl JobSpec {
    /// A job with the given pattern, I/O size and queue depth, stopping
    /// after 10 000 I/Os by default.
    ///
    /// # Panics
    ///
    /// Panics if `io_size == 0` or `queue_depth == 0`.
    pub fn new(pattern: AccessPattern, io_size: u32, queue_depth: usize) -> Self {
        assert!(io_size > 0, "i/o size must be positive");
        assert!(queue_depth > 0, "queue depth must be positive");
        JobSpec {
            pattern,
            io_size,
            queue_depth,
            span: None,
            limit: JobLimit::Ios(10_000),
            seed: 0x10B5,
            throughput_window: SimDuration::from_secs(1),
            start: SimTime::ZERO,
        }
    }

    /// Starts the job at `start` instead of the simulation epoch.
    pub fn with_start(mut self, start: SimTime) -> Self {
        self.start = start;
        self
    }

    /// Stops after `ios` operations.
    pub fn with_io_limit(mut self, ios: u64) -> Self {
        self.limit = JobLimit::Ios(ios.max(1));
        self
    }

    /// Stops after `bytes` have been transferred.
    pub fn with_byte_limit(mut self, bytes: u64) -> Self {
        self.limit = JobLimit::Bytes(bytes.max(1));
        self
    }

    /// Stops at the first completion past `elapsed`.
    pub fn with_time_limit(mut self, elapsed: SimDuration) -> Self {
        self.limit = JobLimit::Elapsed(elapsed);
        self
    }

    /// Restricts offsets to `[start, end)`.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn with_span(mut self, start: u64, end: u64) -> Self {
        assert!(start < end, "span must be non-empty");
        self.span = Some((start, end));
        self
    }

    /// Replaces the randomness seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the throughput window.
    pub fn with_throughput_window(mut self, window: SimDuration) -> Self {
        self.throughput_window = window;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_classification() {
        assert!(AccessPattern::RandWrite.is_pure_write());
        assert!(AccessPattern::SeqWrite.is_pure_write());
        assert!(!AccessPattern::RandRead.is_pure_write());
        assert!(AccessPattern::RandRead.is_random());
        assert!(!AccessPattern::SeqRead.is_random());
        assert!(AccessPattern::Mixed {
            write_ratio: 0.5,
            random: true
        }
        .is_random());
        assert!(AccessPattern::Mixed {
            write_ratio: 1.0,
            random: false
        }
        .is_pure_write());
        let hot = AccessPattern::Hotspot {
            hot_fraction: 0.1,
            hot_probability: 0.9,
            write_ratio: 1.0,
        };
        assert!(hot.is_pure_write());
        assert!(hot.is_random());
    }

    #[test]
    fn builder_round_trip() {
        let spec = JobSpec::new(AccessPattern::SeqRead, 4096, 8)
            .with_io_limit(5)
            .with_span(0, 4096 * 100)
            .with_seed(3)
            .with_start(SimTime::from_nanos(77))
            .with_throughput_window(SimDuration::from_millis(10));
        assert_eq!(spec.limit, JobLimit::Ios(5));
        assert_eq!(spec.start, SimTime::from_nanos(77));
        assert_eq!(spec.span, Some((0, 409_600)));
        assert_eq!(spec.seed, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_io_size_rejected() {
        let _ = JobSpec::new(AccessPattern::RandRead, 0, 1);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_span_rejected() {
        let _ = JobSpec::new(AccessPattern::RandRead, 4096, 1).with_span(5, 5);
    }
}
