//! Closed-loop and open-loop job execution.

use crate::{AddressStream, JobLimit, JobReport, JobSpec};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use uc_blockdev::{BlockDevice, IoBatch, IoError, IoKind, IoRequest};
use uc_sim::SimTime;

/// One outstanding request awaiting completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Inflight {
    completes: SimTime,
    submitted: SimTime,
    kind: IoKind,
    len: u32,
}

impl PartialOrd for Inflight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Inflight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Total order up to fully identical entries: (completes, submitted)
        // is the schedule order; kind/len break the remaining ties so the
        // completion-drain order never depends on heap push history (two
        // entries equal on all four fields are interchangeable).
        self.completes
            .cmp(&other.completes)
            .then_with(|| self.submitted.cmp(&other.submitted))
            .then_with(|| self.kind.is_write().cmp(&other.kind.is_write()))
            .then_with(|| self.len.cmp(&other.len))
    }
}

fn job_span<D: BlockDevice + ?Sized>(dev: &D, spec: &JobSpec) -> (u64, u64) {
    match spec.span {
        Some((s, e)) => (s, e.min(dev.info().capacity())),
        None => (0, dev.info().capacity()),
    }
}

fn limit_reached(spec: &JobSpec, report: &JobReport) -> bool {
    match spec.limit {
        JobLimit::Ios(n) => report.ios >= n,
        JobLimit::Bytes(b) => report.bytes >= b,
        JobLimit::Elapsed(d) => report.elapsed() >= d,
    }
}

/// Submits a queued batch through one doorbell ring and moves the
/// completions into the in-flight heap.
fn ring_doorbell<D: BlockDevice + ?Sized>(
    dev: &mut D,
    batch: &IoBatch,
    inflight: &mut BinaryHeap<Reverse<Inflight>>,
) -> Result<(), IoError> {
    if batch.is_empty() {
        return Ok(());
    }
    for completion in dev.submit_batch(batch)? {
        inflight.push(Reverse(Inflight {
            completes: completion.completes,
            submitted: completion.submitted,
            kind: completion.kind,
            len: completion.len,
        }));
    }
    Ok(())
}

/// One request in flight at a pause point, in plain serializable form.
///
/// The closed-loop driver's heap entries, exposed through
/// [`DriverCheckpoint`] so a paused job can be frozen and rebuilt exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InflightIo {
    /// The instant the request completes.
    pub completes: SimTime,
    /// The instant the request was submitted.
    pub submitted: SimTime,
    /// Read or write.
    pub kind: IoKind,
    /// Length in bytes.
    pub len: u32,
}

impl PartialOrd for InflightIo {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InflightIo {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // The same canonical schedule order as the internal heap entries:
        // (completes, submitted) first, kind/len as total-order tie-breaks.
        // The trace-replay driver keys its completion heap on this.
        self.completes
            .cmp(&other.completes)
            .then_with(|| self.submitted.cmp(&other.submitted))
            .then_with(|| self.kind.is_write().cmp(&other.kind.is_write()))
            .then_with(|| self.len.cmp(&other.len))
    }
}

/// The complete serializable state of a paused [`ClosedLoopJob`].
///
/// Captured by [`ClosedLoopJob::checkpoint`]; [`ClosedLoopJob::resume`]
/// rebuilds a job that continues with a schedule identical to a job that
/// was never paused. Pair it with the device's own checkpoint
/// (`uc_blockdev::CheckpointDevice`) to move a half-finished run across
/// threads (or, in principle, processes).
#[derive(Debug, Clone)]
pub struct DriverCheckpoint {
    /// The job specification being executed.
    pub spec: JobSpec,
    /// The resolved device span `[start, end)` offsets are drawn from.
    pub span: (u64, u64),
    /// The offset/direction generator, mid-sequence.
    pub stream: AddressStream,
    /// Everything measured so far.
    pub report: JobReport,
    /// Outstanding requests, sorted by schedule order
    /// (`(completes, submitted, kind, len)` ascending).
    pub inflight: Vec<InflightIo>,
    /// `true` once the job's stop condition has fired.
    pub finished: bool,
}

/// How a [`ClosedLoopJob::run_until`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobProgress {
    /// The byte milestone was reached; the job can be resumed.
    Paused,
    /// The spec's stop condition fired (or the address space drained);
    /// the report is final.
    Finished,
}

/// A resumable closed-loop job: the state [`run_job`] keeps on its stack,
/// reified so a long run can pause at byte milestones, be checkpointed,
/// travel to another worker, and continue.
///
/// The driver keeps `queue_depth` requests outstanding and speaks the
/// queue-pair API: the initial fill is one [`IoBatch`] of `queue_depth`
/// requests, and every later step drains the group of completions sharing
/// the earliest instant, then rings one doorbell with all of their
/// replacements. Because replacement requests are submitted at their
/// predecessors' completion instants and devices report strictly positive
/// service times, the batched schedule is *identical* to submitting one
/// request per [`BlockDevice::submit`] call — same virtual-time schedule,
/// fewer (and fatter) device calls. This reproduces FIO's `iodepth=N`
/// behaviour with exact virtual-time bookkeeping.
///
/// **Pause exactness:** [`ClosedLoopJob::run_until`] only pauses at
/// drain-group boundaries — after a group's replacements have gone out
/// through their doorbell, before the next group is popped. Every
/// recorded completion still queues its replacement exactly as an
/// uninterrupted run would, so for any milestone sequence the final
/// report (and the device-observed submission timeline) is byte-identical
/// to [`run_job`]'s. This is the property that lets `uc-core` slice the
/// Figure 3 endurance run into pipelined segments.
///
/// # Example
///
/// ```
/// use uc_ssd::{Ssd, SsdConfig};
/// use uc_workload::{AccessPattern, ClosedLoopJob, JobSpec, run_job};
///
/// let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 4)
///     .with_byte_limit(64 * 4096);
/// // Straight through…
/// let mut a = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
/// let straight = run_job(&mut a, &spec)?;
/// // …equals paused-and-resumed at a midpoint.
/// let mut b = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
/// let mut job = ClosedLoopJob::start(&mut b, &spec)?;
/// job.run_until(&mut b, 32 * 4096)?;
/// let resumed = ClosedLoopJob::resume(job.checkpoint());
/// let mut job = resumed;
/// job.run_until(&mut b, u64::MAX)?;
/// assert_eq!(job.report().finished_at, straight.finished_at);
/// # Ok::<(), uc_blockdev::IoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ClosedLoopJob {
    spec: JobSpec,
    span: (u64, u64),
    stream: AddressStream,
    report: JobReport,
    inflight: BinaryHeap<Reverse<Inflight>>,
    finished: bool,
}

impl ClosedLoopJob {
    /// Primes a job against `dev`: resolves the span and submits the
    /// initial `queue_depth` fill through one doorbell.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IoError`] a submission reports (e.g. the
    /// spec's span exceeds the device capacity).
    pub fn start<D: BlockDevice + ?Sized>(dev: &mut D, spec: &JobSpec) -> Result<Self, IoError> {
        let span = job_span(dev, spec);
        let mut stream = AddressStream::new(spec.pattern, spec.io_size, span.0, span.1, spec.seed);
        let mut inflight: BinaryHeap<Reverse<Inflight>> = BinaryHeap::new();
        let mut batch = IoBatch::with_capacity(spec.queue_depth);
        for _ in 0..spec.queue_depth {
            queue_next(&mut batch, &mut stream, spec.io_size, spec.start);
        }
        ring_doorbell(dev, &batch, &mut inflight)?;
        Ok(ClosedLoopJob {
            spec: spec.clone(),
            span,
            stream,
            report: JobReport::new(spec.throughput_window, spec.start),
            inflight,
            finished: false,
        })
    }

    /// Drives the job until at least `bytes` total bytes have completed,
    /// pausing at the next drain-group boundary — or until the spec's own
    /// stop condition fires, whichever comes first.
    ///
    /// Pass `u64::MAX` to run to completion.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IoError`] a submission reports.
    pub fn run_until<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        bytes: u64,
    ) -> Result<JobProgress, IoError> {
        if self.finished {
            return Ok(JobProgress::Finished);
        }
        let mut batch = IoBatch::with_capacity(self.spec.queue_depth);
        'drive: while let Some(Reverse(first)) = self.inflight.pop() {
            batch.clear();
            // Drain every completion sharing the earliest instant and
            // queue one replacement per completion, all at that instant.
            // (A replacement cannot complete before this instant, so the
            // heap order — and therefore the schedule — matches
            // request-at-a-time submission exactly.)
            let mut done = first;
            loop {
                self.report.record(
                    done.kind.is_write(),
                    done.len,
                    done.submitted,
                    done.completes,
                );
                if limit_reached(&self.spec, &self.report) {
                    // Replacements queued for the completions recorded
                    // before the limit still go out (exactly the requests
                    // the one-at-a-time driver had already submitted).
                    ring_doorbell(dev, &batch, &mut self.inflight)?;
                    break 'drive;
                }
                queue_next(
                    &mut batch,
                    &mut self.stream,
                    self.spec.io_size,
                    done.completes,
                );
                match self.inflight.peek() {
                    Some(Reverse(next)) if next.completes == first.completes => {
                        done = self.inflight.pop().expect("peeked").0;
                    }
                    _ => break,
                }
            }
            ring_doorbell(dev, &batch, &mut self.inflight)?;
            if self.report.bytes >= bytes {
                return Ok(JobProgress::Paused);
            }
        }
        self.finished = true;
        Ok(JobProgress::Finished)
    }

    /// `true` once the job's stop condition has fired.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Everything measured so far (final once [`ClosedLoopJob::is_finished`]).
    pub fn report(&self) -> &JobReport {
        &self.report
    }

    /// Consumes the job, yielding its report.
    pub fn into_report(self) -> JobReport {
        self.report
    }

    /// Captures the job's complete state at a pause point.
    pub fn checkpoint(&self) -> DriverCheckpoint {
        let mut inflight: Vec<InflightIo> = self
            .inflight
            .iter()
            .map(|Reverse(io)| InflightIo {
                completes: io.completes,
                submitted: io.submitted,
                kind: io.kind,
                len: io.len,
            })
            .collect();
        // Canonical order: the heap's own schedule order. Entries equal on
        // all fields are interchangeable, so this fully determines the
        // continuation.
        inflight
            .sort_unstable_by_key(|io| (io.completes, io.submitted, io.kind.is_write(), io.len));
        DriverCheckpoint {
            spec: self.spec.clone(),
            span: self.span,
            stream: self.stream.clone(),
            report: self.report.clone(),
            inflight,
            finished: self.finished,
        }
    }

    /// Rebuilds a job that continues exactly where `checkpoint` was taken.
    pub fn resume(checkpoint: DriverCheckpoint) -> Self {
        ClosedLoopJob {
            spec: checkpoint.spec,
            span: checkpoint.span,
            stream: checkpoint.stream,
            report: checkpoint.report,
            inflight: checkpoint
                .inflight
                .into_iter()
                .map(|io| {
                    Reverse(Inflight {
                        completes: io.completes,
                        submitted: io.submitted,
                        kind: io.kind,
                        len: io.len,
                    })
                })
                .collect(),
            finished: checkpoint.finished,
        }
    }
}

/// Queues the next I/O of `stream` into `batch` at instant `at`.
fn queue_next(batch: &mut IoBatch, stream: &mut AddressStream, io_size: u32, at: SimTime) {
    let (kind, offset) = stream.next_io();
    batch.push(IoRequest {
        kind,
        offset,
        len: io_size,
        submit_time: at,
    });
}

/// Runs `spec` against `dev` with a closed-loop driver: `queue_depth`
/// requests stay outstanding; each completion immediately queues the next
/// request at its completion instant.
///
/// This is [`ClosedLoopJob`] run straight through — see its documentation
/// for the queue-pair batching and schedule-equivalence guarantees. Use
/// `ClosedLoopJob` directly to pause at byte milestones and checkpoint.
///
/// # Errors
///
/// Propagates the first [`IoError`] a submission reports (e.g. the spec's
/// span exceeds the device capacity).
///
/// # Example
///
/// See the crate-level example.
pub fn run_job<D: BlockDevice + ?Sized>(dev: &mut D, spec: &JobSpec) -> Result<JobReport, IoError> {
    let mut job = ClosedLoopJob::start(dev, spec)?;
    job.run_until(dev, u64::MAX)?;
    Ok(job.into_report())
}

/// Preconditions a device: sequentially fills its entire capacity with
/// large writes, returning the completion instant (pass it to
/// [`JobSpec::with_start`] for the measured job that follows).
///
/// This is the standard FIO methodology for putting an SSD's FTL into its
/// steady state before measuring — without it, in-place random-write
/// workloads on a fresh device never face garbage collection.
///
/// # Errors
///
/// Propagates the first [`IoError`] a submission reports.
pub fn precondition<D: BlockDevice + ?Sized>(dev: &mut D) -> Result<SimTime, IoError> {
    let capacity = dev.info().capacity();
    let io = (1u32 << 20).min(capacity.min(u32::MAX as u64) as u32);
    let spec = JobSpec::new(crate::AccessPattern::SeqWrite, io, 16)
        .with_byte_limit(capacity)
        .with_seed(0xF111);
    Ok(run_job(dev, &spec)?.finished_at)
}

/// Runs an open-loop (arrival-driven) job: one I/O is submitted at each
/// instant `arrivals` yields, regardless of completions.
///
/// Latencies therefore include any queueing the device accumulates — this
/// is the driver for burstiness studies (the paper's Implication 4: smooth
/// I/O across the timeline to fit a smaller throughput budget).
///
/// Arrival instants must be non-decreasing; offsets/kinds come from the
/// spec's pattern, and the stop condition is ignored (the arrival iterator
/// bounds the run). The driver speaks the queue-pair API: arrivals are
/// grouped into [`IoBatch`]es of up to `queue_depth` requests per doorbell
/// ring — each request still carries its own arrival instant, so the
/// schedule is identical to one submission per arrival.
///
/// # Errors
///
/// Propagates the first [`IoError`] a submission reports.
pub fn run_open_loop<D, I>(dev: &mut D, spec: &JobSpec, arrivals: I) -> Result<JobReport, IoError>
where
    D: BlockDevice + ?Sized,
    I: IntoIterator<Item = SimTime>,
{
    let (start, end) = job_span(dev, spec);
    let mut stream = AddressStream::new(spec.pattern, spec.io_size, start, end, spec.seed);
    let mut report = JobReport::new(spec.throughput_window, spec.start);
    let ring_size = spec.queue_depth.max(1);
    let mut batch = IoBatch::with_capacity(ring_size);

    let flush = |dev: &mut D, batch: &mut IoBatch, report: &mut JobReport| -> Result<(), IoError> {
        if batch.is_empty() {
            return Ok(());
        }
        for c in dev.submit_batch(batch)? {
            report.record(c.kind.is_write(), c.len, c.submitted, c.completes);
        }
        batch.clear();
        Ok(())
    };

    for at in arrivals {
        let (kind, offset) = stream.next_io();
        batch.push(IoRequest {
            kind,
            offset,
            len: spec.io_size,
            submit_time: at,
        });
        if batch.len() >= ring_size {
            flush(dev, &mut batch, &mut report)?;
        }
    }
    flush(dev, &mut batch, &mut report)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessPattern;
    use uc_blockdev::{DeviceInfo, IoResult};
    use uc_sim::SimDuration;

    /// A device with fixed service time and `servers`-way parallelism.
    struct TestDevice {
        service: SimDuration,
        servers: uc_sim::ParallelResource,
        submissions: Vec<SimTime>,
    }

    impl TestDevice {
        fn new(us: u64, servers: usize) -> Self {
            TestDevice {
                service: SimDuration::from_micros(us),
                servers: uc_sim::ParallelResource::new(servers),
                submissions: Vec::new(),
            }
        }
    }

    impl BlockDevice for TestDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("test", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            self.submissions.push(req.submit_time);
            Ok(self.servers.acquire(req.submit_time, self.service).1)
        }
    }

    #[test]
    fn closed_loop_respects_io_limit() {
        let mut dev = TestDevice::new(10, 4);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 4).with_io_limit(100);
        let report = run_job(&mut dev, &spec).unwrap();
        assert_eq!(report.ios, 100);
        assert_eq!(report.bytes, 100 * 4096);
    }

    #[test]
    fn closed_loop_throughput_matches_littles_law() {
        // QD4 on a 4-server 10 us device: 4 IOs complete every 10 us.
        let mut dev = TestDevice::new(10, 4);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 4).with_io_limit(4000);
        let report = run_job(&mut dev, &spec).unwrap();
        let expect_iops = 4.0 / 10e-6;
        assert!(
            (report.iops() - expect_iops).abs() / expect_iops < 0.02,
            "iops {} vs {}",
            report.iops(),
            expect_iops
        );
        assert_eq!(report.latency.max(), SimDuration::from_micros(10));
    }

    #[test]
    fn queue_depth_queues_on_saturated_device() {
        // QD8 on a 1-server device: average latency ~ QD x service.
        let mut dev = TestDevice::new(10, 1);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 8).with_io_limit(500);
        let report = run_job(&mut dev, &spec).unwrap();
        let avg = report.latency.mean().as_micros_f64();
        assert!((70.0..=90.0).contains(&avg), "avg {avg} us, expected ~80");
    }

    #[test]
    fn submissions_are_time_ordered() {
        let mut dev = TestDevice::new(7, 3);
        let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 5).with_io_limit(300);
        run_job(&mut dev, &spec).unwrap();
        for w in dev.submissions.windows(2) {
            assert!(w[1] >= w[0], "submission times must be non-decreasing");
        }
    }

    #[test]
    fn byte_limit_stops_early() {
        let mut dev = TestDevice::new(1, 1);
        let spec = JobSpec::new(AccessPattern::SeqWrite, 4096, 1).with_byte_limit(10 * 4096);
        let report = run_job(&mut dev, &spec).unwrap();
        assert_eq!(report.ios, 10);
    }

    #[test]
    fn time_limit_stops_by_clock() {
        let mut dev = TestDevice::new(100, 1);
        let spec = JobSpec::new(AccessPattern::SeqRead, 4096, 1)
            .with_time_limit(SimDuration::from_micros(1000));
        let report = run_job(&mut dev, &spec).unwrap();
        assert_eq!(report.ios, 10, "10 x 100 us fills the 1 ms budget");
    }

    #[test]
    fn open_loop_burst_accumulates_queueing() {
        let mut dev = TestDevice::new(10, 1);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 1);
        // 20 requests all arriving at t=0: the last waits ~190 us.
        let arrivals = vec![SimTime::ZERO; 20];
        let report = run_open_loop(&mut dev, &spec, arrivals).unwrap();
        assert_eq!(report.ios, 20);
        assert_eq!(report.latency.max(), SimDuration::from_micros(200));
        assert_eq!(report.latency.min(), SimDuration::from_micros(10));
    }

    #[test]
    fn open_loop_smooth_arrivals_avoid_queueing() {
        let mut dev = TestDevice::new(10, 1);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 1);
        let arrivals: Vec<SimTime> = (0..20)
            .map(|i| SimTime::ZERO + SimDuration::from_micros(20 * i))
            .collect();
        let report = run_open_loop(&mut dev, &spec, arrivals).unwrap();
        assert_eq!(report.latency.max(), SimDuration::from_micros(10));
    }

    #[test]
    fn invalid_span_surfaces_as_error() {
        let mut dev = TestDevice::new(1, 1);
        let spec = JobSpec::new(AccessPattern::RandRead, 4095, 1); // misaligned
        assert!(run_job(&mut dev, &spec).is_err());
    }

    #[test]
    fn chained_jobs_keep_device_time_monotone() {
        // Run one job, then a second starting at the first's finish: the
        // second job's latency must look like the first's, not inherit a
        // time-warp penalty.
        let mut dev = TestDevice::new(10, 2);
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 2).with_io_limit(100);
        let first = run_job(&mut dev, &spec).unwrap();
        let second_spec = spec.clone().with_start(first.finished_at);
        let second = run_job(&mut dev, &second_spec).unwrap();
        // In-flight stragglers from the first job may delay the second
        // job's very first I/Os slightly; anything beyond that tolerance
        // would indicate a time-warp bug.
        let a = first.latency.mean().as_nanos() as f64;
        let b = second.latency.mean().as_nanos() as f64;
        assert!((b - a).abs() / a < 0.05, "means {a} vs {b}");
        assert!((first.iops() - second.iops()).abs() / first.iops() < 0.05);
    }

    #[test]
    fn precondition_fills_whole_capacity() {
        let mut dev = TestDevice::new(1, 8);
        let t = precondition(&mut dev).unwrap();
        assert!(t > SimTime::ZERO);
        // 1 GiB at 1 MiB per I/O: 1024 I/Os to hit the byte limit, plus up
        // to QD-1 in-flight stragglers the closed loop had already issued.
        assert!((1024..1024 + 16).contains(&dev.submissions.len()));
    }

    /// The pre-queue-pair driver: one `submit` call per request. Kept as a
    /// reference implementation to pin the batched driver's schedule.
    fn run_job_one_at_a_time<D: BlockDevice + ?Sized>(
        dev: &mut D,
        spec: &JobSpec,
    ) -> Result<JobReport, IoError> {
        let (start, end) = job_span(dev, spec);
        let mut stream = AddressStream::new(spec.pattern, spec.io_size, start, end, spec.seed);
        let mut report = JobReport::new(spec.throughput_window, spec.start);
        let mut inflight: BinaryHeap<Reverse<Inflight>> = BinaryHeap::new();
        let submit = |dev: &mut D,
                      at: SimTime,
                      stream: &mut AddressStream,
                      inflight: &mut BinaryHeap<Reverse<Inflight>>|
         -> Result<(), IoError> {
            let (kind, offset) = stream.next_io();
            let req = IoRequest {
                kind,
                offset,
                len: spec.io_size,
                submit_time: at,
            };
            let completes = dev.submit(&req)?;
            inflight.push(Reverse(Inflight {
                completes,
                submitted: at,
                kind,
                len: spec.io_size,
            }));
            Ok(())
        };
        for _ in 0..spec.queue_depth {
            submit(dev, spec.start, &mut stream, &mut inflight)?;
        }
        while let Some(Reverse(done)) = inflight.pop() {
            report.record(
                done.kind.is_write(),
                done.len,
                done.submitted,
                done.completes,
            );
            if limit_reached(spec, &report) {
                break;
            }
            submit(dev, done.completes, &mut stream, &mut inflight)?;
        }
        Ok(report)
    }

    #[test]
    fn batched_driver_matches_one_at_a_time_schedule() {
        // servers=4 makes whole completion groups share an instant — the
        // case the batched drain must handle identically.
        for (us, servers, qd) in [(10, 4, 4), (7, 3, 8), (10, 1, 5), (3, 8, 16)] {
            for pattern in [
                AccessPattern::RandRead,
                AccessPattern::RandWrite,
                AccessPattern::SeqWrite,
                // Mixed kinds can tie on (completes, submitted) within one
                // multi-server completion group — the case the kind/len
                // tie-break in `Inflight::cmp` pins down.
                AccessPattern::Mixed {
                    write_ratio: 0.5,
                    random: true,
                },
            ] {
                let spec = JobSpec::new(pattern, 4096, qd).with_io_limit(500);
                let mut a = TestDevice::new(us, servers);
                let reference = run_job_one_at_a_time(&mut a, &spec).unwrap();
                let mut b = TestDevice::new(us, servers);
                let batched = run_job(&mut b, &spec).unwrap();
                assert_eq!(batched.ios, reference.ios);
                assert_eq!(batched.bytes, reference.bytes);
                assert_eq!(batched.finished_at, reference.finished_at);
                assert_eq!(batched.latency.mean(), reference.latency.mean());
                assert_eq!(batched.latency.max(), reference.latency.max());
                assert_eq!(
                    batched.latency.percentile(99.9),
                    reference.latency.percentile(99.9)
                );
                // The devices saw the same submission timeline too.
                assert_eq!(b.submissions, a.submissions);
            }
        }
    }

    #[test]
    fn open_loop_batching_preserves_arrival_schedule() {
        let arrivals: Vec<SimTime> = (0..50)
            .map(|i| SimTime::ZERO + SimDuration::from_micros(3 * (i / 4)))
            .collect();
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 8);
        let mut a = TestDevice::new(10, 2);
        let mut ref_report = JobReport::new(spec.throughput_window, spec.start);
        {
            let (start, end) = job_span(&a, &spec);
            let mut stream = AddressStream::new(spec.pattern, spec.io_size, start, end, spec.seed);
            for &at in &arrivals {
                let (kind, offset) = stream.next_io();
                let req = IoRequest {
                    kind,
                    offset,
                    len: spec.io_size,
                    submit_time: at,
                };
                let completes = a.submit(&req).unwrap();
                ref_report.record(kind.is_write(), spec.io_size, at, completes);
            }
        }
        let mut b = TestDevice::new(10, 2);
        let batched = run_open_loop(&mut b, &spec, arrivals).unwrap();
        assert_eq!(batched.ios, ref_report.ios);
        assert_eq!(batched.finished_at, ref_report.finished_at);
        assert_eq!(batched.latency.mean(), ref_report.latency.mean());
        assert_eq!(b.submissions, a.submissions);
    }

    #[test]
    fn paused_job_matches_straight_run_exactly() {
        // Pause at several byte milestones, checkpointing and resuming at
        // each; the final report and the device-observed submission
        // timeline must equal a straight run's.
        for (qd, servers) in [(1usize, 1usize), (4, 4), (8, 3)] {
            let spec = JobSpec::new(
                AccessPattern::Mixed {
                    write_ratio: 0.5,
                    random: true,
                },
                4096,
                qd,
            )
            .with_byte_limit(400 * 4096)
            .with_seed(77);
            let mut straight_dev = TestDevice::new(9, servers);
            let straight = run_job(&mut straight_dev, &spec).unwrap();

            let mut dev = TestDevice::new(9, servers);
            let mut job = ClosedLoopJob::start(&mut dev, &spec).unwrap();
            let mut milestone = 50 * 4096u64;
            loop {
                match job.run_until(&mut dev, milestone).unwrap() {
                    JobProgress::Finished => break,
                    JobProgress::Paused => {
                        // Freeze and thaw: the continuation must not care.
                        job = ClosedLoopJob::resume(job.checkpoint());
                        milestone += 50 * 4096;
                    }
                }
            }
            assert!(job.is_finished());
            let segmented = job.into_report();
            assert_eq!(segmented.ios, straight.ios);
            assert_eq!(segmented.bytes, straight.bytes);
            assert_eq!(segmented.finished_at, straight.finished_at);
            assert_eq!(segmented.latency.mean(), straight.latency.mean());
            assert_eq!(
                segmented.latency.percentile(99.9),
                straight.latency.percentile(99.9)
            );
            assert_eq!(dev.submissions, straight_dev.submissions);
        }
    }

    #[test]
    fn checkpoint_is_canonical_and_resume_lossless() {
        let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 6).with_byte_limit(200 * 4096);
        let mut dev = TestDevice::new(5, 2);
        let mut job = ClosedLoopJob::start(&mut dev, &spec).unwrap();
        job.run_until(&mut dev, 40 * 4096).unwrap();
        let cp = job.checkpoint();
        assert!(!cp.finished);
        assert_eq!(cp.inflight.len(), 6, "queue depth stays outstanding");
        assert!(
            cp.inflight
                .windows(2)
                .all(|w| (w[0].completes, w[0].submitted) <= (w[1].completes, w[1].submitted)),
            "inflight entries are in canonical schedule order"
        );
        // A resumed job's own checkpoint is identical (canonical form).
        let resumed = ClosedLoopJob::resume(cp.clone());
        let cp2 = resumed.checkpoint();
        assert_eq!(cp2.inflight, cp.inflight);
        assert_eq!(cp2.spec, cp.spec);
        assert_eq!(cp2.span, cp.span);
        assert_eq!(cp2.report.bytes, cp.report.bytes);
    }

    #[test]
    fn run_until_past_limit_reports_finished() {
        let spec = JobSpec::new(AccessPattern::SeqWrite, 4096, 2).with_io_limit(10);
        let mut dev = TestDevice::new(3, 1);
        let mut job = ClosedLoopJob::start(&mut dev, &spec).unwrap();
        assert_eq!(
            job.run_until(&mut dev, u64::MAX).unwrap(),
            JobProgress::Finished
        );
        // Idempotent once finished.
        assert_eq!(
            job.run_until(&mut dev, u64::MAX).unwrap(),
            JobProgress::Finished
        );
        assert_eq!(job.report().ios, 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut dev = TestDevice::new(3, 2);
            let spec = JobSpec::new(AccessPattern::RandWrite, 4096, 4)
                .with_io_limit(200)
                .with_seed(seed);
            let r = run_job(&mut dev, &spec).unwrap();
            (r.finished_at, r.latency.mean())
        };
        assert_eq!(run(5), run(5));
    }
}
