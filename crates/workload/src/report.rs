//! Job results.

use uc_metrics::{LatencyHistogram, ThroughputTracker};
use uc_sim::{SimDuration, SimTime};

/// Everything a job run measured.
///
/// Latency is collected overall and split by direction (the paper reports
/// read and write latency separately in Figure 2); throughput is collected
/// as a windowed timeline (Figure 3) and split by direction (Figure 5's
/// solid total and dashed write lines).
#[derive(Debug, Clone)]
pub struct JobReport {
    /// Latency of every I/O.
    pub latency: LatencyHistogram,
    /// Latency of reads only.
    pub read_latency: LatencyHistogram,
    /// Latency of writes only.
    pub write_latency: LatencyHistogram,
    /// Total throughput timeline.
    pub throughput: ThroughputTracker,
    /// Write-only throughput timeline.
    pub write_throughput: ThroughputTracker,
    /// I/Os completed.
    pub ios: u64,
    /// Bytes transferred.
    pub bytes: u64,
    /// The instant the job started submitting.
    pub started_at: SimTime,
    /// Completion instant of the last I/O.
    pub finished_at: SimTime,
}

impl JobReport {
    /// An empty report with the given throughput window, starting at
    /// `start` — the state every driver begins from. Useful for
    /// assembling synthetic results in tests and tools; drivers populate
    /// reports through their own execution paths.
    pub fn empty(window: SimDuration, start: SimTime) -> Self {
        JobReport::new(window, start)
    }

    pub(crate) fn new(window: SimDuration, start: SimTime) -> Self {
        JobReport {
            latency: LatencyHistogram::new(),
            read_latency: LatencyHistogram::new(),
            write_latency: LatencyHistogram::new(),
            throughput: ThroughputTracker::new(window),
            write_throughput: ThroughputTracker::new(window),
            ios: 0,
            bytes: 0,
            started_at: start,
            finished_at: start,
        }
    }

    /// The span between job start and the last completion.
    pub fn elapsed(&self) -> SimDuration {
        self.finished_at.saturating_since(self.started_at)
    }

    pub(crate) fn record(
        &mut self,
        is_write: bool,
        len: u32,
        submitted: SimTime,
        completed: SimTime,
    ) {
        let lat = completed.saturating_since(submitted);
        self.latency.record(lat);
        if is_write {
            self.write_latency.record(lat);
            self.write_throughput.record(completed, len as u64);
        } else {
            self.read_latency.record(lat);
        }
        self.throughput.record(completed, len as u64);
        self.ios += 1;
        self.bytes += len as u64;
        self.finished_at = self.finished_at.max(completed);
    }

    /// Overall average throughput in decimal GB/s.
    pub fn throughput_gbps(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.bytes as f64 / 1e9 / secs
        }
    }

    /// Overall I/O rate in operations per second.
    pub fn iops(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.ios as f64 / secs
        }
    }

    /// The paper's two headline latency metrics: `(average, P99.9)`.
    pub fn headline_latency(&self) -> (SimDuration, SimDuration) {
        self.latency.headline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_splits_by_direction() {
        let mut r = JobReport::new(SimDuration::from_secs(1), SimTime::ZERO);
        let t0 = SimTime::ZERO;
        r.record(true, 4096, t0, t0 + SimDuration::from_micros(10));
        r.record(false, 8192, t0, t0 + SimDuration::from_micros(50));
        assert_eq!(r.ios, 2);
        assert_eq!(r.bytes, 12288);
        assert_eq!(r.write_latency.count(), 1);
        assert_eq!(r.read_latency.count(), 1);
        assert_eq!(r.latency.count(), 2);
        assert_eq!(r.write_throughput.total_bytes(), 4096);
        assert_eq!(r.throughput.total_bytes(), 12288);
    }

    #[test]
    fn rates_derive_from_finish_time() {
        let mut r = JobReport::new(SimDuration::from_secs(1), SimTime::ZERO);
        let t0 = SimTime::ZERO;
        r.record(true, 500_000_000, t0, t0 + SimDuration::from_millis(500));
        assert!((r.throughput_gbps() - 1.0).abs() < 1e-9);
        assert!((r.iops() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rates_use_elapsed_not_absolute_time() {
        // A job starting late must not have its rates diluted.
        let start = SimTime::ZERO + SimDuration::from_secs(100);
        let mut r = JobReport::new(SimDuration::from_secs(1), start);
        r.record(
            true,
            500_000_000,
            start,
            start + SimDuration::from_millis(500),
        );
        assert!((r.throughput_gbps() - 1.0).abs() < 1e-9);
        assert_eq!(r.elapsed(), SimDuration::from_millis(500));
    }

    #[test]
    fn empty_report_is_zeroed() {
        let r = JobReport::new(SimDuration::from_secs(1), SimTime::ZERO);
        assert_eq!(r.throughput_gbps(), 0.0);
        assert_eq!(r.iops(), 0.0);
        let (avg, p999) = r.headline_latency();
        assert_eq!(avg, SimDuration::ZERO);
        assert_eq!(p999, SimDuration::ZERO);
    }
}
