//! FIO-like workload generation and execution.
//!
//! The paper drives its devices with the FIO benchmark across four access
//! patterns, I/O sizes from 4 KiB to 256 KiB, queue depths 1–32, and mixed
//! read/write ratios. This crate is that harness for the simulated devices:
//!
//! * [`JobSpec`] — a declarative job description (pattern × size × depth ×
//!   stop condition),
//! * [`run_job`] — a closed-loop driver keeping `queue_depth` requests
//!   outstanding against any [`BlockDevice`](uc_blockdev::BlockDevice),
//! * [`ClosedLoopJob`] — the same driver as a resumable object: pause at
//!   byte milestones, capture a [`DriverCheckpoint`], continue on another
//!   worker with a byte-identical schedule (the mechanism behind the
//!   segmented Figure 3 endurance run in `uc-core`),
//! * [`run_open_loop`] — an arrival-driven driver for burst/smoothing
//!   studies (Implication 4),
//! * [`JobReport`] — latency histograms (overall and split by direction)
//!   plus throughput timelines.
//!
//! # Example
//!
//! ```
//! use uc_ssd::{Ssd, SsdConfig};
//! use uc_workload::{AccessPattern, JobSpec, run_job};
//!
//! let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
//! let spec = JobSpec::new(AccessPattern::RandRead, 4096, 4)
//!     .with_io_limit(1000);
//! let report = run_job(&mut ssd, &spec)?;
//! assert_eq!(report.ios, 1000);
//! assert!(report.latency.mean().as_micros_f64() > 0.0);
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
mod persist;
mod replay;
mod report;
mod shaper;
mod spec;
mod stream;
mod trace;

pub use driver::{
    precondition, run_job, run_open_loop, ClosedLoopJob, DriverCheckpoint, InflightIo, JobProgress,
};
pub use replay::{
    replay_with, ReplayCheckpoint, ReplayConfig, ReplayError, ReplayMode, ReplayProgress,
    TraceReplayJob,
};
pub use report::JobReport;
pub use shaper::Shaper;
pub use spec::{AccessPattern, JobLimit, JobSpec};
pub use stream::AddressStream;
pub use trace::{replay, validate_entries, ParseTraceError, Trace, TraceEntry, TraceError};
