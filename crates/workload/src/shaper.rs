//! I/O shaping: Implication 4 as a reusable component.
//!
//! The paper's Implication 4 tells cloud software to "smooth the read/write
//! I/Os to be evenly distributed across the timeline and below the
//! guaranteed throughput budget". [`Shaper`] is that advice as a device
//! adapter: it wraps any [`BlockDevice`] and re-times submissions through a
//! token bucket, so bursts are queued at the host instead of slamming the
//! tenant budget (where they would queue anyway — at a higher bill).

use uc_blockdev::{BlockDevice, DeviceInfo, IoRequest, IoResult};
use uc_sim::TokenBucket;

/// A byte-rate shaping layer in front of a block device.
///
/// Every request reserves `len` tokens from a bucket refilled at the
/// shaping rate; the request is forwarded with its submission time moved
/// to the grant instant. Latency reported to the caller therefore includes
/// the shaping delay — exactly what an application-level pacer costs.
///
/// # Example
///
/// ```
/// use uc_blockdev::{BlockDevice, IoRequest};
/// use uc_sim::SimTime;
/// use uc_ssd::{Ssd, SsdConfig};
/// use uc_workload::Shaper;
///
/// let ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
/// // Pace at 100 MB/s with a 1 MiB burst allowance.
/// let mut shaped = Shaper::new(ssd, 100.0e6, 1 << 20);
/// let a = shaped.submit(&IoRequest::write(0, 1 << 20, SimTime::ZERO))?;
/// let b = shaped.submit(&IoRequest::write(1 << 20, 1 << 20, SimTime::ZERO))?;
/// // The second 1 MiB write was paced: ~10 ms behind the first.
/// assert!((b - a).as_secs_f64() > 8e-3);
/// # Ok::<(), uc_blockdev::IoError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Shaper<D> {
    inner: D,
    bucket: TokenBucket,
    shaped_requests: u64,
}

impl<D: BlockDevice> Shaper<D> {
    /// Wraps `inner`, shaping to `bytes_per_sec` with the given burst.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` or `burst_bytes` is not positive.
    pub fn new(inner: D, bytes_per_sec: f64, burst_bytes: u64) -> Self {
        Shaper {
            inner,
            bucket: TokenBucket::new(burst_bytes.max(1) as f64, bytes_per_sec),
            shaped_requests: 0,
        }
    }

    /// The shaping rate in bytes/second.
    pub fn rate(&self) -> f64 {
        self.bucket.rate()
    }

    /// Requests forwarded so far.
    pub fn shaped_requests(&self) -> u64 {
        self.shaped_requests
    }

    /// Gives back the wrapped device.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Borrows the wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: BlockDevice> BlockDevice for Shaper<D> {
    fn info(&self) -> DeviceInfo {
        self.inner.info()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        self.info().validate(req)?;
        let release = self.bucket.reserve(req.submit_time, req.len as u64);
        self.shaped_requests += 1;
        let shaped = IoRequest {
            submit_time: release,
            ..*req
        };
        self.inner.submit(&shaped)
    }

    fn idle_until(&mut self, now: uc_sim::SimTime) {
        self.inner.idle_until(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::{ParallelResource, SimDuration, SimTime};

    /// Fixed-latency test device.
    #[derive(Debug)]
    struct Fixed {
        pool: ParallelResource,
    }

    impl Fixed {
        fn new() -> Self {
            Fixed {
                pool: ParallelResource::new(64),
            }
        }
    }

    impl BlockDevice for Fixed {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("fixed", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            Ok(self
                .pool
                .acquire(req.submit_time, SimDuration::from_micros(50))
                .1)
        }
    }

    #[test]
    fn burst_rides_the_bucket_then_paces() {
        // 1 MB/s, 8 KiB burst: two 4 KiB writes pass, the third waits.
        let mut s = Shaper::new(Fixed::new(), 1e6, 8192);
        let a = s.submit(&IoRequest::write(0, 4096, SimTime::ZERO)).unwrap();
        let b = s
            .submit(&IoRequest::write(4096, 4096, SimTime::ZERO))
            .unwrap();
        let c = s
            .submit(&IoRequest::write(8192, 4096, SimTime::ZERO))
            .unwrap();
        assert_eq!(a, b);
        // 4096 bytes at 1 MB/s = 4.096 ms of pacing.
        assert!((c - a).as_secs_f64() > 4e-3, "paced by {}", c - a);
        assert_eq!(s.shaped_requests(), 3);
    }

    #[test]
    fn sustained_rate_equals_shaping_rate() {
        let mut s = Shaper::new(Fixed::new(), 10e6, 4096);
        let mut last = SimTime::ZERO;
        let n = 200u64;
        for i in 0..n {
            last = s
                .submit(&IoRequest::write((i % 100) * 4096, 4096, SimTime::ZERO))
                .unwrap();
        }
        let rate = (n * 4096) as f64 / last.as_secs_f64();
        assert!(
            (rate - 10e6).abs() / 10e6 < 0.05,
            "shaped rate {rate} B/s vs 10e6"
        );
    }

    #[test]
    fn validation_happens_before_shaping() {
        let mut s = Shaper::new(Fixed::new(), 1e6, 4096);
        assert!(s.submit(&IoRequest::write(3, 4096, SimTime::ZERO)).is_err());
        // The failed request must not consume tokens.
        let ok = s.submit(&IoRequest::write(0, 4096, SimTime::ZERO)).unwrap();
        assert_eq!(ok, SimTime::ZERO + SimDuration::from_micros(50));
    }

    #[test]
    fn info_and_unwrap_pass_through() {
        let s = Shaper::new(Fixed::new(), 1e6, 4096);
        assert_eq!(s.info().capacity(), 1 << 30);
        assert_eq!(s.rate(), 1e6);
        let _inner: Fixed = s.into_inner();
    }
}
