//! Offset/direction generation.

use crate::AccessPattern;
use uc_blockdev::IoKind;
use uc_sim::SimRng;

/// Generates the `(kind, offset)` sequence of a job.
///
/// Offsets are aligned to the I/O size and wrap within the span.
/// Sequential patterns keep separate cursors for reads and writes (as FIO
/// does for mixed sequential jobs); random patterns draw aligned uniform
/// offsets.
///
/// # Example
///
/// ```
/// use uc_workload::{AccessPattern, AddressStream};
///
/// let mut s = AddressStream::new(AccessPattern::SeqWrite, 4096, 0, 3 * 4096, 1);
/// let offsets: Vec<u64> = (0..4).map(|_| s.next_io().1).collect();
/// assert_eq!(offsets, vec![0, 4096, 8192, 0]); // wraps at span end
/// ```
#[derive(Debug, Clone)]
pub struct AddressStream {
    pattern: AccessPattern,
    io_size: u64,
    start: u64,
    slots: u64,
    read_cursor: u64,
    write_cursor: u64,
    rng: SimRng,
}

impl AddressStream {
    /// A stream over `[start, end)` with the given pattern and I/O size.
    ///
    /// # Panics
    ///
    /// Panics if the span cannot hold a single I/O.
    pub fn new(pattern: AccessPattern, io_size: u32, start: u64, end: u64, seed: u64) -> Self {
        let io_size = io_size as u64;
        assert!(
            end > start && end - start >= io_size,
            "span [{start}, {end}) cannot hold one {io_size}-byte i/o"
        );
        let slots = (end - start) / io_size;
        AddressStream {
            pattern,
            io_size,
            start,
            slots,
            read_cursor: 0,
            write_cursor: 0,
            rng: SimRng::new(seed),
        }
    }

    /// Number of distinct aligned offsets in the span.
    pub fn slots(&self) -> u64 {
        self.slots
    }

    /// The next `(kind, offset)` pair.
    pub fn next_io(&mut self) -> (IoKind, u64) {
        let kind = match self.pattern {
            AccessPattern::RandRead | AccessPattern::SeqRead => IoKind::Read,
            AccessPattern::RandWrite | AccessPattern::SeqWrite => IoKind::Write,
            AccessPattern::Mixed { write_ratio, .. }
            | AccessPattern::Hotspot { write_ratio, .. } => {
                if self.rng.chance(write_ratio) {
                    IoKind::Write
                } else {
                    IoKind::Read
                }
            }
        };
        let slot = match self.pattern {
            AccessPattern::Hotspot {
                hot_fraction,
                hot_probability,
                ..
            } => {
                // The hot region occupies the head of the span; at least
                // one slot so degenerate fractions still work.
                let hot_slots = ((self.slots as f64 * hot_fraction.clamp(0.0, 1.0)) as u64)
                    .clamp(1, self.slots);
                if self.rng.chance(hot_probability) {
                    self.rng.range_u64(0, hot_slots)
                } else if hot_slots < self.slots {
                    self.rng.range_u64(hot_slots, self.slots)
                } else {
                    self.rng.range_u64(0, self.slots)
                }
            }
            _ if self.pattern.is_random() => self.rng.range_u64(0, self.slots),
            _ => {
                let cursor = match kind {
                    IoKind::Read => &mut self.read_cursor,
                    IoKind::Write => &mut self.write_cursor,
                };
                let s = *cursor % self.slots;
                *cursor += 1;
                s
            }
        };
        (kind, self.start + slot * self.io_size)
    }
}

impl uc_persist::Persist for AddressStream {
    fn encode(&self, w: &mut uc_persist::Encoder) {
        self.pattern.encode(w);
        w.put_u64(self.io_size);
        w.put_u64(self.start);
        w.put_u64(self.slots);
        w.put_u64(self.read_cursor);
        w.put_u64(self.write_cursor);
        self.rng.encode(w);
    }

    fn decode(r: &mut uc_persist::Decoder<'_>) -> Result<Self, uc_persist::DecodeError> {
        let stream = AddressStream {
            pattern: AccessPattern::decode(r)?,
            io_size: r.get_u64()?,
            start: r.get_u64()?,
            slots: r.get_u64()?,
            read_cursor: r.get_u64()?,
            write_cursor: r.get_u64()?,
            rng: SimRng::decode(r)?,
        };
        if stream.io_size == 0 || stream.slots == 0 {
            return Err(uc_persist::DecodeError::InvalidValue {
                what: "AddressStream span",
            });
        }
        Ok(stream)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_wraps() {
        let mut s = AddressStream::new(AccessPattern::SeqRead, 4096, 8192, 8192 + 2 * 4096, 1);
        assert_eq!(s.next_io(), (IoKind::Read, 8192));
        assert_eq!(s.next_io(), (IoKind::Read, 8192 + 4096));
        assert_eq!(s.next_io(), (IoKind::Read, 8192));
    }

    #[test]
    fn random_offsets_are_aligned_and_in_span() {
        let mut s =
            AddressStream::new(AccessPattern::RandWrite, 8192, 16384, 16384 + 100 * 8192, 2);
        for _ in 0..1000 {
            let (kind, off) = s.next_io();
            assert_eq!(kind, IoKind::Write);
            assert!(off >= 16384);
            assert!(off + 8192 <= 16384 + 100 * 8192);
            assert_eq!((off - 16384) % 8192, 0);
        }
    }

    #[test]
    fn mixed_ratio_is_respected() {
        let mut s = AddressStream::new(
            AccessPattern::Mixed {
                write_ratio: 0.3,
                random: true,
            },
            4096,
            0,
            4096 * 1000,
            3,
        );
        let n = 20_000;
        let writes = (0..n).filter(|_| s.next_io().0 == IoKind::Write).count();
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.3).abs() < 0.02, "write fraction {frac}");
    }

    #[test]
    fn mixed_sequential_keeps_separate_cursors() {
        let mut s = AddressStream::new(
            AccessPattern::Mixed {
                write_ratio: 0.5,
                random: false,
            },
            4096,
            0,
            4096 * 1000,
            4,
        );
        let mut last_read = None;
        let mut last_write = None;
        for _ in 0..100 {
            let (kind, off) = s.next_io();
            match kind {
                IoKind::Read => {
                    if let Some(prev) = last_read {
                        assert_eq!(off, prev + 4096);
                    }
                    last_read = Some(off);
                }
                IoKind::Write => {
                    if let Some(prev) = last_write {
                        assert_eq!(off, prev + 4096);
                    }
                    last_write = Some(off);
                }
            }
        }
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let mut s = AddressStream::new(
            AccessPattern::Hotspot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
                write_ratio: 1.0,
            },
            4096,
            0,
            4096 * 1000,
            5,
        );
        let n = 20_000;
        let hot_end = 4096 * 100; // first 10% of the span
        let hot_hits = (0..n).filter(|_| s.next_io().1 < hot_end).count();
        let frac = hot_hits as f64 / n as f64;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn hotspot_cold_accesses_stay_out_of_hot_region() {
        let mut s = AddressStream::new(
            AccessPattern::Hotspot {
                hot_fraction: 0.5,
                hot_probability: 0.0,
                write_ratio: 0.5,
            },
            4096,
            0,
            4096 * 10,
            6,
        );
        for _ in 0..200 {
            let (_, off) = s.next_io();
            assert!(off >= 4096 * 5, "cold access {off} landed in hot region");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let collect = |seed| {
            let mut s = AddressStream::new(AccessPattern::RandRead, 4096, 0, 4096 * 50, seed);
            (0..20).map(|_| s.next_io().1).collect::<Vec<_>>()
        };
        assert_eq!(collect(9), collect(9));
        assert_ne!(collect(9), collect(10));
    }

    #[test]
    #[should_panic(expected = "cannot hold")]
    fn tiny_span_rejected() {
        let _ = AddressStream::new(AccessPattern::RandRead, 8192, 0, 4096, 1);
    }
}
