//! [`Persist`] codecs for the workload layer: job specifications,
//! reports, and the paused-driver checkpoint.
//!
//! [`DriverCheckpoint`] is the piece that makes an *interrupted run*
//! durable: together with the device's own persisted checkpoint it is
//! everything a crashed fig3 endurance process needs to continue exactly
//! where it was killed.

use crate::driver::InflightIo;
use crate::{
    AccessPattern, AddressStream, DriverCheckpoint, JobLimit, JobReport, JobSpec, ReplayCheckpoint,
    ReplayConfig, ReplayMode, TraceEntry,
};
use uc_blockdev::IoKind;
use uc_metrics::{LatencyHistogram, ThroughputTracker};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{SimDuration, SimTime};

/// Variant tags of the [`AccessPattern`] wire form.
mod pattern_tag {
    pub const RAND_READ: u8 = 0;
    pub const RAND_WRITE: u8 = 1;
    pub const SEQ_READ: u8 = 2;
    pub const SEQ_WRITE: u8 = 3;
    pub const MIXED: u8 = 4;
    pub const HOTSPOT: u8 = 5;
}

impl Persist for AccessPattern {
    fn encode(&self, w: &mut Encoder) {
        match self {
            AccessPattern::RandRead => w.put_u8(pattern_tag::RAND_READ),
            AccessPattern::RandWrite => w.put_u8(pattern_tag::RAND_WRITE),
            AccessPattern::SeqRead => w.put_u8(pattern_tag::SEQ_READ),
            AccessPattern::SeqWrite => w.put_u8(pattern_tag::SEQ_WRITE),
            AccessPattern::Mixed {
                write_ratio,
                random,
            } => {
                w.put_u8(pattern_tag::MIXED);
                w.put_f64(*write_ratio);
                w.put_bool(*random);
            }
            AccessPattern::Hotspot {
                hot_fraction,
                hot_probability,
                write_ratio,
            } => {
                w.put_u8(pattern_tag::HOTSPOT);
                w.put_f64(*hot_fraction);
                w.put_f64(*hot_probability);
                w.put_f64(*write_ratio);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            pattern_tag::RAND_READ => Ok(AccessPattern::RandRead),
            pattern_tag::RAND_WRITE => Ok(AccessPattern::RandWrite),
            pattern_tag::SEQ_READ => Ok(AccessPattern::SeqRead),
            pattern_tag::SEQ_WRITE => Ok(AccessPattern::SeqWrite),
            pattern_tag::MIXED => Ok(AccessPattern::Mixed {
                write_ratio: r.get_f64()?,
                random: r.get_bool()?,
            }),
            pattern_tag::HOTSPOT => Ok(AccessPattern::Hotspot {
                hot_fraction: r.get_f64()?,
                hot_probability: r.get_f64()?,
                write_ratio: r.get_f64()?,
            }),
            _ => Err(DecodeError::InvalidValue {
                what: "AccessPattern tag",
            }),
        }
    }
}

impl Persist for JobLimit {
    fn encode(&self, w: &mut Encoder) {
        match self {
            JobLimit::Ios(n) => {
                w.put_u8(0);
                w.put_u64(*n);
            }
            JobLimit::Bytes(b) => {
                w.put_u8(1);
                w.put_u64(*b);
            }
            JobLimit::Elapsed(d) => {
                w.put_u8(2);
                d.encode(w);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(JobLimit::Ios(r.get_u64()?)),
            1 => Ok(JobLimit::Bytes(r.get_u64()?)),
            2 => Ok(JobLimit::Elapsed(SimDuration::decode(r)?)),
            _ => Err(DecodeError::InvalidValue {
                what: "JobLimit tag",
            }),
        }
    }
}

impl Persist for JobSpec {
    fn encode(&self, w: &mut Encoder) {
        self.pattern.encode(w);
        w.put_u32(self.io_size);
        self.queue_depth.encode(w);
        self.span.encode(w);
        self.limit.encode(w);
        w.put_u64(self.seed);
        self.throughput_window.encode(w);
        self.start.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let spec = JobSpec {
            pattern: AccessPattern::decode(r)?,
            io_size: r.get_u32()?,
            queue_depth: usize::decode(r)?,
            span: Option::<(u64, u64)>::decode(r)?,
            limit: JobLimit::decode(r)?,
            seed: r.get_u64()?,
            throughput_window: SimDuration::decode(r)?,
            start: SimTime::decode(r)?,
        };
        if spec.io_size == 0 || spec.queue_depth == 0 {
            return Err(DecodeError::InvalidValue {
                what: "JobSpec io_size/queue_depth",
            });
        }
        Ok(spec)
    }
}

impl Persist for JobReport {
    fn encode(&self, w: &mut Encoder) {
        self.latency.encode(w);
        self.read_latency.encode(w);
        self.write_latency.encode(w);
        self.throughput.encode(w);
        self.write_throughput.encode(w);
        w.put_u64(self.ios);
        w.put_u64(self.bytes);
        self.started_at.encode(w);
        self.finished_at.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(JobReport {
            latency: LatencyHistogram::decode(r)?,
            read_latency: LatencyHistogram::decode(r)?,
            write_latency: LatencyHistogram::decode(r)?,
            throughput: ThroughputTracker::decode(r)?,
            write_throughput: ThroughputTracker::decode(r)?,
            ios: r.get_u64()?,
            bytes: r.get_u64()?,
            started_at: SimTime::decode(r)?,
            finished_at: SimTime::decode(r)?,
        })
    }
}

impl Persist for InflightIo {
    fn encode(&self, w: &mut Encoder) {
        self.completes.encode(w);
        self.submitted.encode(w);
        self.kind.encode(w);
        w.put_u32(self.len);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(InflightIo {
            completes: SimTime::decode(r)?,
            submitted: SimTime::decode(r)?,
            kind: IoKind::decode(r)?,
            len: r.get_u32()?,
        })
    }
}

impl Persist for TraceEntry {
    fn encode(&self, w: &mut Encoder) {
        self.at.encode(w);
        self.kind.encode(w);
        w.put_u64(self.offset);
        w.put_u32(self.len);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(TraceEntry {
            at: SimTime::decode(r)?,
            kind: IoKind::decode(r)?,
            offset: r.get_u64()?,
            len: r.get_u32()?,
        })
    }
}

impl Persist for ReplayMode {
    fn encode(&self, w: &mut Encoder) {
        match self {
            ReplayMode::OpenLoop => w.put_u8(0),
            ReplayMode::ClosedLoop { queue_depth } => {
                w.put_u8(1);
                queue_depth.encode(w);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(ReplayMode::OpenLoop),
            1 => {
                let queue_depth = usize::decode(r)?;
                if queue_depth == 0 {
                    return Err(DecodeError::InvalidValue {
                        what: "ReplayMode queue_depth",
                    });
                }
                Ok(ReplayMode::ClosedLoop { queue_depth })
            }
            _ => Err(DecodeError::InvalidValue {
                what: "ReplayMode tag",
            }),
        }
    }
}

impl Persist for ReplayConfig {
    fn encode(&self, w: &mut Encoder) {
        self.mode.encode(w);
        self.window.encode(w);
        w.put_f64(self.speed);
        self.ring.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let config = ReplayConfig {
            mode: ReplayMode::decode(r)?,
            window: SimDuration::decode(r)?,
            speed: r.get_f64()?,
            ring: usize::decode(r)?,
        };
        if !(config.speed.is_finite() && config.speed > 0.0)
            || config.ring == 0
            || config.window.is_zero()
        {
            return Err(DecodeError::InvalidValue {
                what: "ReplayConfig window/speed/ring",
            });
        }
        Ok(config)
    }
}

impl Persist for ReplayCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.config.encode(w);
        w.put_u64(self.position);
        self.report.encode(w);
        self.inflight.encode(w);
        w.put_bool(self.finished);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(ReplayCheckpoint {
            config: ReplayConfig::decode(r)?,
            position: r.get_u64()?,
            report: JobReport::decode(r)?,
            inflight: Vec::<InflightIo>::decode(r)?,
            finished: r.get_bool()?,
        })
    }
}

impl Persist for DriverCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.spec.encode(w);
        self.span.encode(w);
        self.stream.encode(w);
        self.report.encode(w);
        self.inflight.encode(w);
        w.put_bool(self.finished);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DriverCheckpoint {
            spec: JobSpec::decode(r)?,
            span: <(u64, u64)>::decode(r)?,
            stream: AddressStream::decode(r)?,
            report: JobReport::decode(r)?,
            inflight: Vec::<InflightIo>::decode(r)?,
            finished: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosedLoopJob;
    use uc_blockdev::{BlockDevice, DeviceInfo, IoRequest, IoResult};

    /// A deterministic 2-server test device.
    struct TestDevice {
        servers: uc_sim::ParallelResource,
    }

    impl BlockDevice for TestDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("test", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            Ok(self
                .servers
                .acquire(req.submit_time, SimDuration::from_micros(9))
                .1)
        }
    }

    fn round_trip_driver(checkpoint: &DriverCheckpoint) -> DriverCheckpoint {
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = DriverCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn paused_driver_checkpoint_round_trips_and_continues() {
        let spec = JobSpec::new(
            AccessPattern::Mixed {
                write_ratio: 0.5,
                random: true,
            },
            4096,
            6,
        )
        .with_byte_limit(300 * 4096)
        .with_seed(123);
        let mut dev = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut job = ClosedLoopJob::start(&mut dev, &spec).unwrap();
        job.run_until(&mut dev, 80 * 4096).unwrap();
        let checkpoint = job.checkpoint();
        let back = round_trip_driver(&checkpoint);
        assert_eq!(back.spec, checkpoint.spec);
        assert_eq!(back.span, checkpoint.span);
        assert_eq!(back.inflight, checkpoint.inflight);
        assert_eq!(back.finished, checkpoint.finished);
        assert_eq!(back.report.ios, checkpoint.report.ios);
        assert_eq!(back.report.bytes, checkpoint.report.bytes);

        // The straight continuation and the decoded continuation finish
        // with byte-identical reports.
        let mut dev_b = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut dev_c = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        // Devices are stateful; replay the prefix schedule into both by
        // resuming from equal checkpoints (the test device's relevant
        // state is entirely in the driver's virtual-time bookkeeping).
        let mut straight = ClosedLoopJob::resume(checkpoint);
        let mut decoded = ClosedLoopJob::resume(back);
        straight.run_until(&mut dev_b, u64::MAX).unwrap();
        decoded.run_until(&mut dev_c, u64::MAX).unwrap();
        assert_eq!(straight.report().ios, decoded.report().ios);
        assert_eq!(straight.report().finished_at, decoded.report().finished_at);
        assert_eq!(
            straight.report().latency.mean(),
            decoded.report().latency.mean()
        );
    }

    #[test]
    fn every_pattern_and_limit_round_trips() {
        let patterns = [
            AccessPattern::RandRead,
            AccessPattern::RandWrite,
            AccessPattern::SeqRead,
            AccessPattern::SeqWrite,
            AccessPattern::Mixed {
                write_ratio: 0.3,
                random: false,
            },
            AccessPattern::Hotspot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
                write_ratio: 0.5,
            },
        ];
        for pattern in patterns {
            let mut w = Encoder::new();
            pattern.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(
                AccessPattern::decode(&mut Decoder::new(&bytes)),
                Ok(pattern)
            );
        }
        for limit in [
            JobLimit::Ios(5),
            JobLimit::Bytes(1 << 30),
            JobLimit::Elapsed(SimDuration::from_millis(3)),
        ] {
            let mut w = Encoder::new();
            limit.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(JobLimit::decode(&mut Decoder::new(&bytes)), Ok(limit));
        }
    }

    #[test]
    fn replay_checkpoint_round_trips_and_continues() {
        use crate::{ReplayConfig, Trace, TraceReplayJob};
        let trace = Trace::bursty_writes(4, 9, SimDuration::from_millis(1), 4096, 4 << 20, 11);
        let config = ReplayConfig::closed_loop(5).with_speed(2.0);
        let mut dev = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut job = TraceReplayJob::start(&dev, &trace, &config).unwrap();
        job.run_until(&mut dev, &trace, 15).unwrap();
        let checkpoint = job.checkpoint();

        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = ReplayCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back.config, checkpoint.config);
        assert_eq!(back.position, checkpoint.position);
        assert_eq!(back.inflight, checkpoint.inflight);
        assert_eq!(back.finished, checkpoint.finished);

        // The decoded continuation finishes byte-identically.
        let mut dev_a = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut dev_b = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut straight = TraceReplayJob::resume(checkpoint);
        let mut decoded = TraceReplayJob::resume(back);
        straight.run_until(&mut dev_a, &trace, usize::MAX).unwrap();
        decoded.run_until(&mut dev_b, &trace, usize::MAX).unwrap();
        assert_eq!(straight.report().ios, decoded.report().ios);
        assert_eq!(straight.report().finished_at, decoded.report().finished_at);
        assert_eq!(
            straight.report().latency.mean(),
            decoded.report().latency.mean()
        );
    }

    #[test]
    fn trace_entry_and_replay_config_round_trip() {
        use crate::ReplayMode;
        let entry = TraceEntry {
            at: SimTime::from_nanos(12345),
            kind: IoKind::Write,
            offset: 1 << 20,
            len: 8192,
        };
        let mut w = Encoder::new();
        entry.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(TraceEntry::decode(&mut Decoder::new(&bytes)), Ok(entry));

        for config in [
            ReplayConfig::open_loop(),
            ReplayConfig::closed_loop(7)
                .with_speed(12.5)
                .with_window(SimDuration::from_millis(7))
                .with_ring(3),
        ] {
            let mut w = Encoder::new();
            config.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(ReplayConfig::decode(&mut Decoder::new(&bytes)), Ok(config));
        }
        // Corrupt configs are typed, not panics.
        let mut w = Encoder::new();
        ReplayConfig::open_loop().encode(&mut w);
        let mut bytes = w.into_bytes();
        // speed is the f64 after mode tag (1) + window (8).
        bytes[9..17].fill(0);
        assert!(matches!(
            ReplayConfig::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
        let mut w = Encoder::new();
        w.put_u8(9); // unknown mode tag
        let bytes = w.into_bytes();
        assert!(matches!(
            ReplayMode::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue { .. })
        ));
    }

    #[test]
    fn invalid_spec_fields_are_typed() {
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 4);
        let mut w = Encoder::new();
        spec.encode(&mut w);
        let mut bytes = w.into_bytes();
        // io_size is the 4 bytes right after the 1-byte pattern tag.
        bytes[1..5].fill(0);
        assert!(matches!(
            JobSpec::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "JobSpec io_size/queue_depth"
            })
        ));
    }
}
