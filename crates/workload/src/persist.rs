//! [`Persist`] codecs for the workload layer: job specifications,
//! reports, and the paused-driver checkpoint.
//!
//! [`DriverCheckpoint`] is the piece that makes an *interrupted run*
//! durable: together with the device's own persisted checkpoint it is
//! everything a crashed fig3 endurance process needs to continue exactly
//! where it was killed.

use crate::driver::InflightIo;
use crate::{AccessPattern, AddressStream, DriverCheckpoint, JobLimit, JobReport, JobSpec};
use uc_blockdev::IoKind;
use uc_metrics::{LatencyHistogram, ThroughputTracker};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};
use uc_sim::{SimDuration, SimTime};

/// Variant tags of the [`AccessPattern`] wire form.
mod pattern_tag {
    pub const RAND_READ: u8 = 0;
    pub const RAND_WRITE: u8 = 1;
    pub const SEQ_READ: u8 = 2;
    pub const SEQ_WRITE: u8 = 3;
    pub const MIXED: u8 = 4;
    pub const HOTSPOT: u8 = 5;
}

impl Persist for AccessPattern {
    fn encode(&self, w: &mut Encoder) {
        match self {
            AccessPattern::RandRead => w.put_u8(pattern_tag::RAND_READ),
            AccessPattern::RandWrite => w.put_u8(pattern_tag::RAND_WRITE),
            AccessPattern::SeqRead => w.put_u8(pattern_tag::SEQ_READ),
            AccessPattern::SeqWrite => w.put_u8(pattern_tag::SEQ_WRITE),
            AccessPattern::Mixed {
                write_ratio,
                random,
            } => {
                w.put_u8(pattern_tag::MIXED);
                w.put_f64(*write_ratio);
                w.put_bool(*random);
            }
            AccessPattern::Hotspot {
                hot_fraction,
                hot_probability,
                write_ratio,
            } => {
                w.put_u8(pattern_tag::HOTSPOT);
                w.put_f64(*hot_fraction);
                w.put_f64(*hot_probability);
                w.put_f64(*write_ratio);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            pattern_tag::RAND_READ => Ok(AccessPattern::RandRead),
            pattern_tag::RAND_WRITE => Ok(AccessPattern::RandWrite),
            pattern_tag::SEQ_READ => Ok(AccessPattern::SeqRead),
            pattern_tag::SEQ_WRITE => Ok(AccessPattern::SeqWrite),
            pattern_tag::MIXED => Ok(AccessPattern::Mixed {
                write_ratio: r.get_f64()?,
                random: r.get_bool()?,
            }),
            pattern_tag::HOTSPOT => Ok(AccessPattern::Hotspot {
                hot_fraction: r.get_f64()?,
                hot_probability: r.get_f64()?,
                write_ratio: r.get_f64()?,
            }),
            _ => Err(DecodeError::InvalidValue {
                what: "AccessPattern tag",
            }),
        }
    }
}

impl Persist for JobLimit {
    fn encode(&self, w: &mut Encoder) {
        match self {
            JobLimit::Ios(n) => {
                w.put_u8(0);
                w.put_u64(*n);
            }
            JobLimit::Bytes(b) => {
                w.put_u8(1);
                w.put_u64(*b);
            }
            JobLimit::Elapsed(d) => {
                w.put_u8(2);
                d.encode(w);
            }
        }
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(JobLimit::Ios(r.get_u64()?)),
            1 => Ok(JobLimit::Bytes(r.get_u64()?)),
            2 => Ok(JobLimit::Elapsed(SimDuration::decode(r)?)),
            _ => Err(DecodeError::InvalidValue {
                what: "JobLimit tag",
            }),
        }
    }
}

impl Persist for JobSpec {
    fn encode(&self, w: &mut Encoder) {
        self.pattern.encode(w);
        w.put_u32(self.io_size);
        self.queue_depth.encode(w);
        self.span.encode(w);
        self.limit.encode(w);
        w.put_u64(self.seed);
        self.throughput_window.encode(w);
        self.start.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        let spec = JobSpec {
            pattern: AccessPattern::decode(r)?,
            io_size: r.get_u32()?,
            queue_depth: usize::decode(r)?,
            span: Option::<(u64, u64)>::decode(r)?,
            limit: JobLimit::decode(r)?,
            seed: r.get_u64()?,
            throughput_window: SimDuration::decode(r)?,
            start: SimTime::decode(r)?,
        };
        if spec.io_size == 0 || spec.queue_depth == 0 {
            return Err(DecodeError::InvalidValue {
                what: "JobSpec io_size/queue_depth",
            });
        }
        Ok(spec)
    }
}

impl Persist for JobReport {
    fn encode(&self, w: &mut Encoder) {
        self.latency.encode(w);
        self.read_latency.encode(w);
        self.write_latency.encode(w);
        self.throughput.encode(w);
        self.write_throughput.encode(w);
        w.put_u64(self.ios);
        w.put_u64(self.bytes);
        self.started_at.encode(w);
        self.finished_at.encode(w);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(JobReport {
            latency: LatencyHistogram::decode(r)?,
            read_latency: LatencyHistogram::decode(r)?,
            write_latency: LatencyHistogram::decode(r)?,
            throughput: ThroughputTracker::decode(r)?,
            write_throughput: ThroughputTracker::decode(r)?,
            ios: r.get_u64()?,
            bytes: r.get_u64()?,
            started_at: SimTime::decode(r)?,
            finished_at: SimTime::decode(r)?,
        })
    }
}

impl Persist for InflightIo {
    fn encode(&self, w: &mut Encoder) {
        self.completes.encode(w);
        self.submitted.encode(w);
        self.kind.encode(w);
        w.put_u32(self.len);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(InflightIo {
            completes: SimTime::decode(r)?,
            submitted: SimTime::decode(r)?,
            kind: IoKind::decode(r)?,
            len: r.get_u32()?,
        })
    }
}

impl Persist for DriverCheckpoint {
    fn encode(&self, w: &mut Encoder) {
        self.spec.encode(w);
        self.span.encode(w);
        self.stream.encode(w);
        self.report.encode(w);
        self.inflight.encode(w);
        w.put_bool(self.finished);
    }

    fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
        Ok(DriverCheckpoint {
            spec: JobSpec::decode(r)?,
            span: <(u64, u64)>::decode(r)?,
            stream: AddressStream::decode(r)?,
            report: JobReport::decode(r)?,
            inflight: Vec::<InflightIo>::decode(r)?,
            finished: r.get_bool()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ClosedLoopJob;
    use uc_blockdev::{BlockDevice, DeviceInfo, IoRequest, IoResult};

    /// A deterministic 2-server test device.
    struct TestDevice {
        servers: uc_sim::ParallelResource,
    }

    impl BlockDevice for TestDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("test", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            Ok(self
                .servers
                .acquire(req.submit_time, SimDuration::from_micros(9))
                .1)
        }
    }

    fn round_trip_driver(checkpoint: &DriverCheckpoint) -> DriverCheckpoint {
        let mut w = Encoder::new();
        checkpoint.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Decoder::new(&bytes);
        let back = DriverCheckpoint::decode(&mut r).unwrap();
        r.finish().unwrap();
        back
    }

    #[test]
    fn paused_driver_checkpoint_round_trips_and_continues() {
        let spec = JobSpec::new(
            AccessPattern::Mixed {
                write_ratio: 0.5,
                random: true,
            },
            4096,
            6,
        )
        .with_byte_limit(300 * 4096)
        .with_seed(123);
        let mut dev = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut job = ClosedLoopJob::start(&mut dev, &spec).unwrap();
        job.run_until(&mut dev, 80 * 4096).unwrap();
        let checkpoint = job.checkpoint();
        let back = round_trip_driver(&checkpoint);
        assert_eq!(back.spec, checkpoint.spec);
        assert_eq!(back.span, checkpoint.span);
        assert_eq!(back.inflight, checkpoint.inflight);
        assert_eq!(back.finished, checkpoint.finished);
        assert_eq!(back.report.ios, checkpoint.report.ios);
        assert_eq!(back.report.bytes, checkpoint.report.bytes);

        // The straight continuation and the decoded continuation finish
        // with byte-identical reports.
        let mut dev_b = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        let mut dev_c = TestDevice {
            servers: uc_sim::ParallelResource::new(2),
        };
        // Devices are stateful; replay the prefix schedule into both by
        // resuming from equal checkpoints (the test device's relevant
        // state is entirely in the driver's virtual-time bookkeeping).
        let mut straight = ClosedLoopJob::resume(checkpoint);
        let mut decoded = ClosedLoopJob::resume(back);
        straight.run_until(&mut dev_b, u64::MAX).unwrap();
        decoded.run_until(&mut dev_c, u64::MAX).unwrap();
        assert_eq!(straight.report().ios, decoded.report().ios);
        assert_eq!(straight.report().finished_at, decoded.report().finished_at);
        assert_eq!(
            straight.report().latency.mean(),
            decoded.report().latency.mean()
        );
    }

    #[test]
    fn every_pattern_and_limit_round_trips() {
        let patterns = [
            AccessPattern::RandRead,
            AccessPattern::RandWrite,
            AccessPattern::SeqRead,
            AccessPattern::SeqWrite,
            AccessPattern::Mixed {
                write_ratio: 0.3,
                random: false,
            },
            AccessPattern::Hotspot {
                hot_fraction: 0.1,
                hot_probability: 0.9,
                write_ratio: 0.5,
            },
        ];
        for pattern in patterns {
            let mut w = Encoder::new();
            pattern.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(
                AccessPattern::decode(&mut Decoder::new(&bytes)),
                Ok(pattern)
            );
        }
        for limit in [
            JobLimit::Ios(5),
            JobLimit::Bytes(1 << 30),
            JobLimit::Elapsed(SimDuration::from_millis(3)),
        ] {
            let mut w = Encoder::new();
            limit.encode(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(JobLimit::decode(&mut Decoder::new(&bytes)), Ok(limit));
        }
    }

    #[test]
    fn invalid_spec_fields_are_typed() {
        let spec = JobSpec::new(AccessPattern::RandRead, 4096, 4);
        let mut w = Encoder::new();
        spec.encode(&mut w);
        let mut bytes = w.into_bytes();
        // io_size is the 4 bytes right after the 1-byte pattern tag.
        bytes[1..5].fill(0);
        assert!(matches!(
            JobSpec::decode(&mut Decoder::new(&bytes)),
            Err(DecodeError::InvalidValue {
                what: "JobSpec io_size/queue_depth"
            })
        ));
    }
}
