//! Trace replay: batched, timestamp-honouring, resumable.
//!
//! [`TraceReplayJob`] drives a [`Trace`] against any
//! [`BlockDevice`], speaking the queue-pair API
//! ([`BlockDevice::submit_batch`]) with **burst-preserving** scheduling:
//! entries sharing one (speed-scaled) arrival instant go to the device
//! through one doorbell ring, so a captured burst replays as the burst it
//! was, not as a trickle of single submissions. Two modes:
//!
//! * **open loop** ([`ReplayMode::OpenLoop`]) — every entry is submitted
//!   at its scaled arrival instant regardless of completions; latencies
//!   include whatever queueing the device accumulates. This is the mode
//!   for burstiness studies (the paper's Implication 4) and for exact
//!   re-execution of a captured submission timeline.
//! * **closed loop** ([`ReplayMode::ClosedLoop`]) — at most `queue_depth`
//!   entries are outstanding; each next entry is submitted at
//!   `max(scaled arrival, slot-free instant)`. Arrival *gaps* larger than
//!   the device's service time are still honoured, but the trace can
//!   never overrun the configured depth.
//!
//! The driver implements the same checkpoint contract as
//! [`ClosedLoopJob`](crate::ClosedLoopJob) (PR 3): it pauses at
//! entry-index milestones, freezes into a plain-data
//! [`ReplayCheckpoint`], and resumes with a byte-identical continuation —
//! which is how `uc-core` slices a long replay into pipelined segments
//! and how a killed replay process resumes from disk.

use crate::driver::InflightIo;
use crate::trace::{Trace, TraceEntry, TraceError};
use crate::JobReport;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::fmt;
use uc_blockdev::{BlockDevice, IoBatch, IoError, IoRequest};
use uc_sim::{SimDuration, SimTime};

/// How replayed entries are paced against the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayMode {
    /// Submit every entry at its scaled arrival instant, regardless of
    /// completions (arrival-driven; queueing shows up as latency).
    OpenLoop,
    /// Keep at most `queue_depth` entries outstanding; an entry whose
    /// arrival instant has passed waits for a free slot.
    ClosedLoop {
        /// Maximum outstanding requests.
        queue_depth: usize,
    },
}

/// Configuration of a trace replay.
///
/// # Example
///
/// ```
/// use uc_sim::SimDuration;
/// use uc_workload::ReplayConfig;
///
/// let cfg = ReplayConfig::open_loop()
///     .with_window(SimDuration::from_millis(10))
///     .with_speed(10.0);
/// assert_eq!(cfg.speed, 10.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Open- or closed-loop pacing.
    pub mode: ReplayMode,
    /// Width of the [`JobReport`] throughput windows (the historical
    /// hardcoded value was 100 ms; it is a parameter now).
    pub window: SimDuration,
    /// Acceleration factor: arrival instants are divided by `speed`, so
    /// `10.0` replays the trace ten times faster than it was captured.
    /// Must be positive and finite; `1.0` reproduces arrivals exactly.
    pub speed: f64,
    /// Maximum requests per doorbell ring. Bursts larger than this are
    /// split across consecutive rings (schedules are unaffected — every
    /// request carries its own submit instant).
    pub ring: usize,
}

impl ReplayConfig {
    /// Open-loop replay at captured speed, 100 ms report windows,
    /// 32-request doorbells — the semantics of the original
    /// [`replay`](crate::replay) function.
    pub fn open_loop() -> Self {
        ReplayConfig {
            mode: ReplayMode::OpenLoop,
            window: SimDuration::from_millis(100),
            speed: 1.0,
            ring: 32,
        }
    }

    /// Closed-loop replay holding `queue_depth` entries outstanding.
    ///
    /// # Panics
    ///
    /// Panics if `queue_depth` is zero.
    pub fn closed_loop(queue_depth: usize) -> Self {
        assert!(queue_depth > 0, "queue depth must be positive");
        ReplayConfig {
            mode: ReplayMode::ClosedLoop { queue_depth },
            ..ReplayConfig::open_loop()
        }
    }

    /// Replaces the throughput-window width.
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    pub fn with_window(mut self, window: SimDuration) -> Self {
        assert!(!window.is_zero(), "window must be non-zero");
        self.window = window;
        self
    }

    /// Replaces the acceleration factor.
    ///
    /// # Panics
    ///
    /// Panics if `speed` is not positive and finite.
    pub fn with_speed(mut self, speed: f64) -> Self {
        assert!(
            speed.is_finite() && speed > 0.0,
            "speed must be positive and finite"
        );
        self.speed = speed;
        self
    }

    /// Replaces the doorbell ring size.
    ///
    /// # Panics
    ///
    /// Panics if `ring` is zero.
    pub fn with_ring(mut self, ring: usize) -> Self {
        assert!(ring > 0, "ring size must be positive");
        self.ring = ring;
        self
    }

    /// An arrival instant under this config's acceleration factor.
    ///
    /// `speed == 1.0` is the identity (bit-exact, no float round trip);
    /// other factors divide the nanosecond timestamp in `f64` and round,
    /// which preserves non-decreasing order.
    pub fn scaled(&self, at: SimTime) -> SimTime {
        if self.speed == 1.0 {
            at
        } else {
            SimTime::from_nanos((at.as_nanos() as f64 / self.speed).round() as u64)
        }
    }
}

/// Why a replay failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayError {
    /// The trace failed validation against the device (detected before
    /// any I/O was issued).
    Trace(TraceError),
    /// The device rejected a request mid-replay.
    Io(IoError),
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayError::Trace(e) => write!(f, "invalid trace: {e}"),
            ReplayError::Io(e) => write!(f, "device error during replay: {e}"),
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<TraceError> for ReplayError {
    fn from(e: TraceError) -> Self {
        ReplayError::Trace(e)
    }
}

impl From<IoError> for ReplayError {
    fn from(e: IoError) -> Self {
        ReplayError::Io(e)
    }
}

/// How a [`TraceReplayJob::run_until`] call ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayProgress {
    /// The entry milestone was reached; the job can be resumed.
    Paused,
    /// Every trace entry has been submitted and completed; the report is
    /// final.
    Finished,
}

/// The complete serializable state of a paused [`TraceReplayJob`].
///
/// Captured by [`TraceReplayJob::checkpoint`];
/// [`TraceReplayJob::resume`] rebuilds a job whose continuation is
/// byte-identical to one that was never paused. The trace itself is
/// *not* embedded — a resume pairs the checkpoint with the same trace
/// (and the device's own checkpoint), exactly as fig3 pairs a
/// [`DriverCheckpoint`](crate::DriverCheckpoint) with its device state.
#[derive(Debug, Clone)]
pub struct ReplayCheckpoint {
    /// The replay configuration being executed.
    pub config: ReplayConfig,
    /// Trace entries already submitted.
    pub position: u64,
    /// Everything measured so far.
    pub report: JobReport,
    /// Outstanding requests (closed loop only), in canonical schedule
    /// order (`(completes, submitted, kind, len)` ascending).
    pub inflight: Vec<InflightIo>,
    /// `true` once every entry has been submitted and completed.
    pub finished: bool,
}

/// A resumable trace replay (see the [module docs](self) for semantics).
///
/// # Example
///
/// ```
/// use uc_ssd::{Ssd, SsdConfig};
/// use uc_workload::{replay_with, ReplayConfig, Trace};
/// use uc_sim::SimDuration;
///
/// let trace = Trace::bursty_writes(4, 8, SimDuration::from_millis(1), 4096, 16 << 20, 7);
/// let mut ssd = Ssd::new(SsdConfig::samsung_970_pro(256 << 20));
/// let report = replay_with(&mut ssd, &trace, &ReplayConfig::open_loop().with_speed(2.0))?;
/// assert_eq!(report.ios, 32);
/// # Ok::<(), uc_workload::ReplayError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TraceReplayJob {
    config: ReplayConfig,
    position: usize,
    report: JobReport,
    inflight: BinaryHeap<Reverse<InflightIo>>,
    finished: bool,
}

/// Submits a queued batch through one doorbell ring and moves the
/// completions into the in-flight heap.
fn ring_doorbell<D: BlockDevice + ?Sized>(
    dev: &mut D,
    batch: &IoBatch,
    inflight: &mut BinaryHeap<Reverse<InflightIo>>,
) -> Result<(), IoError> {
    if batch.is_empty() {
        return Ok(());
    }
    for c in dev.submit_batch(batch)? {
        inflight.push(Reverse(InflightIo {
            completes: c.completes,
            submitted: c.submitted,
            kind: c.kind,
            len: c.len,
        }));
    }
    Ok(())
}

impl TraceReplayJob {
    /// Primes a replay of `trace` against `dev`: validates every entry
    /// against the device capacity up front, issuing no I/O yet.
    ///
    /// # Errors
    ///
    /// Returns [`ReplayError::Trace`] if any entry is invalid for this
    /// device.
    pub fn start<D: BlockDevice + ?Sized>(
        dev: &D,
        trace: &Trace,
        config: &ReplayConfig,
    ) -> Result<Self, ReplayError> {
        trace.validate(dev.info().capacity())?;
        Ok(TraceReplayJob {
            config: *config,
            position: 0,
            report: JobReport::new(config.window, SimTime::ZERO),
            inflight: BinaryHeap::new(),
            finished: false,
        })
    }

    /// Drives the replay until at least `entries` trace entries have been
    /// submitted, pausing at the next burst (open loop) or drain-group
    /// (closed loop) boundary — or until the trace is fully replayed,
    /// whichever comes first. Pass `usize::MAX` to run to completion.
    ///
    /// Pausing is exact: for any milestone sequence the final report (and
    /// the device-observed submission timeline) is byte-identical to an
    /// uninterrupted run's.
    ///
    /// # Errors
    ///
    /// Propagates the first [`IoError`] a submission reports.
    ///
    /// # Panics
    ///
    /// Panics if `trace` is shorter than the entries already replayed (a
    /// resume must pair a checkpoint with the trace it was taken from).
    pub fn run_until<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        trace: &Trace,
        entries: usize,
    ) -> Result<ReplayProgress, ReplayError> {
        assert!(
            self.position <= trace.len(),
            "checkpoint position {} exceeds trace length {} (wrong trace?)",
            self.position,
            trace.len()
        );
        if self.finished {
            return Ok(ReplayProgress::Finished);
        }
        match self.config.mode {
            ReplayMode::OpenLoop => self.run_open(dev, trace.entries(), entries),
            ReplayMode::ClosedLoop { queue_depth } => {
                self.run_closed(dev, trace.entries(), entries, queue_depth)
            }
        }
    }

    /// Open-loop drive: submit each burst at its scaled arrival instant,
    /// record completions as they are returned.
    fn run_open<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        entries: &[TraceEntry],
        target: usize,
    ) -> Result<ReplayProgress, ReplayError> {
        let mut batch = IoBatch::with_capacity(self.config.ring);
        while self.position < entries.len() {
            if self.position >= target {
                return Ok(ReplayProgress::Paused);
            }
            // One doorbell per burst: gather entries sharing this scaled
            // arrival instant, splitting only at the ring size.
            let burst_at = self.config.scaled(entries[self.position].at);
            batch.clear();
            while self.position < entries.len() && batch.len() < self.config.ring {
                let e = entries[self.position];
                let at = self.config.scaled(e.at);
                if at != burst_at {
                    break;
                }
                batch.push(IoRequest {
                    kind: e.kind,
                    offset: e.offset,
                    len: e.len,
                    submit_time: at,
                });
                self.position += 1;
            }
            for c in dev.submit_batch(&batch)? {
                self.report
                    .record(c.kind.is_write(), c.len, c.submitted, c.completes);
            }
        }
        self.finished = true;
        Ok(ReplayProgress::Finished)
    }

    /// Closed-loop drive: keep `queue_depth` entries outstanding; each
    /// drained completion group queues its replacements at
    /// `max(scaled arrival, group completion instant)`.
    fn run_closed<D: BlockDevice + ?Sized>(
        &mut self,
        dev: &mut D,
        entries: &[TraceEntry],
        target: usize,
        queue_depth: usize,
    ) -> Result<ReplayProgress, ReplayError> {
        let ring = self.config.ring;
        let mut batch = IoBatch::with_capacity(queue_depth.min(ring));
        // Initial fill (first call only): the first `queue_depth` entries
        // go out at their own scaled arrivals, at most `ring` per
        // doorbell (splitting a doorbell never changes the schedule —
        // every request carries its own submit instant).
        if self.inflight.is_empty() && self.position < entries.len() {
            while self.position < entries.len() && self.inflight.len() + batch.len() < queue_depth {
                let e = entries[self.position];
                batch.push(IoRequest {
                    kind: e.kind,
                    offset: e.offset,
                    len: e.len,
                    submit_time: self.config.scaled(e.at),
                });
                self.position += 1;
                if batch.len() >= ring {
                    ring_doorbell(dev, &batch, &mut self.inflight)?;
                    batch.clear();
                }
            }
            ring_doorbell(dev, &batch, &mut self.inflight)?;
            if self.position >= target && self.position < entries.len() {
                return Ok(ReplayProgress::Paused);
            }
        }
        while let Some(Reverse(first)) = self.inflight.pop() {
            batch.clear();
            // Drain every completion sharing the earliest instant and
            // queue one replacement per completion. Replacements are
            // submitted no earlier than this instant, so the heap order —
            // and therefore the schedule — matches one-at-a-time
            // submission exactly (the `ClosedLoopJob` argument).
            let mut done = first;
            loop {
                self.report.record(
                    done.kind.is_write(),
                    done.len,
                    done.submitted,
                    done.completes,
                );
                if self.position < entries.len() {
                    let e = entries[self.position];
                    batch.push(IoRequest {
                        kind: e.kind,
                        offset: e.offset,
                        len: e.len,
                        submit_time: self.config.scaled(e.at).max(done.completes),
                    });
                    self.position += 1;
                    // Honour the ring cap mid-drain too. Replacements
                    // complete strictly after this group's instant, so
                    // the early flush cannot add members to the group
                    // being drained.
                    if batch.len() >= ring {
                        ring_doorbell(dev, &batch, &mut self.inflight)?;
                        batch.clear();
                    }
                }
                match self.inflight.peek() {
                    Some(Reverse(next)) if next.completes == first.completes => {
                        done = self.inflight.pop().expect("peeked").0;
                    }
                    _ => break,
                }
            }
            ring_doorbell(dev, &batch, &mut self.inflight)?;
            if self.position >= target && !self.inflight.is_empty() {
                return Ok(ReplayProgress::Paused);
            }
        }
        self.finished = true;
        Ok(ReplayProgress::Finished)
    }

    /// Trace entries already submitted.
    pub fn position(&self) -> usize {
        self.position
    }

    /// `true` once every entry has been submitted and completed.
    pub fn is_finished(&self) -> bool {
        self.finished
    }

    /// Everything measured so far (final once
    /// [`TraceReplayJob::is_finished`]).
    pub fn report(&self) -> &JobReport {
        &self.report
    }

    /// Consumes the job, yielding its report.
    pub fn into_report(self) -> JobReport {
        self.report
    }

    /// Captures the job's complete state at a pause point (canonical
    /// form: in-flight entries in schedule order).
    pub fn checkpoint(&self) -> ReplayCheckpoint {
        let mut inflight: Vec<InflightIo> = self.inflight.iter().map(|Reverse(io)| *io).collect();
        inflight.sort_unstable();
        ReplayCheckpoint {
            config: self.config,
            position: self.position as u64,
            report: self.report.clone(),
            inflight,
            finished: self.finished,
        }
    }

    /// Rebuilds a job that continues exactly where `checkpoint` was
    /// taken (pair it with the trace the checkpoint came from).
    pub fn resume(checkpoint: ReplayCheckpoint) -> Self {
        TraceReplayJob {
            config: checkpoint.config,
            position: checkpoint.position as usize,
            report: checkpoint.report,
            inflight: checkpoint.inflight.into_iter().map(Reverse).collect(),
            finished: checkpoint.finished,
        }
    }
}

/// Replays `trace` against `dev` under `config`, straight through.
///
/// This is [`TraceReplayJob`] run to completion — see its documentation
/// for pause/checkpoint semantics.
///
/// # Errors
///
/// Returns [`ReplayError::Trace`] if the trace fails validation against
/// the device (before any I/O), or [`ReplayError::Io`] if the device
/// rejects a request mid-replay.
pub fn replay_with<D: BlockDevice + ?Sized>(
    dev: &mut D,
    trace: &Trace,
    config: &ReplayConfig,
) -> Result<JobReport, ReplayError> {
    let mut job = TraceReplayJob::start(dev, trace, config)?;
    job.run_until(dev, trace, usize::MAX)?;
    Ok(job.into_report())
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_blockdev::{DeviceInfo, IoResult};

    /// A device with fixed service time and `servers`-way parallelism
    /// that remembers every submission instant.
    struct TestDevice {
        service: SimDuration,
        servers: uc_sim::ParallelResource,
        submissions: Vec<SimTime>,
    }

    impl TestDevice {
        fn new(us: u64, servers: usize) -> Self {
            TestDevice {
                service: SimDuration::from_micros(us),
                servers: uc_sim::ParallelResource::new(servers),
                submissions: Vec::new(),
            }
        }
    }

    impl BlockDevice for TestDevice {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("test", 1 << 30, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            self.submissions.push(req.submit_time);
            Ok(self.servers.acquire(req.submit_time, self.service).1)
        }
    }

    fn bursty() -> Trace {
        Trace::bursty_writes(5, 12, SimDuration::from_millis(1), 4096, 8 << 20, 3)
    }

    #[test]
    fn open_loop_matches_legacy_replay_exactly() {
        let trace = bursty();
        let mut legacy_dev = TestDevice::new(10, 2);
        // The legacy semantics, spelled out: one submit per entry at its
        // arrival, recorded under a 100 ms window.
        let mut legacy = JobReport::new(SimDuration::from_millis(100), SimTime::ZERO);
        for e in trace.entries() {
            let req = IoRequest {
                kind: e.kind,
                offset: e.offset,
                len: e.len,
                submit_time: e.at,
            };
            let done = legacy_dev.submit(&req).unwrap();
            legacy.record(e.kind.is_write(), e.len, e.at, done);
        }
        let mut dev = TestDevice::new(10, 2);
        let batched = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
        assert_eq!(batched.ios, legacy.ios);
        assert_eq!(batched.bytes, legacy.bytes);
        assert_eq!(batched.finished_at, legacy.finished_at);
        assert_eq!(batched.latency.mean(), legacy.latency.mean());
        assert_eq!(batched.latency.max(), legacy.latency.max());
        assert_eq!(dev.submissions, legacy_dev.submissions);
    }

    #[test]
    fn bursts_share_one_doorbell() {
        // 12-entry bursts with ring 32: each burst must arrive as one
        // batch (observable through a submit_batch-counting device).
        struct Counting {
            inner: TestDevice,
            batches: Vec<usize>,
        }
        impl BlockDevice for Counting {
            fn info(&self) -> DeviceInfo {
                self.inner.info()
            }
            fn submit(&mut self, req: &IoRequest) -> IoResult {
                self.inner.submit(req)
            }
            fn submit_batch(
                &mut self,
                batch: &IoBatch,
            ) -> Result<Vec<uc_blockdev::Completion>, IoError> {
                self.batches.push(batch.len());
                // Delegate to the default sequential servicing.
                let mut out = Vec::with_capacity(batch.len());
                for (i, req) in batch.requests().iter().enumerate() {
                    out.push(uc_blockdev::Completion::of(i, req, self.inner.submit(req)?));
                }
                Ok(out)
            }
        }
        let mut dev = Counting {
            inner: TestDevice::new(10, 2),
            batches: Vec::new(),
        };
        replay_with(&mut dev, &bursty(), &ReplayConfig::open_loop()).unwrap();
        assert_eq!(dev.batches, vec![12; 5], "one doorbell per burst");
        // A ring smaller than the burst splits it.
        let mut dev = Counting {
            inner: TestDevice::new(10, 2),
            batches: Vec::new(),
        };
        replay_with(&mut dev, &bursty(), &ReplayConfig::open_loop().with_ring(5)).unwrap();
        assert_eq!(
            dev.batches,
            vec![5, 5, 2, 5, 5, 2, 5, 5, 2, 5, 5, 2, 5, 5, 2]
        );
    }

    #[test]
    fn closed_loop_honours_the_ring_cap() {
        struct Counting {
            inner: TestDevice,
            batches: Vec<usize>,
        }
        impl BlockDevice for Counting {
            fn info(&self) -> DeviceInfo {
                self.inner.info()
            }
            fn submit(&mut self, req: &IoRequest) -> IoResult {
                self.inner.submit(req)
            }
            fn submit_batch(
                &mut self,
                batch: &IoBatch,
            ) -> Result<Vec<uc_blockdev::Completion>, IoError> {
                self.batches.push(batch.len());
                let mut out = Vec::with_capacity(batch.len());
                for (i, req) in batch.requests().iter().enumerate() {
                    out.push(uc_blockdev::Completion::of(i, req, self.inner.submit(req)?));
                }
                Ok(out)
            }
        }
        let trace = bursty();
        let config = ReplayConfig::closed_loop(16).with_ring(4);
        let mut capped = Counting {
            inner: TestDevice::new(10, 2),
            batches: Vec::new(),
        };
        let report = replay_with(&mut capped, &trace, &config).unwrap();
        assert!(
            capped.batches.iter().all(|&n| n <= 4),
            "no doorbell may exceed the ring: {:?}",
            capped.batches
        );
        // Splitting doorbells must not change the schedule: an uncapped
        // run produces an identical report and submission timeline.
        let mut uncapped_dev = TestDevice::new(10, 2);
        let uncapped =
            replay_with(&mut uncapped_dev, &trace, &ReplayConfig::closed_loop(16)).unwrap();
        assert_eq!(report.ios, uncapped.ios);
        assert_eq!(report.finished_at, uncapped.finished_at);
        assert_eq!(report.latency.mean(), uncapped.latency.mean());
        assert_eq!(capped.inner.submissions, uncapped_dev.submissions);
    }

    #[test]
    fn speed_scales_arrivals() {
        let trace = bursty();
        let mut dev = TestDevice::new(10, 4);
        let normal = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
        let mut dev = TestDevice::new(10, 4);
        let fast = replay_with(
            &mut dev,
            &trace,
            &ReplayConfig::open_loop().with_speed(10.0),
        )
        .unwrap();
        // Ten times faster: the last arrival lands at a tenth of the
        // original, so the run finishes much earlier…
        assert!(fast.finished_at < normal.finished_at);
        // …and the compressed bursts queue harder on the same device.
        assert!(fast.latency.max() >= normal.latency.max());
        assert_eq!(fast.ios, normal.ios);
    }

    #[test]
    fn closed_loop_caps_outstanding_requests() {
        // One burst of 20 arrivals at t=0 on a 1-server 10 us device:
        // open loop sees up to 200 us of queueing, closed loop at QD 2
        // never has more than 2 outstanding.
        let trace = Trace::bursty_writes(1, 20, SimDuration::from_secs(1), 4096, 1 << 20, 1);
        let mut dev = TestDevice::new(10, 1);
        let open = replay_with(&mut dev, &trace, &ReplayConfig::open_loop()).unwrap();
        assert_eq!(open.latency.max(), SimDuration::from_micros(200));
        let mut dev = TestDevice::new(10, 1);
        let closed = replay_with(&mut dev, &trace, &ReplayConfig::closed_loop(2)).unwrap();
        assert_eq!(closed.ios, 20);
        // At QD 2 a request waits at most one service time.
        assert_eq!(closed.latency.max(), SimDuration::from_micros(20));
        // Submissions happen when slots free, never before arrivals.
        for w in dev.submissions.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn closed_loop_honours_arrival_gaps() {
        // Arrivals 50 us apart on a 10 us device: even closed-loop, the
        // trace's own pacing dominates and no queueing appears.
        let entries: Vec<TraceEntry> = (0..10)
            .map(|i| TraceEntry {
                at: SimTime::ZERO + SimDuration::from_micros(50 * i),
                kind: uc_blockdev::IoKind::Write,
                offset: 4096 * i,
                len: 4096,
            })
            .collect();
        let trace = Trace::from_entries(entries);
        let mut dev = TestDevice::new(10, 1);
        let report = replay_with(&mut dev, &trace, &ReplayConfig::closed_loop(4)).unwrap();
        assert_eq!(report.latency.max(), SimDuration::from_micros(10));
        assert_eq!(
            report.finished_at,
            SimTime::ZERO + SimDuration::from_micros(50 * 9 + 10)
        );
    }

    #[test]
    fn paused_replay_matches_straight_run_exactly() {
        for config in [
            ReplayConfig::open_loop(),
            ReplayConfig::open_loop().with_speed(3.0),
            ReplayConfig::closed_loop(4),
            ReplayConfig::closed_loop(1),
        ] {
            let trace = bursty();
            let mut straight_dev = TestDevice::new(9, 2);
            let straight = replay_with(&mut straight_dev, &trace, &config).unwrap();

            let mut dev = TestDevice::new(9, 2);
            let mut job = TraceReplayJob::start(&dev, &trace, &config).unwrap();
            let mut milestone = 7;
            loop {
                match job.run_until(&mut dev, &trace, milestone).unwrap() {
                    ReplayProgress::Finished => break,
                    ReplayProgress::Paused => {
                        // Freeze and thaw: the continuation must not care.
                        job = TraceReplayJob::resume(job.checkpoint());
                        milestone += 7;
                    }
                }
            }
            assert!(job.is_finished());
            let segmented = job.into_report();
            assert_eq!(segmented.ios, straight.ios, "{config:?}");
            assert_eq!(segmented.bytes, straight.bytes);
            assert_eq!(segmented.finished_at, straight.finished_at);
            assert_eq!(segmented.latency.mean(), straight.latency.mean());
            assert_eq!(
                segmented.latency.percentile(99.9),
                straight.latency.percentile(99.9)
            );
            assert_eq!(dev.submissions, straight_dev.submissions, "{config:?}");
        }
    }

    #[test]
    fn invalid_traces_fail_before_any_io() {
        let out_of_range = Trace::from_entries(vec![TraceEntry {
            at: SimTime::ZERO,
            kind: uc_blockdev::IoKind::Write,
            offset: 1 << 40,
            len: 4096,
        }]);
        let mut dev = TestDevice::new(10, 1);
        let err = replay_with(&mut dev, &out_of_range, &ReplayConfig::open_loop()).unwrap_err();
        assert!(matches!(
            err,
            ReplayError::Trace(TraceError::OutOfRange { index: 0, .. })
        ));
        assert!(dev.submissions.is_empty(), "no i/o was issued");
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn checkpoint_is_canonical_and_resume_lossless() {
        let trace = bursty();
        let config = ReplayConfig::closed_loop(6);
        let mut dev = TestDevice::new(5, 2);
        let mut job = TraceReplayJob::start(&dev, &trace, &config).unwrap();
        job.run_until(&mut dev, &trace, 20).unwrap();
        let cp = job.checkpoint();
        assert!(!cp.finished);
        assert!(cp.position >= 20);
        assert!(
            cp.inflight.windows(2).all(|w| w[0] <= w[1]),
            "inflight entries are in canonical schedule order"
        );
        // A resumed job's own checkpoint is identical (canonical form).
        let resumed = TraceReplayJob::resume(cp.clone());
        let cp2 = resumed.checkpoint();
        assert_eq!(cp2.config, cp.config);
        assert_eq!(cp2.position, cp.position);
        assert_eq!(cp2.inflight, cp.inflight);
        assert_eq!(cp2.finished, cp.finished);
        assert_eq!(cp2.report.ios, cp.report.ios);
        assert_eq!(cp2.report.bytes, cp.report.bytes);
    }

    #[test]
    fn run_until_past_end_reports_finished_idempotently() {
        let trace = bursty();
        let mut dev = TestDevice::new(3, 1);
        let mut job = TraceReplayJob::start(&dev, &trace, &ReplayConfig::open_loop()).unwrap();
        assert_eq!(
            job.run_until(&mut dev, &trace, usize::MAX).unwrap(),
            ReplayProgress::Finished
        );
        assert_eq!(
            job.run_until(&mut dev, &trace, usize::MAX).unwrap(),
            ReplayProgress::Finished
        );
        assert_eq!(job.report().ios, trace.len() as u64);
    }

    #[test]
    #[should_panic(expected = "speed must be positive")]
    fn zero_speed_rejected() {
        let _ = ReplayConfig::open_loop().with_speed(0.0);
    }

    #[test]
    #[should_panic(expected = "wrong trace")]
    fn mismatched_trace_on_resume_panics() {
        let trace = bursty();
        let mut dev = TestDevice::new(3, 1);
        let mut job = TraceReplayJob::start(&dev, &trace, &ReplayConfig::open_loop()).unwrap();
        job.run_until(&mut dev, &trace, 20).unwrap();
        let short = Trace::from_entries(trace.entries()[..5].to_vec());
        let _ = job.run_until(&mut dev, &short, usize::MAX);
    }
}
