//! Device checkpoint/restore: freezing a device's complete hidden state.
//!
//! The simulators are stateful in ways that matter to the paper's
//! measurements — FTL mappings and wear, write-buffer occupancy, token
//! bucket levels, RNG positions. [`CheckpointDevice`] extends
//! [`BlockDevice`](crate::BlockDevice) with the ability to capture all of
//! that state into a [`DeviceCheckpoint`] and to restore it later — on the
//! same device instance, on a freshly built one, or on another thread.
//!
//! The contract is **exactness**: a device restored from a checkpoint must
//! produce, for any subsequent request sequence, the same completion
//! instants, statistics and internal transitions the original device would
//! have produced had it never been checkpointed. This is what lets a long
//! endurance run (the paper's Figure 3: 3× capacity of sustained writes)
//! be sliced into resumable segments whose concatenation is byte-identical
//! to one continuous run.
//!
//! Each device crate defines its own concrete checkpoint payload (an
//! `SsdCheckpoint`, an `EssdCheckpoint`, …) composed of the plain-data
//! snapshot types its layers expose; [`DeviceCheckpoint`] type-erases the
//! payload so checkpoints of heterogeneous devices can travel through one
//! channel (an experiment pipeline, a queue between workers).

use std::any::Any;
use std::error::Error;
use std::fmt;

use crate::BlockDevice;

/// Object-safe clonable `Any` — the erased payload of a checkpoint.
trait ErasedState: Any + Send {
    fn clone_box(&self) -> Box<dyn ErasedState>;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    fn state_type(&self) -> &'static str;
}

impl<S: Any + Send + Clone> ErasedState for S {
    fn clone_box(&self) -> Box<dyn ErasedState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn state_type(&self) -> &'static str {
        std::any::type_name::<S>()
    }
}

/// A type-erased snapshot of one device's complete hidden state.
///
/// Produced by [`CheckpointDevice::checkpoint`]; consumed by
/// [`CheckpointDevice::restore_from`] (or by the concrete device types'
/// `restore` constructors after downcasting with
/// [`DeviceCheckpoint::state`] / [`DeviceCheckpoint::into_state`]). The
/// checkpoint records the device's name so restoring onto the wrong
/// device fails loudly instead of silently producing a chimera.
///
/// Checkpoints are `Clone + Send`: they can be kept for re-runs and handed
/// across worker threads.
pub struct DeviceCheckpoint {
    device: String,
    state: Box<dyn ErasedState>,
}

impl DeviceCheckpoint {
    /// Wraps a concrete checkpoint payload for the named device.
    pub fn new<S: Any + Send + Clone>(device: impl Into<String>, state: S) -> Self {
        DeviceCheckpoint {
            device: device.into(),
            state: Box::new(state),
        }
    }

    /// The name of the device this checkpoint was taken from.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The concrete payload type's name (diagnostics only).
    pub fn state_type(&self) -> &'static str {
        self.state.state_type()
    }

    /// Downcasts the payload to the concrete checkpoint type `S`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StateMismatch`] if the payload is not an
    /// `S` (the checkpoint came from a different device class).
    pub fn state<S: Any>(&self) -> Result<&S, CheckpointError> {
        self.state
            .as_any()
            .downcast_ref::<S>()
            .ok_or_else(|| CheckpointError::StateMismatch {
                expected: std::any::type_name::<S>(),
                found: self.state.state_type(),
            })
    }

    /// Consumes the checkpoint, yielding the concrete payload without a
    /// copy — the restore hot path (payloads carry full device mappings,
    /// which can be GiBs at paper scale).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StateMismatch`] if the payload is not an
    /// `S` (the checkpoint came from a different device class).
    pub fn into_state<S: Any>(self) -> Result<S, CheckpointError> {
        let found = self.state.state_type();
        self.state
            .into_any()
            .downcast::<S>()
            .map(|boxed| *boxed)
            .map_err(|_| CheckpointError::StateMismatch {
                expected: std::any::type_name::<S>(),
                found,
            })
    }

    /// Verifies this checkpoint was taken from a device named `device`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::DeviceMismatch`] otherwise.
    pub fn expect_device(&self, device: &str) -> Result<(), CheckpointError> {
        if self.device == device {
            Ok(())
        } else {
            Err(CheckpointError::DeviceMismatch {
                expected: device.to_string(),
                found: self.device.clone(),
            })
        }
    }
}

impl Clone for DeviceCheckpoint {
    fn clone(&self) -> Self {
        DeviceCheckpoint {
            device: self.device.clone(),
            state: self.state.clone_box(),
        }
    }
}

impl fmt::Debug for DeviceCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceCheckpoint")
            .field("device", &self.device)
            .field("state", &self.state.state_type())
            .finish()
    }
}

/// Errors returned when restoring from a [`DeviceCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was taken from a different device.
    DeviceMismatch {
        /// The device a restore was attempted on.
        expected: String,
        /// The device the checkpoint was actually taken from.
        found: String,
    },
    /// The checkpoint payload is of a different device class.
    StateMismatch {
        /// The payload type the restoring device requires.
        expected: &'static str,
        /// The payload type the checkpoint holds.
        found: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::DeviceMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint of device `{found}` restored onto `{expected}`"
                )
            }
            CheckpointError::StateMismatch { expected, found } => {
                write!(f, "checkpoint payload is `{found}`, expected `{expected}`")
            }
        }
    }
}

impl Error for CheckpointError {}

/// A block device whose complete hidden state can be captured and
/// restored.
///
/// Implementations must uphold the exactness contract: after
/// `restore_from`, the device behaves — completion instants, statistics,
/// internal transitions — exactly as the checkpointed device would have.
/// In particular, for any request sequence `reqs` and any split point `k`:
///
/// ```text
/// run(dev, reqs)  ==  { run(dev, reqs[..k]);
///                       cp = dev.checkpoint();
///                       fresh.restore_from(cp);
///                       run(fresh, reqs[k..]) }
/// ```
///
/// The trait is object-safe, and `dyn CheckpointDevice` implements
/// [`BlockDevice`] through its supertrait vtable, so checkpointable
/// devices flow through the same driver code as plain ones.
pub trait CheckpointDevice: BlockDevice {
    /// Captures the device's complete hidden state.
    fn checkpoint(&self) -> DeviceCheckpoint;

    /// Replaces this device's state with the checkpoint's, consuming the
    /// checkpoint (its payload moves into the device — no copy; clone the
    /// checkpoint first to keep it).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint was taken from a
    /// different device (by name or geometry) or holds a payload of
    /// another device class. On error the device is left unchanged (the
    /// checkpoint is still consumed).
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError>;
}

impl<D: CheckpointDevice + ?Sized> CheckpointDevice for &mut D {
    fn checkpoint(&self) -> DeviceCheckpoint {
        (**self).checkpoint()
    }
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        (**self).restore_from(checkpoint)
    }
}

impl<D: CheckpointDevice + ?Sized> CheckpointDevice for Box<D> {
    fn checkpoint(&self) -> DeviceCheckpoint {
        (**self).checkpoint()
    }
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        (**self).restore_from(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceInfo, IoRequest, IoResult};
    use uc_sim::{SimDuration, SimTime};

    /// A minimal stateful device: a busy-until timeline.
    #[derive(Clone)]
    struct Toy {
        busy_until: SimTime,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct ToyCheckpoint {
        busy_until: SimTime,
    }

    impl BlockDevice for Toy {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("toy", 1 << 20, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            let start = self.busy_until.max(req.submit_time);
            self.busy_until = start + SimDuration::from_micros(5);
            Ok(self.busy_until)
        }
    }

    impl CheckpointDevice for Toy {
        fn checkpoint(&self) -> DeviceCheckpoint {
            DeviceCheckpoint::new(
                "toy",
                ToyCheckpoint {
                    busy_until: self.busy_until,
                },
            )
        }
        fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
            checkpoint.expect_device("toy")?;
            let state = checkpoint.into_state::<ToyCheckpoint>()?;
            self.busy_until = state.busy_until;
            Ok(())
        }
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut a = Toy {
            busy_until: SimTime::ZERO,
        };
        for _ in 0..3 {
            a.submit(&IoRequest::read(0, 4096, SimTime::ZERO)).unwrap();
        }
        let cp = a.checkpoint();
        assert_eq!(cp.device(), "toy");
        assert!(cp.state_type().contains("ToyCheckpoint"));
        let mut b = Toy {
            busy_until: SimTime::ZERO,
        };
        b.restore_from(cp.clone()).unwrap();
        let req = IoRequest::write(4096, 4096, SimTime::ZERO);
        assert_eq!(a.submit(&req), b.submit(&req));
    }

    #[test]
    fn checkpoints_clone_and_cross_threads() {
        let a = Toy {
            busy_until: SimTime::ZERO + SimDuration::from_micros(42),
        };
        let cp = a.checkpoint();
        let copy = cp.clone();
        let handle = std::thread::spawn(move || {
            let mut b = Toy {
                busy_until: SimTime::ZERO,
            };
            b.restore_from(copy).unwrap();
            b.busy_until
        });
        assert_eq!(handle.join().unwrap(), a.busy_until);
        // The original is still usable after the clone moved away.
        assert_eq!(
            cp.state::<ToyCheckpoint>().unwrap().busy_until,
            a.busy_until
        );
    }

    #[test]
    fn mismatches_are_loud() {
        let cp = Toy {
            busy_until: SimTime::ZERO,
        }
        .checkpoint();
        assert!(matches!(
            cp.expect_device("other"),
            Err(CheckpointError::DeviceMismatch { .. })
        ));
        let err = cp.state::<u32>().unwrap_err();
        assert!(matches!(err, CheckpointError::StateMismatch { .. }));
        assert!(!err.to_string().is_empty());
        let boxed: Box<dyn Error> = Box::new(err);
        assert!(boxed.to_string().contains("expected"));
    }

    #[test]
    fn trait_is_object_safe_and_boxes_forward() {
        let mut dev: Box<dyn CheckpointDevice + Send> = Box::new(Toy {
            busy_until: SimTime::ZERO,
        });
        // The supertrait's methods flow through the trait object…
        dev.submit(&IoRequest::read(0, 4096, SimTime::ZERO))
            .unwrap();
        // …and so do the checkpoint methods, including via &mut.
        let cp = dev.checkpoint();
        let dev_ref: &mut (dyn CheckpointDevice + Send) = &mut *dev;
        dev_ref.restore_from(cp.clone()).unwrap();
        assert_eq!(
            dev.checkpoint().state::<ToyCheckpoint>().unwrap(),
            cp.state::<ToyCheckpoint>().unwrap()
        );
    }

    #[test]
    fn debug_shows_device_and_payload_type() {
        let cp = DeviceCheckpoint::new("dbg", 7u32);
        let text = format!("{cp:?}");
        assert!(text.contains("dbg"));
        assert!(text.contains("u32"));
    }
}
