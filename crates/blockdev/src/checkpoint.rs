//! Device checkpoint/restore: freezing a device's complete hidden state.
//!
//! The simulators are stateful in ways that matter to the paper's
//! measurements — FTL mappings and wear, write-buffer occupancy, token
//! bucket levels, RNG positions. [`CheckpointDevice`] extends
//! [`BlockDevice`](crate::BlockDevice) with the ability to capture all of
//! that state into a [`DeviceCheckpoint`] and to restore it later — on the
//! same device instance, on a freshly built one, or on another thread.
//!
//! The contract is **exactness**: a device restored from a checkpoint must
//! produce, for any subsequent request sequence, the same completion
//! instants, statistics and internal transitions the original device would
//! have produced had it never been checkpointed. This is what lets a long
//! endurance run (the paper's Figure 3: 3× capacity of sustained writes)
//! be sliced into resumable segments whose concatenation is byte-identical
//! to one continuous run.
//!
//! Each device crate defines its own concrete checkpoint payload (an
//! `SsdCheckpoint`, an `EssdCheckpoint`, …) composed of the plain-data
//! snapshot types its layers expose; [`DeviceCheckpoint`] type-erases the
//! payload so checkpoints of heterogeneous devices can travel through one
//! channel (an experiment pipeline, a queue between workers).

use std::any::Any;
use std::error::Error;
use std::fmt;
use std::path::Path;

use crate::BlockDevice;
use uc_invariant::{ensure, Contract, Violation};
use uc_persist::{DecodeError, Decoder, Encoder, Persist};

/// Object-safe clonable `Any` — the erased payload of a checkpoint.
trait ErasedState: Any + Send {
    fn clone_box(&self) -> Box<dyn ErasedState>;
    fn as_any(&self) -> &dyn Any;
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
    fn state_type(&self) -> &'static str;
}

impl<S: Any + Send + Clone> ErasedState for S {
    fn clone_box(&self) -> Box<dyn ErasedState> {
        Box::new(self.clone())
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
    fn state_type(&self) -> &'static str {
        std::any::type_name::<S>()
    }
}

/// A device checkpoint payload with a durable on-disk form.
///
/// Implemented by the concrete per-device checkpoint types
/// (`SsdCheckpoint`, `EssdCheckpoint`, …). The [`Persist`] supertrait
/// provides the byte codec; [`PersistPayload::KIND`] is the **stable**
/// record tag written next to the bytes, so a reader can dispatch to the
/// right decoder — change the payload's layout and the tag must change
/// with it (`…·v1` → `…·v2`).
pub trait PersistPayload: Any + Send + Clone + Persist {
    /// Stable on-disk tag naming this payload type and layout version.
    const KIND: &'static str;
}

/// The erased encode/decode hooks of one [`PersistPayload`] type.
///
/// A codec is how [`DeviceCheckpoint::load_from`] turns a record tag back
/// into a concrete payload: callers pass the codecs of every device class
/// they can restore (e.g. `uc-core`'s roster passes the SSD and ESSD
/// codecs), and the tag stored in the file selects one — or fails with
/// [`DecodeError::UnknownKind`].
#[derive(Clone, Copy)]
pub struct PayloadCodec {
    kind: &'static str,
    encode: fn(&dyn Any, &mut Encoder),
    decode: fn(&mut Decoder<'_>) -> Result<Box<dyn ErasedState>, DecodeError>,
}

impl PayloadCodec {
    /// The codec of payload type `S`.
    pub fn of<S: PersistPayload>() -> Self {
        PayloadCodec {
            kind: S::KIND,
            encode: |state, w| {
                state
                    .downcast_ref::<S>()
                    .expect("codec invoked on its own payload type")
                    .encode(w)
            },
            decode: |r| Ok(Box::new(S::decode(r)?)),
        }
    }

    /// The stable record tag this codec reads and writes.
    pub fn kind(&self) -> &'static str {
        self.kind
    }
}

impl fmt::Debug for PayloadCodec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PayloadCodec")
            .field("kind", &self.kind)
            .finish()
    }
}

/// Errors saving a [`DeviceCheckpoint`] to disk.
#[derive(Debug)]
pub enum PersistError {
    /// The checkpoint's payload was constructed without a persistence
    /// codec ([`DeviceCheckpoint::new`] instead of
    /// [`DeviceCheckpoint::persistent`]), so it has no on-disk form.
    NotPersistent {
        /// The payload type's name (diagnostics only).
        state_type: &'static str,
    },
    /// Writing the record file failed.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::NotPersistent { state_type } => {
                write!(
                    f,
                    "checkpoint payload `{state_type}` has no persistence codec"
                )
            }
            PersistError::Io(e) => write!(f, "writing checkpoint: {e}"),
        }
    }
}

impl Error for PersistError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PersistError::NotPersistent { .. } => None,
            PersistError::Io(e) => Some(e),
        }
    }
}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// The record kind tag of a stand-alone device-checkpoint file.
pub const DEVICE_RECORD_KIND: &str = "uc.device-checkpoint.v1";

/// A type-erased snapshot of one device's complete hidden state.
///
/// Produced by [`CheckpointDevice::checkpoint`]; consumed by
/// [`CheckpointDevice::restore_from`] (or by the concrete device types'
/// `restore` constructors after downcasting with
/// [`DeviceCheckpoint::state`] / [`DeviceCheckpoint::into_state`]). The
/// checkpoint records the device's name so restoring onto the wrong
/// device fails loudly instead of silently producing a chimera.
///
/// Checkpoints are `Clone + Send`: they can be kept for re-runs and handed
/// across worker threads. A checkpoint built with
/// [`DeviceCheckpoint::persistent`] additionally carries its payload's
/// [`PayloadCodec`], giving it a durable on-disk form via
/// [`DeviceCheckpoint::save_to`] / [`DeviceCheckpoint::load_from`].
pub struct DeviceCheckpoint {
    device: String,
    state: Box<dyn ErasedState>,
    codec: Option<PayloadCodec>,
}

impl DeviceCheckpoint {
    /// Wraps a concrete checkpoint payload for the named device.
    ///
    /// The resulting checkpoint has no on-disk form (use
    /// [`DeviceCheckpoint::persistent`] for payloads implementing
    /// [`PersistPayload`]); it still travels freely between threads.
    pub fn new<S: Any + Send + Clone>(device: impl Into<String>, state: S) -> Self {
        DeviceCheckpoint {
            device: device.into(),
            state: Box::new(state),
            codec: None,
        }
    }

    /// Wraps a persistable checkpoint payload for the named device,
    /// capturing its [`PayloadCodec`] so the checkpoint can be saved to
    /// and loaded from disk.
    pub fn persistent<S: PersistPayload>(device: impl Into<String>, state: S) -> Self {
        DeviceCheckpoint {
            device: device.into(),
            state: Box::new(state),
            codec: Some(PayloadCodec::of::<S>()),
        }
    }

    /// `true` if this checkpoint carries a persistence codec (was built
    /// with [`DeviceCheckpoint::persistent`] or loaded from disk).
    pub fn is_persistent(&self) -> bool {
        self.codec.is_some()
    }

    /// Appends this checkpoint's wire form (device name, payload kind
    /// tag, length-prefixed payload bytes) to `w` — the embedded form
    /// larger records (a fig3 segment checkpoint) compose.
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NotPersistent`] if the payload was
    /// constructed without a codec.
    pub fn encode_into(&self, w: &mut Encoder) -> Result<(), PersistError> {
        let codec = self.codec.ok_or(PersistError::NotPersistent {
            state_type: self.state.state_type(),
        })?;
        w.put_str(&self.device);
        w.put_str(codec.kind);
        let mut payload = Encoder::new();
        (codec.encode)(self.state.as_any(), &mut payload);
        w.put_bytes(payload.as_bytes());
        Ok(())
    }

    /// Parses a checkpoint back out of its wire form, dispatching the
    /// payload to whichever of `codecs` wrote it.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::UnknownKind`] if no codec matches the
    /// stored tag, or the payload's own [`DecodeError`] if its bytes are
    /// malformed.
    pub fn decode_from(r: &mut Decoder<'_>, codecs: &[PayloadCodec]) -> Result<Self, DecodeError> {
        let device = r.get_string()?;
        let kind = r.get_string()?;
        let payload = r.get_bytes()?;
        let codec = codecs
            .iter()
            .find(|c| c.kind == kind)
            .ok_or(DecodeError::UnknownKind { found: kind })?;
        let mut pr = Decoder::new(payload);
        let state = (codec.decode)(&mut pr)?;
        pr.finish()?;
        Ok(DeviceCheckpoint {
            device,
            state,
            codec: Some(*codec),
        })
    }

    /// Writes this checkpoint to `path` as a stand-alone record file
    /// (atomically: temp file + rename).
    ///
    /// # Errors
    ///
    /// Returns [`PersistError::NotPersistent`] for codec-less payloads
    /// and [`PersistError::Io`] for filesystem failures.
    pub fn save_to(&self, path: &Path) -> Result<(), PersistError> {
        let mut w = Encoder::new();
        self.encode_into(&mut w)?;
        uc_persist::write_record_file(path, DEVICE_RECORD_KIND, w.as_bytes())?;
        Ok(())
    }

    /// Reads a checkpoint back from a stand-alone record file written by
    /// [`DeviceCheckpoint::save_to`].
    ///
    /// # Errors
    ///
    /// Every failure is a typed [`DecodeError`]: missing or unreadable
    /// files, foreign bytes, truncation, bit flips, future format
    /// versions and unknown payload kinds all come back as the matching
    /// variant — never a panic.
    pub fn load_from(path: &Path, codecs: &[PayloadCodec]) -> Result<Self, DecodeError> {
        let (kind, payload) = uc_persist::read_record_file(path)?;
        if kind != DEVICE_RECORD_KIND {
            return Err(DecodeError::UnknownKind { found: kind });
        }
        let mut r = Decoder::new(&payload);
        let checkpoint = Self::decode_from(&mut r, codecs)?;
        r.finish()?;
        Ok(checkpoint)
    }

    /// The name of the device this checkpoint was taken from.
    pub fn device(&self) -> &str {
        &self.device
    }

    /// The concrete payload type's name (diagnostics only).
    pub fn state_type(&self) -> &'static str {
        self.state.state_type()
    }

    /// Downcasts the payload to the concrete checkpoint type `S`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StateMismatch`] if the payload is not an
    /// `S` (the checkpoint came from a different device class).
    pub fn state<S: Any>(&self) -> Result<&S, CheckpointError> {
        self.state
            .as_any()
            .downcast_ref::<S>()
            .ok_or_else(|| CheckpointError::StateMismatch {
                expected: std::any::type_name::<S>(),
                found: self.state.state_type(),
            })
    }

    /// Consumes the checkpoint, yielding the concrete payload without a
    /// copy — the restore hot path (payloads carry full device mappings,
    /// which can be GiBs at paper scale).
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::StateMismatch`] if the payload is not an
    /// `S` (the checkpoint came from a different device class).
    pub fn into_state<S: Any>(self) -> Result<S, CheckpointError> {
        let found = self.state.state_type();
        self.state
            .into_any()
            .downcast::<S>()
            .map(|boxed| *boxed)
            .map_err(|_| CheckpointError::StateMismatch {
                expected: std::any::type_name::<S>(),
                found,
            })
    }

    /// Verifies this checkpoint was taken from a device named `device`.
    ///
    /// # Errors
    ///
    /// Returns [`CheckpointError::DeviceMismatch`] otherwise.
    pub fn expect_device(&self, device: &str) -> Result<(), CheckpointError> {
        if self.device == device {
            Ok(())
        } else {
            Err(CheckpointError::DeviceMismatch {
                expected: device.to_string(),
                found: self.device.clone(),
            })
        }
    }
}

/// Durability audit of a frozen device: a persistent checkpoint's wire
/// form must decode back with its own codec and re-encode to the identical
/// bytes — the on-disk half of the freeze/thaw exactness contract.
/// O(payload size); called by the invariant property suites, not per op.
impl Contract for DeviceCheckpoint {
    fn contract_name(&self) -> &'static str {
        "uc-blockdev/DeviceCheckpoint"
    }

    fn check(&self) -> Result<(), Violation> {
        ensure!(
            self,
            "device-named",
            !self.device.is_empty(),
            "checkpoint has an empty device name"
        );
        // Codec-less checkpoints have no wire form to audit.
        let Some(codec) = self.codec else {
            return Ok(());
        };
        let mut w = Encoder::new();
        ensure!(
            self,
            "persistent-encodes",
            self.encode_into(&mut w).is_ok(),
            "persistent checkpoint of {} failed to encode",
            self.device
        );
        let mut r = Decoder::new(w.as_bytes());
        let decoded = match DeviceCheckpoint::decode_from(&mut r, &[codec]) {
            Ok(decoded) => decoded,
            Err(e) => {
                return Err(Violation::new(
                    self.contract_name(),
                    "wire-roundtrip-decodes",
                    format!("checkpoint of {} does not decode back: {e}", self.device),
                ))
            }
        };
        ensure!(
            self,
            "wire-roundtrip-device",
            decoded.device == self.device,
            "decoded device name {:?} != {:?}",
            decoded.device,
            self.device
        );
        let mut again = Encoder::new();
        ensure!(
            self,
            "wire-roundtrip-reencodes",
            decoded.encode_into(&mut again).is_ok(),
            "decoded checkpoint of {} failed to re-encode",
            self.device
        );
        ensure!(
            self,
            "wire-roundtrip-stable",
            again.as_bytes() == w.as_bytes(),
            "re-encoding the decoded checkpoint of {} changed {} -> {} bytes or contents",
            self.device,
            w.as_bytes().len(),
            again.as_bytes().len()
        );
        Ok(())
    }
}

impl Clone for DeviceCheckpoint {
    fn clone(&self) -> Self {
        DeviceCheckpoint {
            device: self.device.clone(),
            state: self.state.clone_box(),
            codec: self.codec,
        }
    }
}

impl fmt::Debug for DeviceCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DeviceCheckpoint")
            .field("device", &self.device)
            .field("state", &self.state.state_type())
            .finish()
    }
}

/// Errors returned when restoring from a [`DeviceCheckpoint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint was taken from a different device.
    DeviceMismatch {
        /// The device a restore was attempted on.
        expected: String,
        /// The device the checkpoint was actually taken from.
        found: String,
    },
    /// The checkpoint payload is of a different device class.
    StateMismatch {
        /// The payload type the restoring device requires.
        expected: &'static str,
        /// The payload type the checkpoint holds.
        found: &'static str,
    },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::DeviceMismatch { expected, found } => {
                write!(
                    f,
                    "checkpoint of device `{found}` restored onto `{expected}`"
                )
            }
            CheckpointError::StateMismatch { expected, found } => {
                write!(f, "checkpoint payload is `{found}`, expected `{expected}`")
            }
        }
    }
}

impl Error for CheckpointError {}

/// A block device whose complete hidden state can be captured and
/// restored.
///
/// Implementations must uphold the exactness contract: after
/// `restore_from`, the device behaves — completion instants, statistics,
/// internal transitions — exactly as the checkpointed device would have.
/// In particular, for any request sequence `reqs` and any split point `k`:
///
/// ```text
/// run(dev, reqs)  ==  { run(dev, reqs[..k]);
///                       cp = dev.checkpoint();
///                       fresh.restore_from(cp);
///                       run(fresh, reqs[k..]) }
/// ```
///
/// The trait is object-safe, and `dyn CheckpointDevice` implements
/// [`BlockDevice`] through its supertrait vtable, so checkpointable
/// devices flow through the same driver code as plain ones.
pub trait CheckpointDevice: BlockDevice {
    /// Captures the device's complete hidden state.
    fn checkpoint(&self) -> DeviceCheckpoint;

    /// Replaces this device's state with the checkpoint's, consuming the
    /// checkpoint (its payload moves into the device — no copy; clone the
    /// checkpoint first to keep it).
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] if the checkpoint was taken from a
    /// different device (by name or geometry) or holds a payload of
    /// another device class. On error the device is left unchanged (the
    /// checkpoint is still consumed).
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError>;
}

impl<D: CheckpointDevice + ?Sized> CheckpointDevice for &mut D {
    fn checkpoint(&self) -> DeviceCheckpoint {
        (**self).checkpoint()
    }
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        (**self).restore_from(checkpoint)
    }
}

impl<D: CheckpointDevice + ?Sized> CheckpointDevice for Box<D> {
    fn checkpoint(&self) -> DeviceCheckpoint {
        (**self).checkpoint()
    }
    fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
        (**self).restore_from(checkpoint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceInfo, IoRequest, IoResult};
    use uc_sim::{SimDuration, SimTime};

    /// A minimal stateful device: a busy-until timeline.
    #[derive(Clone)]
    struct Toy {
        busy_until: SimTime,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    struct ToyCheckpoint {
        busy_until: SimTime,
    }

    impl BlockDevice for Toy {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("toy", 1 << 20, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            let start = self.busy_until.max(req.submit_time);
            self.busy_until = start + SimDuration::from_micros(5);
            Ok(self.busy_until)
        }
    }

    impl CheckpointDevice for Toy {
        fn checkpoint(&self) -> DeviceCheckpoint {
            DeviceCheckpoint::new(
                "toy",
                ToyCheckpoint {
                    busy_until: self.busy_until,
                },
            )
        }
        fn restore_from(&mut self, checkpoint: DeviceCheckpoint) -> Result<(), CheckpointError> {
            checkpoint.expect_device("toy")?;
            let state = checkpoint.into_state::<ToyCheckpoint>()?;
            self.busy_until = state.busy_until;
            Ok(())
        }
    }

    #[test]
    fn checkpoint_restore_round_trip() {
        let mut a = Toy {
            busy_until: SimTime::ZERO,
        };
        for _ in 0..3 {
            a.submit(&IoRequest::read(0, 4096, SimTime::ZERO)).unwrap();
        }
        let cp = a.checkpoint();
        assert_eq!(cp.device(), "toy");
        assert!(cp.state_type().contains("ToyCheckpoint"));
        let mut b = Toy {
            busy_until: SimTime::ZERO,
        };
        b.restore_from(cp.clone()).unwrap();
        let req = IoRequest::write(4096, 4096, SimTime::ZERO);
        assert_eq!(a.submit(&req), b.submit(&req));
    }

    #[test]
    fn checkpoints_clone_and_cross_threads() {
        let a = Toy {
            busy_until: SimTime::ZERO + SimDuration::from_micros(42),
        };
        let cp = a.checkpoint();
        let copy = cp.clone();
        let handle = std::thread::spawn(move || {
            let mut b = Toy {
                busy_until: SimTime::ZERO,
            };
            b.restore_from(copy).unwrap();
            b.busy_until
        });
        assert_eq!(handle.join().unwrap(), a.busy_until);
        // The original is still usable after the clone moved away.
        assert_eq!(
            cp.state::<ToyCheckpoint>().unwrap().busy_until,
            a.busy_until
        );
    }

    #[test]
    fn mismatches_are_loud() {
        let cp = Toy {
            busy_until: SimTime::ZERO,
        }
        .checkpoint();
        assert!(matches!(
            cp.expect_device("other"),
            Err(CheckpointError::DeviceMismatch { .. })
        ));
        let err = cp.state::<u32>().unwrap_err();
        assert!(matches!(err, CheckpointError::StateMismatch { .. }));
        assert!(!err.to_string().is_empty());
        let boxed: Box<dyn Error> = Box::new(err);
        assert!(boxed.to_string().contains("expected"));
    }

    #[test]
    fn trait_is_object_safe_and_boxes_forward() {
        let mut dev: Box<dyn CheckpointDevice + Send> = Box::new(Toy {
            busy_until: SimTime::ZERO,
        });
        // The supertrait's methods flow through the trait object…
        dev.submit(&IoRequest::read(0, 4096, SimTime::ZERO))
            .unwrap();
        // …and so do the checkpoint methods, including via &mut.
        let cp = dev.checkpoint();
        let dev_ref: &mut (dyn CheckpointDevice + Send) = &mut *dev;
        dev_ref.restore_from(cp.clone()).unwrap();
        assert_eq!(
            dev.checkpoint().state::<ToyCheckpoint>().unwrap(),
            cp.state::<ToyCheckpoint>().unwrap()
        );
    }

    #[test]
    fn debug_shows_device_and_payload_type() {
        let cp = DeviceCheckpoint::new("dbg", 7u32);
        let text = format!("{cp:?}");
        assert!(text.contains("dbg"));
        assert!(text.contains("u32"));
    }

    impl Persist for ToyCheckpoint {
        fn encode(&self, w: &mut Encoder) {
            self.busy_until.encode(w);
        }
        fn decode(r: &mut Decoder<'_>) -> Result<Self, DecodeError> {
            Ok(ToyCheckpoint {
                busy_until: SimTime::decode(r)?,
            })
        }
    }

    impl PersistPayload for ToyCheckpoint {
        const KIND: &'static str = "uc.toy-checkpoint.v1";
    }

    fn toy_codecs() -> Vec<PayloadCodec> {
        vec![PayloadCodec::of::<ToyCheckpoint>()]
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("uc-blockdev-persist-tests");
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir.join(name)
    }

    #[test]
    fn save_and_load_round_trip_restores_the_device() {
        let mut a = Toy {
            busy_until: SimTime::ZERO,
        };
        for _ in 0..5 {
            a.submit(&IoRequest::write(0, 4096, SimTime::ZERO)).unwrap();
        }
        let cp = DeviceCheckpoint::persistent(
            "toy",
            ToyCheckpoint {
                busy_until: a.busy_until,
            },
        );
        assert!(cp.is_persistent());
        let path = temp_path("toy-roundtrip.ckpt");
        cp.save_to(&path).unwrap();

        let loaded = DeviceCheckpoint::load_from(&path, &toy_codecs()).unwrap();
        assert_eq!(loaded.device(), "toy");
        assert!(loaded.is_persistent());
        let mut b = Toy {
            busy_until: SimTime::ZERO,
        };
        b.restore_from(loaded).unwrap();
        let req = IoRequest::read(0, 4096, SimTime::ZERO);
        assert_eq!(a.submit(&req), b.submit(&req));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_checkpoint_can_be_saved_again() {
        let cp = DeviceCheckpoint::persistent(
            "toy",
            ToyCheckpoint {
                busy_until: SimTime::from_nanos(7),
            },
        );
        let path = temp_path("toy-resave.ckpt");
        cp.save_to(&path).unwrap();
        let loaded = DeviceCheckpoint::load_from(&path, &toy_codecs()).unwrap();
        let path2 = temp_path("toy-resave-2.ckpt");
        loaded.save_to(&path2).unwrap();
        let again = DeviceCheckpoint::load_from(&path2, &toy_codecs()).unwrap();
        assert_eq!(
            again.state::<ToyCheckpoint>().unwrap().busy_until,
            SimTime::from_nanos(7)
        );
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }

    #[test]
    fn codec_less_checkpoints_refuse_to_save() {
        let cp = DeviceCheckpoint::new("toy", 9u32);
        assert!(!cp.is_persistent());
        let err = cp.save_to(&temp_path("never-written.ckpt")).unwrap_err();
        assert!(matches!(err, PersistError::NotPersistent { .. }));
        assert!(err.to_string().contains("u32"));
    }

    #[test]
    fn unknown_payload_kind_is_typed() {
        let cp = DeviceCheckpoint::persistent(
            "toy",
            ToyCheckpoint {
                busy_until: SimTime::ZERO,
            },
        );
        let path = temp_path("toy-unknown-kind.ckpt");
        cp.save_to(&path).unwrap();
        // A reader with no codecs cannot dispatch the payload.
        assert!(matches!(
            DeviceCheckpoint::load_from(&path, &[]),
            Err(DecodeError::UnknownKind { .. })
        ));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_file_decodes_to_typed_errors() {
        let cp = DeviceCheckpoint::persistent(
            "toy",
            ToyCheckpoint {
                busy_until: SimTime::from_nanos(11),
            },
        );
        let path = temp_path("toy-corrupt.ckpt");
        cp.save_to(&path).unwrap();
        let good = std::fs::read(&path).unwrap();

        // Flipped payload byte → checksum mismatch.
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        std::fs::write(&path, &flipped).unwrap();
        assert!(matches!(
            DeviceCheckpoint::load_from(&path, &toy_codecs()),
            Err(DecodeError::ChecksumMismatch { .. })
        ));

        // Truncated file → truncated (or checksum, if the cut lands in
        // the trailing checksum field itself).
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        assert!(matches!(
            DeviceCheckpoint::load_from(&path, &toy_codecs()),
            Err(DecodeError::Truncated { .. })
        ));

        // Missing file → typed I/O error.
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            DeviceCheckpoint::load_from(&path, &toy_codecs()),
            Err(DecodeError::Io { .. })
        ));
    }
}
