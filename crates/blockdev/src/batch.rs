//! Queue-pair batching: submission batches and completion entries.
//!
//! Real NVMe-style host stacks talk to devices through *queue pairs*: the
//! host fills a submission queue with several commands and rings one
//! doorbell; the device posts one completion entry per command. [`IoBatch`]
//! and [`Completion`] model that interaction for the timeline-driven
//! simulators — a driver issues a queue-depth's worth of requests through
//! one [`BlockDevice::submit_batch`](crate::BlockDevice::submit_batch) call
//! instead of a call per request.

use crate::{IoKind, IoRequest};
use uc_sim::{SimDuration, SimTime};

/// An ordered set of requests submitted through one doorbell ring.
///
/// The batch is a submission queue slice: requests are processed strictly
/// in push order, and their `submit_time`s must be non-decreasing (the same
/// monotonicity contract [`BlockDevice::submit`](crate::BlockDevice::submit)
/// imposes across calls).
///
/// # Example
///
/// ```
/// use uc_blockdev::{IoBatch, IoRequest};
/// use uc_sim::SimTime;
///
/// let mut batch = IoBatch::with_capacity(2);
/// batch.push(IoRequest::read(0, 4096, SimTime::ZERO));
/// batch.push(IoRequest::write(4096, 4096, SimTime::ZERO));
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoBatch {
    reqs: Vec<IoRequest>,
}

impl IoBatch {
    /// An empty batch.
    pub fn new() -> Self {
        IoBatch { reqs: Vec::new() }
    }

    /// An empty batch with room for `capacity` requests.
    pub fn with_capacity(capacity: usize) -> Self {
        IoBatch {
            reqs: Vec::with_capacity(capacity),
        }
    }

    /// Appends a request to the batch.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `req.submit_time` is earlier than the
    /// last queued request's (submission queues are time-ordered).
    pub fn push(&mut self, req: IoRequest) {
        debug_assert!(
            self.reqs
                .last()
                .is_none_or(|last| req.submit_time >= last.submit_time),
            "batch submit times must be non-decreasing"
        );
        self.reqs.push(req);
    }

    /// Number of queued requests.
    pub fn len(&self) -> usize {
        self.reqs.len()
    }

    /// `true` if no requests are queued.
    pub fn is_empty(&self) -> bool {
        self.reqs.is_empty()
    }

    /// Empties the batch, keeping its allocation (drivers reuse one batch
    /// per step).
    pub fn clear(&mut self) {
        self.reqs.clear();
    }

    /// The queued requests, in submission order.
    pub fn requests(&self) -> &[IoRequest] {
        &self.reqs
    }
}

impl From<Vec<IoRequest>> for IoBatch {
    fn from(reqs: Vec<IoRequest>) -> Self {
        let mut batch = IoBatch::with_capacity(reqs.len());
        for req in reqs {
            batch.push(req);
        }
        batch
    }
}

impl FromIterator<IoRequest> for IoBatch {
    fn from_iter<I: IntoIterator<Item = IoRequest>>(iter: I) -> Self {
        let mut batch = IoBatch::new();
        for req in iter {
            batch.push(req);
        }
        batch
    }
}

impl<'a> IntoIterator for &'a IoBatch {
    type Item = &'a IoRequest;
    type IntoIter = std::slice::Iter<'a, IoRequest>;
    fn into_iter(self) -> Self::IntoIter {
        self.reqs.iter()
    }
}

/// One completion-queue entry: the echo of a batched request together with
/// the instant the device finished it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Index of the request within its batch.
    pub index: usize,
    /// Read or write.
    pub kind: IoKind,
    /// Bytes transferred.
    pub len: u32,
    /// When the host submitted the request.
    pub submitted: SimTime,
    /// When the device completed it.
    pub completes: SimTime,
}

impl Completion {
    /// Builds the completion entry for `req` (batch slot `index`)
    /// finishing at `completes`.
    pub fn of(index: usize, req: &IoRequest, completes: SimTime) -> Self {
        Completion {
            index,
            kind: req.kind,
            len: req.len,
            submitted: req.submit_time,
            completes,
        }
    }

    /// The request's host-observed latency.
    pub fn latency(&self) -> SimDuration {
        self.completes - self.submitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_preserves_order_and_clears_in_place() {
        let mut b = IoBatch::new();
        assert!(b.is_empty());
        b.push(IoRequest::read(0, 4096, SimTime::ZERO));
        b.push(IoRequest::write(4096, 4096, SimTime::ZERO));
        assert_eq!(b.len(), 2);
        assert!(b.requests()[0].kind.is_read());
        assert!(b.requests()[1].kind.is_write());
        b.clear();
        assert!(b.is_empty());
    }

    #[test]
    fn batch_builds_from_iterators() {
        let reqs = vec![
            IoRequest::read(0, 4096, SimTime::ZERO),
            IoRequest::read(4096, 4096, SimTime::ZERO),
        ];
        let from_vec = IoBatch::from(reqs.clone());
        let collected: IoBatch = reqs.iter().copied().collect();
        assert_eq!(from_vec, collected);
        assert_eq!((&collected).into_iter().count(), 2);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "non-decreasing")]
    fn batch_rejects_time_travel() {
        let mut b = IoBatch::new();
        b.push(IoRequest::read(0, 4096, SimTime::from_nanos(100)));
        b.push(IoRequest::read(0, 4096, SimTime::ZERO));
    }

    #[test]
    fn completion_carries_request_facts() {
        let req = IoRequest::write(8192, 4096, SimTime::from_nanos(10));
        let c = Completion::of(3, &req, SimTime::from_nanos(25));
        assert_eq!(c.index, 3);
        assert!(c.kind.is_write());
        assert_eq!(c.len, 4096);
        assert_eq!(c.latency(), SimDuration::from_nanos(15));
    }
}
