//! Shared-device sessions: one device serving many concurrent tenants.
//!
//! Every experiment before the fleet owned its device outright; a fleet
//! inverts that — a single eSSD serves dozens of tenants whose merged
//! submission stream crosses one queue pair. [`SharedDevice`] is that
//! seam: it multiplexes per-tenant *sessions* onto one inner
//! [`BlockDevice`], enforces the shared queue discipline (a request is
//! never doorbelled earlier than the previously doorbelled one — late
//! arrivals are clamped to the queue head, exactly what a real submission
//! queue does), and keeps per-session accounting whose conservation
//! against the device-level totals is a machine-checked [`Contract`].
//!
//! The wrapper adds no timing of its own: a single session over a
//! `SharedDevice` observes completions identical to driving the inner
//! device directly.

use crate::{BlockDevice, Completion, DeviceInfo, IoBatch, IoError, IoRequest, IoResult};
use uc_invariant::{ensure, Contract, Violation};
use uc_sim::SimTime;

/// A handle to one tenant's session on a [`SharedDevice`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionId(usize);

impl SessionId {
    /// The session's index in its device's session table.
    pub fn index(&self) -> usize {
        self.0
    }

    /// Rebuild a handle from a table index — the inverse of
    /// [`SessionId::index`], for resuming a session identified over a
    /// wire. Pair with [`SharedDevice::has_session`] before use.
    pub fn from_index(index: usize) -> Self {
        SessionId(index)
    }
}

/// Per-session accounting: what one tenant has pushed through the shared
/// queue.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Requests submitted.
    pub ios: u64,
    /// Bytes submitted.
    pub bytes: u64,
    /// Requests whose nominal submit instant predated the queue head and
    /// were clamped forward (head-of-line blocking behind another
    /// session's request).
    pub clamped: u64,
    /// The session's latest doorbelled instant.
    pub last_submit: SimTime,
}

/// A block device shared by several sessions.
///
/// See the [module docs](self) for the queue discipline. `SharedDevice`
/// is a thin multiplexer: open one session per tenant, submit each
/// tenant's requests under its [`SessionId`], and read the per-session
/// ledger back out of [`SharedDevice::stats`].
#[derive(Debug)]
pub struct SharedDevice<D> {
    inner: D,
    sessions: Vec<SessionStats>,
    last_submit: SimTime,
    ios: u64,
    bytes: u64,
}

impl<D: BlockDevice> SharedDevice<D> {
    /// Wraps `inner` with an empty session table and a queue head at
    /// time zero.
    pub fn new(inner: D) -> Self {
        SharedDevice::with_queue_head(inner, SimTime::ZERO)
    }

    /// Wraps `inner` with the queue head already advanced to
    /// `last_submit` — the resume path: a thawed device must not accept
    /// submissions earlier than the last one it saw before the freeze.
    pub fn with_queue_head(inner: D, last_submit: SimTime) -> Self {
        SharedDevice {
            inner,
            sessions: Vec::new(),
            last_submit,
            ios: 0,
            bytes: 0,
        }
    }

    /// Opens a new session, returning its handle.
    pub fn open_session(&mut self) -> SessionId {
        self.sessions.push(SessionStats::default());
        SessionId(self.sessions.len() - 1)
    }

    /// Number of open sessions.
    pub fn sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Whether `session` was opened on this device — the resume hook a
    /// served frontend uses to validate a reconnecting client's lane
    /// before replaying onto it.
    pub fn has_session(&self, session: SessionId) -> bool {
        session.0 < self.sessions.len()
    }

    /// The accounting ledger of `session`.
    ///
    /// # Panics
    ///
    /// Panics if `session` was not opened on this device.
    pub fn stats(&self, session: SessionId) -> &SessionStats {
        &self.sessions[session.0]
    }

    /// Every session's ledger, indexed by [`SessionId::index`] (open
    /// order).
    ///
    /// This is the whole-device read-out a served frontend's STATS
    /// frames and any dashboard consume: one pass over the slice yields
    /// the per-tenant ledgers whose sums the [`Contract`] audits against
    /// the device totals.
    pub fn session_stats(&self) -> &[SessionStats] {
        &self.sessions
    }

    /// The queue head: the latest doorbelled instant across all sessions.
    pub fn queue_head(&self) -> SimTime {
        self.last_submit
    }

    /// The inner device's static facts.
    pub fn info(&self) -> DeviceInfo {
        self.inner.info()
    }

    /// The wrapped device.
    pub fn inner(&self) -> &D {
        &self.inner
    }

    /// The wrapped device, mutably (e.g. to take a checkpoint).
    pub fn inner_mut(&mut self) -> &mut D {
        &mut self.inner
    }

    /// Unwraps the inner device, discarding the session table.
    pub fn into_inner(self) -> D {
        self.inner
    }

    /// Applies the queue discipline to one request: clamp its submit
    /// instant to the queue head, advance the head, and debit `session`'s
    /// ledger. Returns the doorbelled request.
    fn doorbell(&mut self, session: SessionId, req: &IoRequest) -> IoRequest {
        let mut doorbelled = *req;
        let stats = &mut self.sessions[session.0];
        if doorbelled.submit_time < self.last_submit {
            doorbelled.submit_time = self.last_submit;
            stats.clamped += 1;
        }
        self.last_submit = doorbelled.submit_time;
        stats.ios += 1;
        stats.bytes += doorbelled.len as u64;
        stats.last_submit = doorbelled.submit_time;
        self.ios += 1;
        self.bytes += doorbelled.len as u64;
        doorbelled
    }

    /// Submits one request under `session`, returning its completion
    /// instant. A submit instant earlier than the queue head is clamped
    /// forward (and counted in [`SessionStats::clamped`]).
    ///
    /// # Errors
    ///
    /// Propagates the inner device's [`IoError`].
    ///
    /// # Panics
    ///
    /// Panics if `session` was not opened on this device.
    pub fn submit_shared(&mut self, session: SessionId, req: &IoRequest) -> IoResult {
        let doorbelled = self.doorbell(session, req);
        let result = self.inner.submit(&doorbelled);
        // Contract hook (O(1)): the queue head never regresses and the
        // session ledger stays within the device totals.
        uc_invariant::enforce(|| {
            ensure!(
                self,
                "queue-head-monotone",
                self.sessions[session.0].last_submit <= self.last_submit,
                "session {} doorbelled {:?} past the queue head {:?}",
                session.0,
                self.sessions[session.0].last_submit,
                self.last_submit
            );
            Ok(())
        });
        result
    }

    /// Submits a whole multi-session batch through one doorbell ring:
    /// `owners[i]` names the session that issued `batch.requests()[i]`.
    /// Completions come back in submission order, index-aligned with the
    /// batch — the caller attributes them to tenants by position.
    ///
    /// # Errors
    ///
    /// Propagates the inner device's [`IoError`].
    ///
    /// # Panics
    ///
    /// Panics if `owners.len() != batch.len()` or any owner was not
    /// opened on this device.
    pub fn submit_batch_shared(
        &mut self,
        owners: &[SessionId],
        batch: &IoBatch,
    ) -> Result<Vec<Completion>, IoError> {
        assert_eq!(
            owners.len(),
            batch.len(),
            "one owning session per batched request"
        );
        let mut doorbelled = IoBatch::with_capacity(batch.len());
        for (owner, req) in owners.iter().zip(batch.requests()) {
            doorbelled.push(self.doorbell(*owner, req));
        }
        let completions = self.inner.submit_batch(&doorbelled)?;
        uc_invariant::debug_check(self);
        Ok(completions)
    }
}

/// Conservation audit of the shared queue: per-session ledgers sum to the
/// device-level totals, and no session's doorbell clock runs past the
/// queue head. O(sessions).
impl<D: BlockDevice> Contract for SharedDevice<D> {
    fn contract_name(&self) -> &'static str {
        "uc-blockdev/SharedDevice"
    }

    fn check(&self) -> Result<(), Violation> {
        let ios: u64 = self.sessions.iter().map(|s| s.ios).sum();
        let bytes: u64 = self.sessions.iter().map(|s| s.bytes).sum();
        ensure!(
            self,
            "session-io-conservation",
            ios == self.ios,
            "sessions account for {ios} i/os but the device saw {}",
            self.ios
        );
        ensure!(
            self,
            "session-byte-conservation",
            bytes == self.bytes,
            "sessions account for {bytes} bytes but the device saw {}",
            self.bytes
        );
        for (i, s) in self.sessions.iter().enumerate() {
            ensure!(
                self,
                "session-behind-queue-head",
                s.last_submit <= self.last_submit,
                "session {i} doorbelled {:?} past the queue head {:?}",
                s.last_submit,
                self.last_submit
            );
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uc_sim::{SimDuration, SimTime};

    /// A fixed-latency device that remembers the last submit instant it
    /// saw and asserts monotonicity (the property the queue discipline
    /// must uphold on the shared path).
    struct Probe {
        last: SimTime,
        service: SimDuration,
    }

    impl Probe {
        fn new() -> Self {
            Probe {
                last: SimTime::ZERO,
                service: SimDuration::from_micros(10),
            }
        }
    }

    impl BlockDevice for Probe {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("probe", 1 << 30, 512)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            assert!(
                req.submit_time >= self.last,
                "shared wrapper leaked a regression"
            );
            self.last = req.submit_time;
            Ok(req.submit_time + self.service)
        }
    }

    fn at(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    #[test]
    fn has_session_tracks_open_order() {
        let mut dev = SharedDevice::new(Probe::new());
        assert!(!dev.has_session(SessionId::from_index(0)));
        let a = dev.open_session();
        assert!(dev.has_session(a));
        assert!(!dev.has_session(SessionId::from_index(a.index() + 1)));
    }

    #[test]
    fn sessions_account_for_their_own_traffic() {
        let mut dev = SharedDevice::new(Probe::new());
        let a = dev.open_session();
        let b = dev.open_session();
        dev.submit_shared(a, &IoRequest::write(0, 4096, at(0)))
            .unwrap();
        dev.submit_shared(b, &IoRequest::read(8192, 512, at(10)))
            .unwrap();
        dev.submit_shared(a, &IoRequest::write(4096, 4096, at(20)))
            .unwrap();
        assert_eq!(dev.stats(a).ios, 2);
        assert_eq!(dev.stats(a).bytes, 8192);
        assert_eq!(dev.stats(b).ios, 1);
        assert_eq!(dev.stats(b).bytes, 512);
        assert_eq!(dev.queue_head(), at(20));
        assert_eq!(dev.check(), Ok(()));
    }

    #[test]
    fn late_arrivals_are_clamped_to_the_queue_head() {
        let mut dev = SharedDevice::new(Probe::new());
        let a = dev.open_session();
        let b = dev.open_session();
        dev.submit_shared(a, &IoRequest::write(0, 4096, at(1000)))
            .unwrap();
        // Session b arrives "earlier" than the queue head: the doorbell
        // clamps it, the inner device never sees a regression, and the
        // clamp is visible in the ledger.
        let done = dev
            .submit_shared(b, &IoRequest::write(4096, 4096, at(200)))
            .unwrap();
        assert!(done >= at(1000));
        assert_eq!(dev.stats(b).clamped, 1);
        assert_eq!(dev.stats(b).last_submit, at(1000));
        assert_eq!(dev.check(), Ok(()));
    }

    #[test]
    fn batched_multi_session_submission_attributes_by_position() {
        let mut dev = SharedDevice::new(Probe::new());
        let a = dev.open_session();
        let b = dev.open_session();
        let mut batch = IoBatch::new();
        batch.push(IoRequest::write(0, 4096, at(0)));
        batch.push(IoRequest::write(4096, 512, at(0)));
        batch.push(IoRequest::read(0, 4096, at(5)));
        let owners = vec![a, b, a];
        let completions = dev.submit_batch_shared(&owners, &batch).unwrap();
        assert_eq!(completions.len(), 3);
        assert_eq!(completions[1].len, 512);
        assert_eq!(dev.stats(a).ios, 2);
        assert_eq!(dev.stats(b).ios, 1);
        assert_eq!(dev.check(), Ok(()));
    }

    #[test]
    fn session_stats_exposes_every_ledger_in_open_order() {
        let mut dev = SharedDevice::new(Probe::new());
        let a = dev.open_session();
        let b = dev.open_session();
        dev.submit_shared(a, &IoRequest::write(0, 4096, at(0)))
            .unwrap();
        dev.submit_shared(b, &IoRequest::read(8192, 512, at(10)))
            .unwrap();
        let all = dev.session_stats();
        assert_eq!(all.len(), 2);
        assert_eq!(all[a.index()], *dev.stats(a));
        assert_eq!(all[b.index()], *dev.stats(b));
        assert_eq!(all.iter().map(|s| s.ios).sum::<u64>(), 2);
        assert_eq!(all.iter().map(|s| s.bytes).sum::<u64>(), 4608);
    }

    #[test]
    fn queue_head_survives_resume() {
        let mut dev = SharedDevice::with_queue_head(Probe::new(), at(5000));
        let s = dev.open_session();
        let done = dev
            .submit_shared(s, &IoRequest::write(0, 512, at(10)))
            .unwrap();
        assert!(done >= at(5000), "resumed head clamps pre-freeze instants");
        assert_eq!(dev.stats(s).clamped, 1);
    }

    #[test]
    fn single_session_is_transparent() {
        // Driving through one session equals driving the device directly.
        let mut direct = Probe::new();
        let mut shared = SharedDevice::new(Probe::new());
        let s = shared.open_session();
        for i in 0..8u64 {
            let req = IoRequest::write(i * 4096, 4096, at(i * 100));
            assert_eq!(
                direct.submit(&req).unwrap(),
                shared.submit_shared(s, &req).unwrap()
            );
        }
        assert_eq!(shared.stats(s).clamped, 0);
    }

    #[test]
    fn conservation_violation_is_reported() {
        let mut dev = SharedDevice::new(Probe::new());
        let s = dev.open_session();
        dev.submit_shared(s, &IoRequest::write(0, 4096, at(0)))
            .unwrap();
        // Corrupt the device-level ledger the way a lost session debit would.
        dev.ios += 1;
        let v = dev.check().unwrap_err();
        assert_eq!(v.invariant, "session-io-conservation");
    }
}
