//! The block-device abstraction shared by every device model.
//!
//! Both the local SSD simulator (`uc-ssd`) and the elastic SSD simulator
//! (`uc-essd`) present the same interface the paper's devices present to
//! host software: a flat array of logical bytes supporting random reads and
//! writes. Workload drivers (`uc-workload`) are written against the
//! [`BlockDevice`] trait, so every experiment runs unchanged on any device.
//!
//! The simulators are *timeline-driven*: submitting a request immediately
//! returns the instant the request will complete, computed from the device's
//! internal resource timelines. A closed-loop driver keeps a queue-depth's
//! worth of requests outstanding by submitting each next request at the
//! completion instant of a previous one; this yields exactly the same
//! schedules an event loop would produce, at a fraction of the cost.
//!
//! Three companion layers complete the host-facing API:
//!
//! * the **queue pair** ([`IoBatch`] / [`Completion`] /
//!   [`BlockDevice::submit_batch`]) lets drivers issue a queue-depth's
//!   worth of requests per doorbell ring instead of one call per request,
//! * the **factory seam** ([`DeviceFactory`]) makes fresh-device
//!   construction `Send + Sync`, so experiment cells can be fanned out
//!   across threads, each building its own device where it runs,
//! * the **checkpoint seam** ([`CheckpointDevice`] / [`DeviceCheckpoint`])
//!   captures a device's complete hidden state and restores it exactly,
//!   so one device's long virtual timeline can be sliced into resumable
//!   segments that different workers execute in turn,
//! * the **session seam** ([`SharedDevice`] / [`SessionId`]) multiplexes
//!   several tenants onto one device behind a shared queue discipline,
//!   with per-session accounting whose conservation is a machine-checked
//!   contract — the substrate of the multi-tenant fleet (`uc-fleet`).
//!
//! # Example
//!
//! ```
//! use uc_blockdev::{BlockDevice, DeviceInfo, IoKind, IoRequest, IoResult};
//! use uc_sim::{SimDuration, SimTime};
//!
//! /// A toy device: every I/O takes 10 us.
//! struct FixedLatency;
//!
//! impl BlockDevice for FixedLatency {
//!     fn info(&self) -> DeviceInfo {
//!         DeviceInfo::new("fixed", 1 << 30, 512)
//!     }
//!     fn submit(&mut self, req: &IoRequest) -> IoResult {
//!         Ok(req.submit_time + SimDuration::from_micros(10))
//!     }
//! }
//!
//! let mut dev = FixedLatency;
//! let req = IoRequest::read(0, 4096, SimTime::ZERO);
//! let done = dev.submit(&req)?;
//! assert_eq!(done, SimTime::ZERO + SimDuration::from_micros(10));
//! # Ok::<(), uc_blockdev::IoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod checkpoint;
mod factory;
mod session;

pub use batch::{Completion, IoBatch};
pub use checkpoint::{
    CheckpointDevice, CheckpointError, DeviceCheckpoint, PayloadCodec, PersistError,
    PersistPayload, DEVICE_RECORD_KIND,
};
pub use factory::{DeviceFactory, FnFactory};
pub use session::{SessionId, SessionStats, SharedDevice};

use std::error::Error;
use std::fmt;
use uc_sim::SimTime;

/// Whether an I/O transfers data to or from the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// Host reads data from the device.
    Read,
    /// Host writes data to the device.
    Write,
}

impl IoKind {
    /// `true` for [`IoKind::Write`].
    pub fn is_write(self) -> bool {
        matches!(self, IoKind::Write)
    }

    /// `true` for [`IoKind::Read`].
    pub fn is_read(self) -> bool {
        matches!(self, IoKind::Read)
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoKind::Read => write!(f, "read"),
            IoKind::Write => write!(f, "write"),
        }
    }
}

impl uc_persist::Persist for IoKind {
    fn encode(&self, w: &mut uc_persist::Encoder) {
        w.put_u8(self.is_write() as u8);
    }

    fn decode(r: &mut uc_persist::Decoder<'_>) -> Result<Self, uc_persist::DecodeError> {
        match r.get_u8()? {
            0 => Ok(IoKind::Read),
            1 => Ok(IoKind::Write),
            _ => Err(uc_persist::DecodeError::InvalidValue { what: "IoKind tag" }),
        }
    }
}

/// One block-level I/O request.
///
/// Offsets and lengths are in bytes. The simulators are performance models:
/// requests carry no payload, only geometry and timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoRequest {
    /// Read or write.
    pub kind: IoKind,
    /// Byte offset of the first accessed byte.
    pub offset: u64,
    /// Length in bytes; must be positive.
    pub len: u32,
    /// The instant the host submits the request.
    pub submit_time: SimTime,
}

impl IoRequest {
    /// A read of `len` bytes at `offset`, submitted at `submit_time`.
    pub fn read(offset: u64, len: u32, submit_time: SimTime) -> Self {
        IoRequest {
            kind: IoKind::Read,
            offset,
            len,
            submit_time,
        }
    }

    /// A write of `len` bytes at `offset`, submitted at `submit_time`.
    pub fn write(offset: u64, len: u32, submit_time: SimTime) -> Self {
        IoRequest {
            kind: IoKind::Write,
            offset,
            len,
            submit_time,
        }
    }

    /// The first byte past the accessed range.
    pub fn end(&self) -> u64 {
        self.offset + self.len as u64
    }
}

/// Static facts about a device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceInfo {
    name: String,
    capacity: u64,
    logical_block: u32,
}

impl DeviceInfo {
    /// Describes a device with the given name, byte capacity and logical
    /// block size.
    ///
    /// # Panics
    ///
    /// Panics if `logical_block` is zero or `capacity` is not a multiple of
    /// `logical_block`.
    pub fn new(name: impl Into<String>, capacity: u64, logical_block: u32) -> Self {
        assert!(logical_block > 0, "logical block size must be positive");
        assert!(
            capacity.is_multiple_of(logical_block as u64),
            "capacity must be a whole number of logical blocks"
        );
        DeviceInfo {
            name: name.into(),
            capacity,
            logical_block,
        }
    }

    /// Human-readable device name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Device capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Logical block size in bytes (the unit of I/O alignment).
    pub fn logical_block(&self) -> u32 {
        self.logical_block
    }

    /// Validates a request against this device's geometry.
    ///
    /// # Errors
    ///
    /// Returns [`IoError::ZeroLength`], [`IoError::Misaligned`] or
    /// [`IoError::OutOfRange`] if the request violates the corresponding
    /// constraint.
    pub fn validate(&self, req: &IoRequest) -> Result<(), IoError> {
        if req.len == 0 {
            return Err(IoError::ZeroLength);
        }
        let lb = self.logical_block as u64;
        if !req.offset.is_multiple_of(lb) || !(req.len as u64).is_multiple_of(lb) {
            return Err(IoError::Misaligned {
                offset: req.offset,
                len: req.len,
                logical_block: self.logical_block,
            });
        }
        if req.end() > self.capacity {
            return Err(IoError::OutOfRange {
                end: req.end(),
                capacity: self.capacity,
            });
        }
        Ok(())
    }
}

/// Errors returned by [`BlockDevice::submit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoError {
    /// The request length was zero.
    ZeroLength,
    /// The request was not aligned to the device's logical block size.
    Misaligned {
        /// Requested byte offset.
        offset: u64,
        /// Requested length.
        len: u32,
        /// The device's logical block size.
        logical_block: u32,
    },
    /// The request extended past the device capacity.
    OutOfRange {
        /// First byte past the requested range.
        end: u64,
        /// Device capacity in bytes.
        capacity: u64,
    },
    /// A served ring stayed full past the submitter's retry budget: the
    /// batch could not be split small enough to ever be admitted.
    RingSaturated {
        /// The server's ring size the batch was split down against.
        ring: u32,
        /// How many ring-full refusals the submitter absorbed before
        /// giving up.
        refusals: u32,
    },
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::ZeroLength => write!(f, "zero-length i/o request"),
            IoError::Misaligned {
                offset,
                len,
                logical_block,
            } => write!(
                f,
                "i/o at offset {offset} length {len} not aligned to {logical_block}-byte blocks"
            ),
            IoError::OutOfRange { end, capacity } => {
                write!(f, "i/o extends to byte {end} beyond capacity {capacity}")
            }
            IoError::RingSaturated { ring, refusals } => write!(
                f,
                "{ring}-slot ring still refusing after {refusals} split retries"
            ),
        }
    }
}

impl Error for IoError {}

/// The completion instant of an accepted request.
pub type IoResult = Result<SimTime, IoError>;

/// A simulated block device.
///
/// Implementations must be *monotone*: calls to [`BlockDevice::submit`] are
/// made with non-decreasing `submit_time` values, and each returned
/// completion instant must be `>= submit_time`.
pub trait BlockDevice {
    /// Static device facts.
    fn info(&self) -> DeviceInfo;

    /// Submits a request, returning its completion instant.
    ///
    /// # Errors
    ///
    /// Returns an [`IoError`] if the request fails validation against the
    /// device geometry.
    fn submit(&mut self, req: &IoRequest) -> IoResult;

    /// Submits every request of `batch` through one doorbell ring,
    /// returning one [`Completion`] per request, in submission order.
    ///
    /// The default implementation services the batch as consecutive
    /// [`BlockDevice::submit`] calls, so batched and request-at-a-time
    /// submission of the same request sequence produce identical
    /// completion instants; device implementations that override this for
    /// a fast path must preserve that equivalence.
    ///
    /// # Errors
    ///
    /// Returns the first [`IoError`] any request reports. Requests queued
    /// before the failing one have already been applied to the device
    /// timelines (as with consecutive `submit` calls).
    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        let mut completions = Vec::with_capacity(batch.len());
        for (index, req) in batch.requests().iter().enumerate() {
            let completes = self.submit(req)?;
            completions.push(Completion::of(index, req, completes));
        }
        Ok(completions)
    }

    /// Tells the device a time span has passed with no host activity.
    ///
    /// Devices that run background work (drain, garbage collection) may use
    /// this to advance internal timelines. The default does nothing.
    fn idle_until(&mut self, now: SimTime) {
        let _ = now;
    }

    /// Publishes the device's internal telemetry into `obs`, naming every
    /// metric `{prefix}.…`.
    ///
    /// This is the observability seam: callers that hold a device only as
    /// `dyn BlockDevice` (the fleet, the serve pool) can still pull FTL
    /// churn, queue depths, and throttle state into one
    /// [`MetricsRegistry`](uc_obs::MetricsRegistry) without knowing the
    /// concrete type. Registration order inside an implementation must be
    /// deterministic (fixed, not map-ordered) so snapshots stay
    /// byte-identical across same-seed runs. The default publishes
    /// nothing.
    fn observe_into(&self, prefix: &str, obs: &mut uc_obs::MetricsRegistry) {
        let _ = (prefix, obs);
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for &mut D {
    fn info(&self) -> DeviceInfo {
        (**self).info()
    }
    fn submit(&mut self, req: &IoRequest) -> IoResult {
        (**self).submit(req)
    }
    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        (**self).submit_batch(batch)
    }
    fn idle_until(&mut self, now: SimTime) {
        (**self).idle_until(now)
    }
    fn observe_into(&self, prefix: &str, obs: &mut uc_obs::MetricsRegistry) {
        (**self).observe_into(prefix, obs)
    }
}

impl<D: BlockDevice + ?Sized> BlockDevice for Box<D> {
    fn info(&self) -> DeviceInfo {
        (**self).info()
    }
    fn submit(&mut self, req: &IoRequest) -> IoResult {
        (**self).submit(req)
    }
    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        (**self).submit_batch(batch)
    }
    fn idle_until(&mut self, now: SimTime) {
        (**self).idle_until(now)
    }
    fn observe_into(&self, prefix: &str, obs: &mut uc_obs::MetricsRegistry) {
        (**self).observe_into(prefix, obs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> DeviceInfo {
        DeviceInfo::new("test", 1 << 20, 4096)
    }

    #[test]
    fn request_constructors() {
        let r = IoRequest::read(4096, 8192, SimTime::ZERO);
        assert!(r.kind.is_read());
        assert_eq!(r.end(), 12288);
        let w = IoRequest::write(0, 4096, SimTime::ZERO);
        assert!(w.kind.is_write());
    }

    #[test]
    fn validation_accepts_aligned_in_range() {
        let i = info();
        assert!(i.validate(&IoRequest::read(0, 4096, SimTime::ZERO)).is_ok());
        assert!(i
            .validate(&IoRequest::write((1 << 20) - 4096, 4096, SimTime::ZERO))
            .is_ok());
    }

    #[test]
    fn validation_rejects_zero_length() {
        assert_eq!(
            info().validate(&IoRequest::read(0, 0, SimTime::ZERO)),
            Err(IoError::ZeroLength)
        );
    }

    #[test]
    fn validation_rejects_misalignment() {
        let err = info()
            .validate(&IoRequest::read(123, 4096, SimTime::ZERO))
            .unwrap_err();
        assert!(matches!(err, IoError::Misaligned { .. }));
        let err = info()
            .validate(&IoRequest::read(0, 1000, SimTime::ZERO))
            .unwrap_err();
        assert!(matches!(err, IoError::Misaligned { .. }));
    }

    #[test]
    fn validation_rejects_out_of_range() {
        let err = info()
            .validate(&IoRequest::read(1 << 20, 4096, SimTime::ZERO))
            .unwrap_err();
        assert!(matches!(err, IoError::OutOfRange { .. }));
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn info_rejects_ragged_capacity() {
        let _ = DeviceInfo::new("bad", 1000, 4096);
    }

    #[test]
    fn errors_display_and_implement_error() {
        let e: Box<dyn Error> = Box::new(IoError::ZeroLength);
        assert!(!e.to_string().is_empty());
        assert!(IoError::OutOfRange {
            end: 10,
            capacity: 5
        }
        .to_string()
        .contains("beyond"));
    }

    #[test]
    fn trait_objects_and_references_work() {
        struct Dev;
        impl BlockDevice for Dev {
            fn info(&self) -> DeviceInfo {
                DeviceInfo::new("d", 4096, 4096)
            }
            fn submit(&mut self, req: &IoRequest) -> IoResult {
                Ok(req.submit_time)
            }
        }
        let mut d = Dev;
        let r: &mut dyn BlockDevice = &mut d;
        assert!(r.submit(&IoRequest::read(0, 4096, SimTime::ZERO)).is_ok());
        let mut boxed: Box<dyn BlockDevice> = Box::new(Dev);
        assert_eq!(boxed.info().capacity(), 4096);
        boxed.idle_until(SimTime::ZERO);
    }

    /// A device whose completion instant depends on every prior request
    /// (a busy-until timeline), so batch/sequential divergence would show.
    struct Timeline {
        busy_until: SimTime,
    }

    impl BlockDevice for Timeline {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new("timeline", 1 << 20, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            self.info().validate(req)?;
            let start = self.busy_until.max(req.submit_time);
            self.busy_until = start + uc_sim::SimDuration::from_micros(req.len as u64 / 1024);
            Ok(self.busy_until)
        }
    }

    #[test]
    fn default_submit_batch_matches_sequential_submit() {
        let reqs: Vec<IoRequest> = (0..8)
            .map(|i| IoRequest::read((i % 4) * 4096, 4096 * (1 + i as u32 % 3), SimTime::ZERO))
            .collect();
        let mut sequential = Timeline {
            busy_until: SimTime::ZERO,
        };
        let expected: Vec<SimTime> = reqs.iter().map(|r| sequential.submit(r).unwrap()).collect();
        let mut batched = Timeline {
            busy_until: SimTime::ZERO,
        };
        let batch: IoBatch = reqs.iter().copied().collect();
        let completions = batched.submit_batch(&batch).unwrap();
        assert_eq!(
            completions.iter().map(|c| c.completes).collect::<Vec<_>>(),
            expected
        );
        for (i, c) in completions.iter().enumerate() {
            assert_eq!(c.index, i);
            assert_eq!(c.len, batch.requests()[i].len);
        }
    }

    #[test]
    fn submit_batch_surfaces_first_error() {
        let mut dev = Timeline {
            busy_until: SimTime::ZERO,
        };
        let mut batch = IoBatch::new();
        batch.push(IoRequest::read(0, 4096, SimTime::ZERO));
        batch.push(IoRequest::read(1 << 20, 4096, SimTime::ZERO)); // out of range
        assert!(matches!(
            dev.submit_batch(&batch),
            Err(IoError::OutOfRange { .. })
        ));
        // The valid head of the batch was still applied to the timeline.
        assert!(dev.busy_until > SimTime::ZERO);
    }
}
