//! Device factories: thread-safe builders of fresh device instances.
//!
//! Experiments measure *fresh* devices per cell so FTL, buffer and
//! token-bucket state cannot leak between cells. [`DeviceFactory`] is the
//! seam that makes such construction schedulable: a factory is `Send +
//! Sync`, so a parallel executor can hand one shared factory to many
//! worker threads and let each cell build its own device where it runs.
//! The built device is `Send` (it may be handed to a worker), but never
//! `Sync` — a device is driven by exactly one thread at a time.

use crate::BlockDevice;

/// A thread-safe builder of fresh, independent [`BlockDevice`] instances.
///
/// `Key` selects *which* device model to build: a calibrated roster uses
/// its device-kind enum, a single-model factory uses `()`. The `seed`
/// decorrelates the jitter streams of repeated builds; factories without
/// internal randomness may ignore it.
///
/// # Example
///
/// ```
/// use uc_blockdev::{BlockDevice, DeviceFactory, DeviceInfo, FnFactory, IoRequest};
/// use uc_sim::{SimDuration, SimTime};
///
/// struct Fixed;
/// impl BlockDevice for Fixed {
///     fn info(&self) -> DeviceInfo {
///         DeviceInfo::new("fixed", 1 << 30, 512)
///     }
///     fn submit(&mut self, req: &IoRequest) -> uc_blockdev::IoResult {
///         Ok(req.submit_time + SimDuration::from_micros(10))
///     }
/// }
///
/// let factory = FnFactory::new(|_seed| Box::new(Fixed) as _);
/// let dev = factory.fresh((), 0);
/// assert_eq!(dev.info().name(), "fixed");
/// ```
pub trait DeviceFactory: Send + Sync {
    /// Selects the device model a multi-model factory builds.
    type Key: Copy + Send + Sync;

    /// Builds a fresh instance of the `key` model with jitter seed `seed`.
    fn fresh(&self, key: Self::Key, seed: u64) -> Box<dyn BlockDevice + Send>;
}

impl<F: DeviceFactory + ?Sized> DeviceFactory for &F {
    type Key = F::Key;
    fn fresh(&self, key: Self::Key, seed: u64) -> Box<dyn BlockDevice + Send> {
        (**self).fresh(key, seed)
    }
}

/// Adapts a `Fn(seed) -> Box<dyn BlockDevice + Send>` closure into a
/// single-model [`DeviceFactory`] (key `()`).
pub struct FnFactory<F>(F);

impl<F> FnFactory<F>
where
    F: Fn(u64) -> Box<dyn BlockDevice + Send> + Send + Sync,
{
    /// Wraps `build` as a factory.
    pub fn new(build: F) -> Self {
        FnFactory(build)
    }
}

impl<F> DeviceFactory for FnFactory<F>
where
    F: Fn(u64) -> Box<dyn BlockDevice + Send> + Send + Sync,
{
    type Key = ();
    fn fresh(&self, _key: (), seed: u64) -> Box<dyn BlockDevice + Send> {
        (self.0)(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeviceInfo, IoRequest, IoResult};
    use uc_sim::SimTime;

    struct Dev(u64);
    impl BlockDevice for Dev {
        fn info(&self) -> DeviceInfo {
            DeviceInfo::new(format!("dev-{}", self.0), 1 << 20, 4096)
        }
        fn submit(&mut self, req: &IoRequest) -> IoResult {
            Ok(req.submit_time)
        }
    }

    #[test]
    fn fn_factory_builds_seeded_instances() {
        let factory = FnFactory::new(|seed| Box::new(Dev(seed)) as _);
        assert_eq!(factory.fresh((), 7).info().name(), "dev-7");
        // A factory reference is itself a factory (executors borrow).
        let by_ref = &factory;
        assert_eq!(by_ref.fresh((), 9).info().name(), "dev-9");
    }

    #[test]
    fn factories_cross_threads() {
        let factory = FnFactory::new(|seed| Box::new(Dev(seed)) as _);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4u64)
                .map(|i| {
                    let f = &factory;
                    scope.spawn(move || {
                        let mut dev = f.fresh((), i);
                        dev.submit(&IoRequest::read(0, 4096, SimTime::ZERO))
                            .unwrap();
                        dev.info().name().to_string()
                    })
                })
                .collect();
            let names: Vec<String> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            assert_eq!(names, ["dev-0", "dev-1", "dev-2", "dev-3"]);
        });
    }
}
