//! The Prometheus-text metrics endpoint.
//!
//! A minimal std-only HTTP responder over the same [`Listener`]
//! abstraction the wire server uses (`tcp:` or `unix:`): every accepted
//! connection gets one `HTTP/1.0 200` response whose body is the pool's
//! live [`ObsSnapshot`](uc_obs::ObsSnapshot) rendered in Prometheus text
//! exposition format, then the connection closes. No routing, no
//! keep-alive, no HTTP parsing beyond draining the request head — the
//! endpoint exists so `curl` and a scraper can watch a serving run
//! without speaking `uc.wire.v2`.
//!
//! The responder is blocking and single-threaded by design; metric
//! scrapes are rare and the snapshot is cheap. `serve --metrics tcp:…`
//! runs it on its own thread next to the event loop.

use crate::net::Listener;
use crate::pool::ServePool;
use std::io::{self, Read, Write};
use std::sync::Arc;

/// Serves `requests` metric scrapes on `listener`, one per connection,
/// then returns how many were answered. Pass `usize::MAX` to serve until
/// the process exits.
///
/// Each response is `200 OK`, `text/plain; version=0.0.4`, body =
/// [`ServePool::obs_snapshot`] rendered as Prometheus text.
///
/// # Errors
///
/// Propagates fatal accept errors; per-connection I/O failures only drop
/// that scrape (and still count it).
pub fn serve_metrics(
    listener: &Listener,
    pool: &Arc<ServePool>,
    requests: usize,
) -> io::Result<u64> {
    let mut served: u64 = 0;
    while (served as usize) < requests {
        let mut conn = match listener.accept() {
            Ok(c) => c,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        // Drain the request head best-effort; the response is the same
        // whatever was asked.
        let mut buf = [0u8; 4096];
        let _ = conn.read(&mut buf);
        let body = pool.obs_snapshot().render_prometheus();
        let response = format!(
            "HTTP/1.0 200 OK\r\n\
             Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
             Content-Length: {}\r\n\
             Connection: close\r\n\r\n{}",
            body.len(),
            body
        );
        let _ = conn.write_all(response.as_bytes());
        let _ = conn.flush();
        let _ = conn.shutdown_both();
        served += 1;
    }
    Ok(served)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Endpoint;
    use crate::pool::PoolConfig;
    use uc_blockdev::{BlockDevice, IoRequest};
    use uc_sim::SimTime;
    use uc_ssd::{Ssd, SsdConfig};

    #[test]
    fn scrape_returns_prometheus_text() {
        let pool = Arc::new(ServePool::new(
            vec![(
                "ssd".to_string(),
                Box::new(Ssd::new(SsdConfig::samsung_970_pro(64 << 20)))
                    as Box<dyn BlockDevice + Send>,
            )],
            PoolConfig::default(),
        ));
        // Put some traffic on the pool so the scrape carries real values.
        let mut dev = pool.device(0).unwrap();
        dev.submit(&IoRequest::write(0, 4096, SimTime::ZERO))
            .unwrap();
        drop(dev);

        let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let server = {
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || serve_metrics(&listener, &pool, 1))
        };

        let mut conn = endpoint.connect().unwrap();
        conn.write_all(b"GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        conn.flush().unwrap();
        let mut response = String::new();
        conn.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.0 200 OK"), "{response}");
        assert!(
            response.contains("# TYPE serve_pool_ios counter"),
            "{response}"
        );
        assert!(response.contains("serve_pool_ios 1"), "{response}");
        assert!(
            response.contains("serve_lane0_service_ns_count 1"),
            "{response}"
        );
        // The device's own internals ride the same scrape.
        assert!(
            response.contains("serve_device0_ftl_host_pages_written"),
            "{response}"
        );
        assert_eq!(server.join().unwrap().unwrap(), 1);
    }
}
