//! The remote-device client: a [`BlockDevice`] over a `uc.wire.v1`
//! connection.
//!
//! [`RemoteDevice`] opens a session on a served lane and speaks the
//! plain [`BlockDevice`] interface, so the existing drivers — trace
//! replay above all — become network load generators unchanged. The
//! backpressure protocol is handled inside `submit_batch`:
//!
//! * BUSY/ring-full → the batch is split in half and resubmitted
//!   (splitting a doorbell never changes the device-side schedule, since
//!   every request carries its own submit instant); a refused
//!   single-request batch is a server misconfiguration and panics;
//! * BUSY/overload → back off briefly and resend the same batch;
//! * a typed ERR frame carrying an [`IoError`] → returned as that error,
//!   exactly as a local device would.
//!
//! Transport failures (connection reset, corrupt server frames) panic
//! with a diagnostic: [`BlockDevice::submit`] can only carry an
//! [`IoError`], and a dead connection mid-replay has no meaningful
//! recovery — the replay's determinism contract is already broken.

use crate::net::{Endpoint, Stream};
use crate::wire::{BusyReason, Frame, WireStats};
use std::io::{self, BufReader};
use std::time::Duration;
use uc_blockdev::{BlockDevice, Completion, DeviceInfo, IoBatch, IoError, IoRequest, IoResult};

/// How long the client backs off before resending an overload-shed
/// batch. Wall-clock, not simulated: overload is a property of the real
/// server process.
const OVERLOAD_BACKOFF: Duration = Duration::from_micros(200);

/// A served device lane, driven over a connection.
pub struct RemoteDevice {
    reader: BufReader<Box<dyn Stream>>,
    writer: Box<dyn Stream>,
    info: DeviceInfo,
    session: u32,
    seq: u64,
    ring_full_splits: u64,
    overload_retries: u64,
}

impl RemoteDevice {
    /// Connects to `endpoint` and opens a session on device lane
    /// `device`.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; a protocol-level refusal (unknown
    /// lane, ERR reply) comes back as [`io::ErrorKind::InvalidData`]
    /// with the server's message.
    pub fn open(endpoint: &Endpoint, device: u32) -> io::Result<RemoteDevice> {
        let stream = endpoint.connect()?;
        let mut writer = stream.try_clone_stream()?;
        let mut reader = BufReader::new(stream);
        Frame::OpenSession { device }.write_to(&mut writer)?;
        match Frame::read_from(&mut reader) {
            Ok(Some(Frame::OpenOk {
                session,
                name,
                capacity,
                logical_block,
            })) => Ok(RemoteDevice {
                reader,
                writer,
                info: DeviceInfo::new(name, capacity, logical_block),
                session,
                seq: 0,
                ring_full_splits: 0,
                overload_retries: 0,
            }),
            Ok(Some(Frame::Err { message, .. })) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("server refused session: {message}"),
            )),
            Ok(Some(other)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected OPEN_OK, got {}", other.kind()),
            )),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection during the handshake",
            )),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad OPEN_OK frame: {e}"),
            )),
        }
    }

    /// The session id the server assigned.
    pub fn session(&self) -> u32 {
        self.session
    }

    /// Ring-full refusals this client resolved by splitting.
    pub fn ring_full_splits(&self) -> u64 {
        self.ring_full_splits
    }

    /// Overload sheds this client resolved by backing off.
    pub fn overload_retries(&self) -> u64 {
        self.overload_retries
    }

    /// Fetches the session's server-side ledger.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; protocol violations come back as
    /// [`io::ErrorKind::InvalidData`].
    pub fn session_stats(&mut self) -> io::Result<WireStats> {
        Frame::Stats {
            session: self.session,
        }
        .write_to(&mut self.writer)?;
        match Frame::read_from(&mut self.reader) {
            Ok(Some(Frame::StatsOk { stats, .. })) => Ok(stats),
            Ok(Some(other)) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected STATS_OK, got {}", other.kind()),
            )),
            Ok(None) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-exchange",
            )),
            Err(e) => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad STATS_OK frame: {e}"),
            )),
        }
    }

    /// Closes the session cleanly (CLOSE / CLOSE_OK) and shuts the
    /// connection down.
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn close(mut self) -> io::Result<()> {
        Frame::Close.write_to(&mut self.writer)?;
        match Frame::read_from(&mut self.reader) {
            Ok(Some(Frame::CloseOk)) | Ok(None) => {}
            Ok(Some(other)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected CLOSE_OK, got {}", other.kind()),
                ))
            }
            Err(e) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad CLOSE_OK frame: {e}"),
                ))
            }
        }
        self.writer.shutdown_both()
    }

    /// Submits `reqs` as one frame, resolving backpressure; completions
    /// are appended to `out` with indices rebased to `base`.
    fn submit_chunk(
        &mut self,
        reqs: &[IoRequest],
        base: usize,
        out: &mut Vec<Completion>,
    ) -> Result<(), IoError> {
        self.seq += 1;
        let frame = Frame::Submit {
            session: self.session,
            seq: self.seq,
            reqs: reqs.to_vec(),
        };
        frame
            .write_to(&mut self.writer)
            .unwrap_or_else(|e| panic!("connection lost sending submit frame: {e}"));
        loop {
            match Frame::read_from(&mut self.reader) {
                Ok(Some(Frame::Completions { seq, completions })) => {
                    assert_eq!(seq, self.seq, "completions answer a different submit frame");
                    out.extend(completions.into_iter().map(|c| Completion {
                        index: base + c.index,
                        ..c
                    }));
                    return Ok(());
                }
                Ok(Some(Frame::Busy { seq, reason })) => {
                    assert_eq!(seq, self.seq, "busy answers a different submit frame");
                    match reason {
                        BusyReason::RingFull => {
                            assert!(
                                reqs.len() > 1,
                                "server ring refused a single request — ring size zero?"
                            );
                            self.ring_full_splits += 1;
                            let mid = reqs.len() / 2;
                            self.submit_chunk(&reqs[..mid], base, out)?;
                            return self.submit_chunk(&reqs[mid..], base + mid, out);
                        }
                        BusyReason::Overload => {
                            self.overload_retries += 1;
                            std::thread::sleep(OVERLOAD_BACKOFF);
                            self.seq += 1;
                            Frame::Submit {
                                session: self.session,
                                seq: self.seq,
                                reqs: reqs.to_vec(),
                            }
                            .write_to(&mut self.writer)
                            .unwrap_or_else(|e| {
                                panic!("connection lost resending submit frame: {e}")
                            });
                        }
                    }
                }
                Ok(Some(Frame::Err { io: Some(e), .. })) => return Err(e),
                Ok(Some(Frame::Err { io: None, message })) => {
                    panic!("server reported a protocol error: {message}")
                }
                Ok(Some(other)) => panic!("unexpected frame {} mid-submit", other.kind()),
                Ok(None) => panic!("server closed the connection mid-submit"),
                Err(e) => panic!("corrupt frame from server: {e}"),
            }
        }
    }
}

impl BlockDevice for RemoteDevice {
    fn info(&self) -> DeviceInfo {
        self.info.clone()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        let mut out = Vec::with_capacity(1);
        self.submit_chunk(std::slice::from_ref(req), 0, &mut out)?;
        Ok(out[0].completes)
    }

    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        let mut out = Vec::with_capacity(batch.len());
        if !batch.is_empty() {
            self.submit_chunk(batch.requests(), 0, &mut out)?;
        }
        Ok(out)
    }
}
