//! The `uc.wire.v2` client: resumable multi-lane sessions, plus the
//! [`RemoteDevice`] adapter that keeps the [`BlockDevice`] seam.
//!
//! [`WireClient`] owns one wire session: the connection handshake
//! (`OPEN`/`OPEN_OK`), lane attachment, synchronous per-lane calls, and —
//! the point of v2 — *transparent reconnection*. Every request a client
//! sends stays parked per lane until its response arrives; if the
//! connection dies at any point, the client reconnects, presents its
//! session token and per-lane received-seq acks in `RESUME`, and the
//! exchange continues exactly once:
//!
//! * a lane listed in `RESUME_OK`'s replay list had its response cached
//!   server-side — the client must *not* resend (the bytes are already
//!   on the way, byte-identical);
//! * a lane not listed was never processed — the client resends its
//!   parked request under the same seq.
//!
//! [`RemoteDevice`] layers the [`BlockDevice`] interface on one device
//! lane. Backpressure is resolved *iteratively*: a ring-full refusal
//! splits the chunk in half on an explicit work queue (never the call
//! stack), and a single-request chunk that keeps being refused trips a
//! retry cap into the typed [`IoError::RingSaturated`] — a hostile or
//! misconfigured server can neither blow the stack nor spin the client
//! forever.

use crate::net::{Endpoint, Stream};
use crate::wire::{
    Body, BusyReason, ErrCode, Frame, FrameHeader, LaneAck, LaneTarget, WireStats, CONTROL_LANE,
    WIRE_VERSION,
};
use std::collections::VecDeque;
use std::io::{self, BufReader};
use std::time::Duration;
use uc_blockdev::{BlockDevice, Completion, DeviceInfo, IoBatch, IoError, IoRequest, IoResult};
use uc_persist::DecodeError;

/// How long the client backs off before resending an overload-shed
/// batch. Wall-clock, not simulated: overload is a property of the real
/// server process.
const OVERLOAD_BACKOFF: Duration = Duration::from_micros(200);

/// Reconnect attempts before a resume gives up (each preceded by a
/// short sleep; the server may be mid-restart of its accept path).
const RESUME_ATTEMPTS: u32 = 50;
const RESUME_BACKOFF: Duration = Duration::from_millis(2);

/// Ring-full refusals of a *single-request* chunk tolerated before the
/// client declares the ring saturated.
const RING_RETRY_CAP: u32 = 32;

fn proto_err(message: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, message)
}

struct LaneCli {
    /// Seq the next request on this lane will carry (starts at 1).
    next_seq: u64,
    /// Highest response seq received — the ack presented in `RESUME`.
    last_received: u64,
    /// The request awaiting its response: `(seq, body)`. Encoded at send
    /// time so a resume under a fresh token re-frames it correctly.
    pending: Option<(u64, Body)>,
}

impl LaneCli {
    fn new() -> Self {
        LaneCli {
            next_seq: 1,
            last_received: 0,
            pending: None,
        }
    }
}

/// One resumable `uc.wire.v2` session: the control lane plus any
/// attached device/tenant lanes, multiplexed over one connection that
/// may be replaced any number of times.
pub struct WireClient {
    endpoint: Endpoint,
    reader: BufReader<Box<dyn Stream>>,
    writer: Box<dyn Stream>,
    token: u64,
    lanes: Vec<LaneCli>,
    /// Test hook: shut the connection down after this many more
    /// data-frame writes (simulating a mid-stream kill).
    kill_after: Option<u64>,
    frames_sent: u64,
    resumes: u64,
}

impl WireClient {
    /// Connects to `endpoint` and opens a fresh session.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; a refusal (version mismatch, ERR
    /// reply) comes back as [`io::ErrorKind::InvalidData`] with the
    /// server's message.
    pub fn connect(endpoint: &Endpoint) -> io::Result<WireClient> {
        let stream = endpoint.connect()?;
        let mut writer = stream.try_clone_stream()?;
        let mut reader = BufReader::new(stream);
        Frame::new(
            FrameHeader::connection(),
            Body::Open {
                version: WIRE_VERSION,
            },
        )
        .write_to(&mut writer)?;
        let token = match Frame::read_from(&mut reader) {
            Ok(Some(Frame {
                body: Body::OpenOk { token },
                ..
            })) => token,
            Ok(Some(Frame {
                body: Body::Err { code, message, .. },
                ..
            })) => {
                return Err(proto_err(format!(
                    "server refused session ({code:?}): {message}"
                )))
            }
            Ok(Some(other)) => {
                return Err(proto_err(format!("expected OPEN_OK, got {}", other.kind())))
            }
            Ok(None) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection during the handshake",
                ))
            }
            Err(e) => return Err(proto_err(format!("bad OPEN_OK frame: {e}"))),
        };
        Ok(WireClient {
            endpoint: endpoint.clone(),
            reader,
            writer,
            token,
            lanes: vec![LaneCli::new()],
            kill_after: None,
            frames_sent: 0,
            resumes: 0,
        })
    }

    /// The server-issued session token.
    pub fn token(&self) -> u64 {
        self.token
    }

    /// Successful resume handshakes this client has performed.
    pub fn resumes(&self) -> u64 {
        self.resumes
    }

    /// Data frames written so far (handshake frames excluded) — lets a
    /// test measure a run once, then pick a kill point inside it.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Test hook: kill the connection after `frames` more data-frame
    /// writes. The next exchange then exercises the reconnect-and-resume
    /// path; the hook fires once.
    pub fn set_kill_after(&mut self, frames: u64) {
        self.kill_after = Some(frames);
    }

    /// Attaches a data lane and returns `(lane, name, capacity,
    /// logical_block)` — capacity is the region span and `logical_block`
    /// the fleet I/O size for tenant lanes.
    ///
    /// # Errors
    ///
    /// A typed server refusal comes back as
    /// [`io::ErrorKind::InvalidData`].
    pub fn attach(&mut self, target: LaneTarget) -> io::Result<(u32, String, u64, u32)> {
        match self.call(CONTROL_LANE, Body::Attach { target })? {
            Body::AttachOk {
                lane,
                name,
                capacity,
                logical_block,
            } => {
                debug_assert_eq!(lane as usize, self.lanes.len(), "lane ids are dense");
                self.lanes.push(LaneCli::new());
                Ok((lane, name, capacity, logical_block))
            }
            Body::Err { message, .. } => Err(proto_err(format!("attach refused: {message}"))),
            other => Err(proto_err(format!("expected ATTACH_OK, got {other:?}"))),
        }
    }

    /// One synchronous exchange on `lane`: assigns the next seq, sends
    /// `body`, and reads until the matching response arrives — resuming
    /// transparently across any number of connection deaths in between.
    ///
    /// # Errors
    ///
    /// Unrecoverable transport failure (the server is gone) or a
    /// protocol violation.
    pub fn call(&mut self, lane: u32, body: Body) -> io::Result<Body> {
        let li = lane as usize;
        let seq = self.lanes[li].next_seq;
        self.lanes[li].next_seq += 1;
        self.lanes[li].pending = Some((seq, body));
        if self.send_pending(li).is_err() {
            self.reconnect()?;
        }
        let (got_lane, got_seq, resp) = self.read_response()?;
        if got_lane == lane && got_seq == seq {
            self.lanes[li].pending = None;
            self.lanes[li].last_received = seq;
            return Ok(resp);
        }
        Err(proto_err(format!(
            "response for lane {got_lane} seq {got_seq} while awaiting lane {lane} seq {seq}: {resp:?}"
        )))
    }

    /// Flushes `epoch` on every lane in `lanes` — all flush frames are
    /// *sent* before any `FLUSH_OK` is awaited, because the server's
    /// epoch barrier needs every tenant's flush before it answers anyone
    /// (a lane-at-a-time client sharing tenants would deadlock itself).
    ///
    /// Returns, per lane, the rebalance target if the epoch moved that
    /// lane's tenant (`LANE_MOVED`).
    ///
    /// # Errors
    ///
    /// As [`call`](WireClient::call); an epoch-mismatch refusal is
    /// [`io::ErrorKind::InvalidData`].
    pub fn flush_epoch(
        &mut self,
        lanes: &[u32],
        epoch: u64,
    ) -> io::Result<Vec<(u32, Option<u32>)>> {
        for &lane in lanes {
            let li = lane as usize;
            let seq = self.lanes[li].next_seq;
            self.lanes[li].next_seq += 1;
            self.lanes[li].pending = Some((seq, Body::Flush { epoch }));
        }
        for &lane in lanes {
            if self.send_pending(lane as usize).is_err() {
                // The resume resends every parked flush, including the
                // ones this loop never got to.
                self.reconnect()?;
                break;
            }
        }
        let mut moves: Vec<(u32, Option<u32>)> = lanes.iter().map(|&l| (l, None)).collect();
        let mut done = 0;
        while done < lanes.len() {
            let (lane, seq, resp) = self.read_response()?;
            let li = lane as usize;
            let pending_seq = self
                .lanes
                .get(li)
                .and_then(|l| l.pending.as_ref().map(|(s, _)| *s));
            if pending_seq != Some(seq) {
                return Err(proto_err(format!(
                    "unexpected frame on lane {lane} seq {seq} during flush: {resp:?}"
                )));
            }
            match resp {
                Body::LaneMoved { to_device } => {
                    // Recorded idempotently: a resume may replay it.
                    if let Some(entry) = moves.iter_mut().find(|(l, _)| *l == lane) {
                        entry.1 = Some(to_device);
                    }
                }
                Body::FlushOk { epoch: got } if got == epoch => {
                    self.lanes[li].pending = None;
                    self.lanes[li].last_received = seq;
                    done += 1;
                }
                Body::Err { message, .. } => {
                    return Err(proto_err(format!("flush refused: {message}")))
                }
                other => {
                    return Err(proto_err(format!(
                        "expected FLUSH_OK on lane {lane}, got {other:?}"
                    )))
                }
            }
        }
        Ok(moves)
    }

    /// Pulls the server's live telemetry snapshot over the control lane
    /// (`METRICS`/`METRICS_OK`): every pool counter, per-lane latency
    /// percentile, and event-loop counter the server exports.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; a refusal comes back as
    /// [`io::ErrorKind::InvalidData`].
    pub fn metrics(&mut self) -> io::Result<uc_obs::ObsSnapshot> {
        match self.call(CONTROL_LANE, Body::Metrics)? {
            Body::MetricsOk { snapshot } => Ok(snapshot),
            Body::Err { message, .. } => Err(proto_err(format!("metrics refused: {message}"))),
            other => Err(proto_err(format!("expected METRICS_OK, got {other:?}"))),
        }
    }

    /// Closes the session cleanly (`CLOSE`/`CLOSE_OK`) and shuts the
    /// connection down.
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn close(mut self) -> io::Result<()> {
        match self.call(CONTROL_LANE, Body::Close)? {
            Body::CloseOk => {
                let _ = self.writer.shutdown_both();
                Ok(())
            }
            other => Err(proto_err(format!("expected CLOSE_OK, got {other:?}"))),
        }
    }

    /// Reads one frame, resuming on transport loss. Returns `(lane, seq,
    /// body)`.
    fn read_response(&mut self) -> io::Result<(u32, u64, Body)> {
        loop {
            match Frame::read_from(&mut self.reader) {
                Ok(Some(frame)) => {
                    return Ok((frame.header.lane, frame.header.seq, frame.body));
                }
                // A clean EOF or an I/O error mid-frame are both the
                // connection dying; everything else is corruption.
                Ok(None) | Err(DecodeError::Io { .. }) => self.reconnect()?,
                Err(e) => return Err(proto_err(format!("corrupt frame from server: {e}"))),
            }
        }
    }

    /// Encodes and sends lane `li`'s parked request under the current
    /// token.
    fn send_pending(&mut self, li: usize) -> io::Result<()> {
        let Some((seq, body)) = self.lanes[li].pending.clone() else {
            return Ok(());
        };
        let bytes = Frame::new(
            FrameHeader {
                session: self.token,
                lane: li as u32,
                seq,
            },
            body,
        )
        .encode();
        self.send_bytes(&bytes)
    }

    fn send_bytes(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        if self.kill_after == Some(0) {
            self.kill_after = None;
            let _ = self.writer.shutdown_both();
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "test hook: connection killed before frame write",
            ));
        }
        self.writer.write_all(bytes)?;
        self.writer.flush()?;
        self.frames_sent += 1;
        if let Some(left) = self.kill_after.as_mut() {
            *left -= 1;
            if *left == 0 {
                self.kill_after = None;
                // The frame may or may not have reached the server — the
                // resume protocol's replay list resolves which.
                let _ = self.writer.shutdown_both();
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "test hook: connection killed after frame write",
                ));
            }
        }
        Ok(())
    }

    /// Reconnects and resumes the session, retrying transient failures.
    fn reconnect(&mut self) -> io::Result<()> {
        let mut last = None;
        for _ in 0..RESUME_ATTEMPTS {
            std::thread::sleep(RESUME_BACKOFF);
            match self.try_resume() {
                Ok(()) => {
                    self.resumes += 1;
                    return Ok(());
                }
                // A protocol-level refusal will not get better with age.
                Err(e) if e.kind() == io::ErrorKind::InvalidData => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::TimedOut, "resume attempts exhausted")
        }))
    }

    fn try_resume(&mut self) -> io::Result<()> {
        let stream = self.endpoint.connect()?;
        let mut writer = stream.try_clone_stream()?;
        let mut reader = BufReader::new(stream);
        let acks: Vec<LaneAck> = self
            .lanes
            .iter()
            .enumerate()
            .map(|(li, l)| LaneAck {
                lane: li as u32,
                seq: l.last_received,
            })
            .collect();
        Frame::new(
            FrameHeader {
                session: self.token,
                lane: CONTROL_LANE,
                seq: 0,
            },
            Body::Resume { acks },
        )
        .write_to(&mut writer)?;
        let replay = match Frame::read_from(&mut reader) {
            Ok(Some(Frame {
                body: Body::ResumeOk { replay, .. },
                ..
            })) => replay,
            Ok(Some(Frame {
                body:
                    Body::Err {
                        code: ErrCode::UnknownSession,
                        message,
                        ..
                    },
                ..
            })) => {
                if self.lanes.len() == 1 {
                    // Nothing was ever attached: the server
                    // garbage-collects such sessions on disconnect, so
                    // start a fresh one. Only a control-lane request
                    // (the first attach) can be parked, and it renumbers
                    // from seq 1 under the new token. If the disconnect
                    // raced the attach and the server *did* process it,
                    // the session survived with a data lane and the
                    // `RESUME_OK` arm above already took it.
                    return self.fresh_open();
                }
                return Err(proto_err(format!("session not resumable: {message}")));
            }
            other => return Err(proto_err(format!("expected RESUME_OK, got {other:?}"))),
        };
        self.reader = reader;
        self.writer = writer;
        // Exactly-once: replayed lanes have their response already in
        // flight; every other parked request was never processed and is
        // resent under its original seq.
        for li in 0..self.lanes.len() {
            let replayed = replay.iter().any(|a| a.lane == li as u32);
            if self.lanes[li].pending.is_some() && !replayed {
                self.send_pending(li)?;
            }
        }
        Ok(())
    }

    /// Opens a brand-new session on a fresh connection — the fallback
    /// when the server no longer knows the old token and no data lane
    /// was ever established.
    fn fresh_open(&mut self) -> io::Result<()> {
        let stream = self.endpoint.connect()?;
        let mut writer = stream.try_clone_stream()?;
        let mut reader = BufReader::new(stream);
        Frame::new(
            FrameHeader::connection(),
            Body::Open {
                version: WIRE_VERSION,
            },
        )
        .write_to(&mut writer)?;
        let token = match Frame::read_from(&mut reader) {
            Ok(Some(Frame {
                body: Body::OpenOk { token },
                ..
            })) => token,
            other => return Err(proto_err(format!("expected OPEN_OK, got {other:?}"))),
        };
        self.token = token;
        self.reader = reader;
        self.writer = writer;
        let lane = &mut self.lanes[0];
        lane.last_received = 0;
        if let Some((_, body)) = lane.pending.take() {
            lane.next_seq = 2;
            lane.pending = Some((1, body));
        } else {
            lane.next_seq = 1;
        }
        self.send_pending(0)
    }
}

/// A served device lane speaking the plain [`BlockDevice`] interface,
/// with transparent reconnect underneath.
pub struct RemoteDevice {
    client: WireClient,
    lane: u32,
    info: DeviceInfo,
    ring_full_splits: u64,
    overload_retries: u64,
}

impl RemoteDevice {
    /// Connects to `endpoint`, opens a session, and attaches device lane
    /// `device`.
    ///
    /// # Errors
    ///
    /// As [`WireClient::connect`] / [`WireClient::attach`].
    pub fn open(endpoint: &Endpoint, device: u32) -> io::Result<RemoteDevice> {
        let mut client = WireClient::connect(endpoint)?;
        let (lane, name, capacity, logical_block) = client.attach(LaneTarget::Device(device))?;
        Ok(RemoteDevice {
            client,
            lane,
            info: DeviceInfo::new(name, capacity, logical_block),
            ring_full_splits: 0,
            overload_retries: 0,
        })
    }

    /// The session token the server issued.
    pub fn token(&self) -> u64 {
        self.client.token()
    }

    /// The wire lane this device rides.
    pub fn lane(&self) -> u32 {
        self.lane
    }

    /// Ring-full refusals this client resolved by splitting.
    pub fn ring_full_splits(&self) -> u64 {
        self.ring_full_splits
    }

    /// Overload sheds this client resolved by backing off.
    pub fn overload_retries(&self) -> u64 {
        self.overload_retries
    }

    /// Resume handshakes performed under this device.
    pub fn resumes(&self) -> u64 {
        self.client.resumes()
    }

    /// Data frames written so far (see [`WireClient::frames_sent`]).
    pub fn frames_sent(&self) -> u64 {
        self.client.frames_sent()
    }

    /// Test hook: kill the connection after `frames` more data-frame
    /// writes (see [`WireClient::set_kill_after`]).
    pub fn set_kill_after(&mut self, frames: u64) {
        self.client.set_kill_after(frames);
    }

    /// Pulls the server's live telemetry snapshot (see
    /// [`WireClient::metrics`]).
    ///
    /// # Errors
    ///
    /// As [`WireClient::metrics`].
    pub fn metrics(&mut self) -> io::Result<uc_obs::ObsSnapshot> {
        self.client.metrics()
    }

    /// Fetches the lane's server-side ledger.
    ///
    /// # Errors
    ///
    /// Transport errors propagate; protocol violations come back as
    /// [`io::ErrorKind::InvalidData`].
    pub fn session_stats(&mut self) -> io::Result<WireStats> {
        match self.client.call(self.lane, Body::Stats)? {
            Body::StatsOk { stats } => Ok(stats),
            Body::Err { message, .. } => Err(proto_err(format!("stats refused: {message}"))),
            other => Err(proto_err(format!("expected STATS_OK, got {other:?}"))),
        }
    }

    /// Closes the session cleanly.
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn close(self) -> io::Result<()> {
        self.client.close()
    }
}

impl BlockDevice for RemoteDevice {
    fn info(&self) -> DeviceInfo {
        self.info.clone()
    }

    fn submit(&mut self, req: &IoRequest) -> IoResult {
        let completions = self.submit_batch(&IoBatch::from(vec![*req]))?;
        Ok(completions[0].completes)
    }

    fn submit_batch(&mut self, batch: &IoBatch) -> Result<Vec<Completion>, IoError> {
        let reqs = batch.requests();
        let mut out = Vec::with_capacity(reqs.len());
        // Iterative ring-full splitting: an explicit work queue of
        // `(start, len)` chunks, processed left-to-right so completions
        // come out in submission order. A split pushes the two halves
        // back at the front (left first); depth is bounded by the queue,
        // not the call stack.
        let mut queue: VecDeque<(usize, usize)> = VecDeque::new();
        if !reqs.is_empty() {
            queue.push_back((0, reqs.len()));
        }
        let mut refusals: u32 = 0;
        while let Some((start, len)) = queue.pop_front() {
            let chunk = &reqs[start..start + len];
            match self
                .client
                .call(
                    self.lane,
                    Body::Submit {
                        reqs: chunk.to_vec(),
                    },
                )
                .unwrap_or_else(|e| panic!("connection lost beyond recovery: {e}"))
            {
                Body::Completions { completions } => {
                    out.extend(completions.into_iter().map(|c| Completion {
                        index: start + c.index,
                        ..c
                    }));
                }
                Body::Busy {
                    reason: BusyReason::RingFull,
                } => {
                    if len > 1 {
                        self.ring_full_splits += 1;
                        let mid = len / 2;
                        queue.push_front((start + mid, len - mid));
                        queue.push_front((start, mid));
                    } else {
                        // A 1-request chunk cannot split further; a ring
                        // that still refuses it is saturated (or lying).
                        refusals += 1;
                        if refusals > RING_RETRY_CAP {
                            return Err(IoError::RingSaturated { ring: 1, refusals });
                        }
                        queue.push_front((start, len));
                    }
                }
                Body::Busy {
                    reason: BusyReason::Overload,
                } => {
                    self.overload_retries += 1;
                    std::thread::sleep(OVERLOAD_BACKOFF);
                    queue.push_front((start, len));
                }
                Body::Err { io: Some(e), .. } => return Err(e),
                Body::Err {
                    io: None, message, ..
                } => panic!("server reported a protocol error: {message}"),
                other => panic!("unexpected frame mid-submit: {other:?}"),
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::Listener;
    use uc_sim::SimTime;

    /// A hostile server: honours the handshake and attach, then refuses
    /// every submit with ring-full forever.
    fn spawn_always_ring_full() -> (Endpoint, std::thread::JoinHandle<()>) {
        let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap()).unwrap();
        let endpoint = listener.local_endpoint().unwrap();
        let handle = std::thread::spawn(move || {
            let mut conn = listener.accept().unwrap();
            let mut writer = conn.try_clone_stream().unwrap();
            loop {
                let frame = match Frame::read_from(&mut conn) {
                    Ok(Some(f)) => f,
                    _ => return,
                };
                let reply = match frame.body {
                    Body::Open { .. } => {
                        Frame::new(FrameHeader::connection(), Body::OpenOk { token: 1 })
                    }
                    Body::Attach { .. } => Frame::new(
                        frame.header,
                        Body::AttachOk {
                            lane: 1,
                            name: "liar".to_string(),
                            capacity: 1 << 30,
                            logical_block: 512,
                        },
                    ),
                    Body::Submit { .. } => Frame::new(
                        frame.header,
                        Body::Busy {
                            reason: BusyReason::RingFull,
                        },
                    ),
                    _ => return,
                };
                if reply.write_to(&mut writer).is_err() {
                    return;
                }
            }
        });
        (endpoint, handle)
    }

    #[test]
    fn a_server_that_always_refuses_trips_ring_saturated() {
        let (endpoint, server) = spawn_always_ring_full();
        let mut device = RemoteDevice::open(&endpoint, 0).unwrap();
        // Two requests: the refusal splits them once, then each single
        // request keeps being refused until the retry cap trips — on the
        // work queue, not the call stack, so even a huge batch would not
        // recurse.
        let batch: IoBatch = (0..2u64)
            .map(|i| IoRequest::write(i * 4096, 4096, SimTime::from_nanos(i)))
            .collect();
        let err = device.submit_batch(&batch).unwrap_err();
        assert_eq!(
            err,
            IoError::RingSaturated {
                ring: 1,
                refusals: RING_RETRY_CAP + 1
            }
        );
        assert_eq!(device.ring_full_splits(), 1);
        drop(device);
        drop(server); // the hostile server thread exits on EOF
        let _ = endpoint;
    }
}
