//! The `uc.wire.v2` frame vocabulary: multi-lane, resumable sessions.
//!
//! Every frame rides the `uc-persist` record envelope (8-byte magic,
//! format version, kind tag, payload, CRC-32), so corruption anywhere on
//! the connection — a truncated read, a flipped bit, a foreign kind tag —
//! decodes to a typed [`DecodeError`], never a panic.
//!
//! v2 collapses v1's ten flat frame shapes into one
//! [`Frame`] `{ header, body }`: every frame carries the same
//! [`FrameHeader`] (session token, lane id, per-lane sequence number),
//! and the [`Body`] says what it means. The header is what makes
//! sessions resumable: a reconnecting client presents its token and the
//! highest seq it has *received* per lane, and the server replays only
//! the responses past those acks.
//!
//! | kind tag                   | direction | lane    | body |
//! |----------------------------|-----------|---------|------|
//! | `uc.wire.open.v2`          | C → S     | —       | protocol version |
//! | `uc.wire.open-ok.v2`       | S → C     | —       | session token |
//! | `uc.wire.resume.v2`        | C → S     | —       | per-lane received-seq acks |
//! | `uc.wire.resume-ok.v2`     | S → C     | —       | lane count, replay list |
//! | `uc.wire.attach.v2`        | C → S     | control | device or tenant target |
//! | `uc.wire.attach-ok.v2`     | S → C     | control | name, capacity, logical block |
//! | `uc.wire.submit.v2`        | C → S     | data    | request list |
//! | `uc.wire.completions.v2`   | S → C     | device  | completion list |
//! | `uc.wire.push-ok.v2`       | S → C     | tenant  | accepted entry count |
//! | `uc.wire.busy.v2`          | S → C     | device  | backpressure reason |
//! | `uc.wire.stats.v2`         | C → S     | data    | (empty) |
//! | `uc.wire.stats-ok.v2`      | S → C     | data    | session ledger + queue head |
//! | `uc.wire.metrics.v2`       | C → S     | control | (empty) |
//! | `uc.wire.metrics-ok.v2`    | S → C     | control | live [`ObsSnapshot`] |
//! | `uc.wire.flush.v2`         | C → S     | tenant  | epoch index |
//! | `uc.wire.flush-ok.v2`      | S → C     | tenant  | epoch index |
//! | `uc.wire.lane-moved.v2`    | S → C     | tenant  | new home device |
//! | `uc.wire.close.v2`         | C → S     | control | (empty) |
//! | `uc.wire.close-ok.v2`      | S → C     | control | (empty) |
//! | `uc.wire.err.v2`           | S → C     | any     | [`ErrCode`], optional [`IoError`], message |
//!
//! On a *device* lane a submit frame's request list is a doorbelled
//! batch (instants validated non-decreasing on decode, exactly as in
//! v1); on a *tenant* lane the same list carries the tenant's arrival
//! entries, answered with `push-ok`. Rebalancing surfaces as a typed
//! `lane-moved` frame ahead of the epoch's `flush-ok` instead of an
//! error.

use std::io::{Read, Write};
use uc_blockdev::{Completion, IoError, IoKind, IoRequest, SessionStats};
use uc_obs::ObsSnapshot;
use uc_persist::{encode_record, read_record_from, DecodeError, Decoder, Encoder, Persist};
use uc_sim::SimTime;

/// The protocol version this module speaks, sent in `OPEN`.
pub const WIRE_VERSION: u16 = 2;

/// The control lane every session starts with: `ATTACH`, session-wide
/// `CLOSE`, and their replies ride lane 0; data lanes are numbered from
/// 1 in attach order.
pub const CONTROL_LANE: u32 = 0;

/// Why the server refused a submit frame (backpressure, not failure).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyReason {
    /// The batch exceeded the per-connection submission ring; resubmit
    /// in smaller pieces.
    RingFull,
    /// The server is above its in-flight ceiling; back off and retry.
    Overload,
}

impl BusyReason {
    pub(crate) fn tag(self) -> u8 {
        match self {
            BusyReason::RingFull => 0,
            BusyReason::Overload => 1,
        }
    }

    pub(crate) fn from_tag(tag: u8) -> Result<Self, DecodeError> {
        match tag {
            0 => Ok(BusyReason::RingFull),
            1 => Ok(BusyReason::Overload),
            _ => Err(DecodeError::InvalidValue {
                what: "BusyReason tag",
            }),
        }
    }
}

/// One session's server-side ledger as reported by a STATS exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireStats {
    /// The per-session ledger (ios, bytes, clamped, last submit).
    pub stats: SessionStats,
    /// The device's queue head (latest doorbelled instant across all
    /// sessions on the lane).
    pub queue_head: SimTime,
}

/// The shared prefix of every v2 frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// The server-issued session token (0 until `OPEN_OK` assigns one).
    pub session: u64,
    /// The lane the frame belongs to; [`CONTROL_LANE`] for session
    /// control, data lanes from 1.
    pub lane: u32,
    /// Per-lane sequence number. Requests number the client's stream,
    /// replies echo the request's seq; connection-level frames
    /// (`OPEN`/`RESUME` and their replies) carry 0.
    pub seq: u64,
}

impl FrameHeader {
    /// A connection-level header: no session yet, control lane, seq 0.
    pub fn connection() -> Self {
        FrameHeader {
            session: 0,
            lane: CONTROL_LANE,
            seq: 0,
        }
    }
}

/// One per-lane acknowledgement inside `RESUME`/`RESUME_OK`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneAck {
    /// The lane.
    pub lane: u32,
    /// In `RESUME`: the highest response seq the client has received on
    /// the lane. In `RESUME_OK`: the seq of the cached response the
    /// server is about to replay.
    pub seq: u64,
}

/// What a data lane attaches to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LaneTarget {
    /// A roster device lane (by pool index) — the v1-style block target.
    Device(u32),
    /// A fleet tenant (by tenant id) — the lane feeds the tenant's
    /// arrival stream and observes its epochs.
    Tenant(u32),
}

/// The typed failure class of an `ERR` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// The peer broke the protocol (the message says how).
    Protocol,
    /// The client's `OPEN` offered a version this server does not speak.
    UnsupportedVersion {
        /// The version the client offered.
        found: u16,
        /// The version the server speaks.
        supported: u16,
    },
    /// `RESUME` named a token the server does not hold.
    UnknownSession,
    /// The frame named a lane the session never attached.
    UnknownLane,
    /// The device rejected a request; the frame's `io` field says why.
    Io,
}

/// The payload of one v2 frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// Client hello; must be the first frame on a fresh connection.
    Open {
        /// The protocol version the client speaks.
        version: u16,
    },
    /// The server's reply to [`Body::Open`]: the session is live.
    OpenOk {
        /// The token that names this session across reconnects.
        token: u64,
    },
    /// Client hello on a *re*connection: take over session `header.session`.
    Resume {
        /// Per-lane highest received response seqs.
        acks: Vec<LaneAck>,
    },
    /// The server's reply to [`Body::Resume`]: the session is re-armed.
    ResumeOk {
        /// Number of data lanes the session holds.
        lanes: u32,
        /// The cached responses the server will replay, in lane order.
        /// A pending request whose lane is *not* listed here was never
        /// processed and must be resent by the client.
        replay: Vec<LaneAck>,
    },
    /// Attach a new data lane (control lane).
    Attach {
        /// What the lane drives.
        target: LaneTarget,
    },
    /// The server's reply to [`Body::Attach`]: rides the control lane
    /// (echoing the attach's seq) and names the new data lane in `lane`.
    AttachOk {
        /// The id assigned to the new lane.
        lane: u32,
        /// Device or tenant-region name.
        name: String,
        /// Capacity (device) or region span (tenant), in bytes.
        capacity: u64,
        /// Logical block size in bytes.
        logical_block: u32,
    },
    /// A batch of requests on a data lane: a doorbelled I/O batch on a
    /// device lane, arrival entries on a tenant lane.
    Submit {
        /// The requests, submit instants non-decreasing.
        reqs: Vec<IoRequest>,
    },
    /// The completions of an accepted device-lane submit, index-aligned
    /// with its request list.
    Completions {
        /// One completion per request, in submission order.
        completions: Vec<Completion>,
    },
    /// A tenant lane accepted a pushed entry batch.
    PushOk {
        /// How many entries were appended to the tenant's stream.
        accepted: u64,
    },
    /// Backpressure: the submit frame was refused, nothing was issued.
    Busy {
        /// Why the frame was refused.
        reason: BusyReason,
    },
    /// Ask for the lane's server-side ledger.
    Stats,
    /// The server's reply to [`Body::Stats`].
    StatsOk {
        /// The ledger and the lane's queue head.
        stats: WireStats,
    },
    /// Pull the server's live telemetry (control lane): every pool
    /// counter, gauge, and latency percentile the server exports.
    Metrics,
    /// The server's reply to [`Body::Metrics`].
    MetricsOk {
        /// The live snapshot, in the server's registration order.
        snapshot: ObsSnapshot,
    },
    /// Tenant lane: all entries for `epoch` are pushed; run it when
    /// every tenant has flushed.
    Flush {
        /// The epoch index being flushed.
        epoch: u64,
    },
    /// The epoch ran; the tenant's entries up to its cut are on the
    /// device.
    FlushOk {
        /// The epoch index that ran.
        epoch: u64,
    },
    /// The epoch's rebalance moved this lane's tenant; subsequent
    /// entries land on the new home. Sent ahead of the same seq's
    /// `FlushOk`.
    LaneMoved {
        /// The tenant's new home device index.
        to_device: u32,
    },
    /// Orderly shutdown of the session (control lane).
    Close,
    /// The server's reply to [`Body::Close`]; the connection ends after
    /// this frame.
    CloseOk,
    /// A typed failure. The server closes the connection after sending
    /// one with code `Protocol`/`UnsupportedVersion`/`UnknownSession`;
    /// lane-scoped errors (`UnknownLane`, `Io`) leave the session up.
    Err {
        /// The failure class.
        code: ErrCode,
        /// The device error, when `code` is [`ErrCode::Io`].
        io: Option<IoError>,
        /// Human-readable diagnostic.
        message: String,
    },
}

/// One `uc.wire.v2` frame: shared header + typed body.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Session token, lane, sequence number.
    pub header: FrameHeader,
    /// What the frame means.
    pub body: Body,
}

const KIND_OPEN: &str = "uc.wire.open.v2";
const KIND_OPEN_OK: &str = "uc.wire.open-ok.v2";
const KIND_RESUME: &str = "uc.wire.resume.v2";
const KIND_RESUME_OK: &str = "uc.wire.resume-ok.v2";
const KIND_ATTACH: &str = "uc.wire.attach.v2";
const KIND_ATTACH_OK: &str = "uc.wire.attach-ok.v2";
const KIND_SUBMIT: &str = "uc.wire.submit.v2";
const KIND_COMPLETIONS: &str = "uc.wire.completions.v2";
const KIND_PUSH_OK: &str = "uc.wire.push-ok.v2";
const KIND_BUSY: &str = "uc.wire.busy.v2";
const KIND_STATS: &str = "uc.wire.stats.v2";
const KIND_STATS_OK: &str = "uc.wire.stats-ok.v2";
const KIND_METRICS: &str = "uc.wire.metrics.v2";
const KIND_METRICS_OK: &str = "uc.wire.metrics-ok.v2";
const KIND_FLUSH: &str = "uc.wire.flush.v2";
const KIND_FLUSH_OK: &str = "uc.wire.flush-ok.v2";
const KIND_LANE_MOVED: &str = "uc.wire.lane-moved.v2";
const KIND_CLOSE: &str = "uc.wire.close.v2";
const KIND_CLOSE_OK: &str = "uc.wire.close-ok.v2";
const KIND_ERR: &str = "uc.wire.err.v2";

/// Every `uc.wire.v2` kind tag, in protocol order (the corruption sweeps
/// iterate this).
pub const ALL_KINDS: [&str; 20] = [
    KIND_OPEN,
    KIND_OPEN_OK,
    KIND_RESUME,
    KIND_RESUME_OK,
    KIND_ATTACH,
    KIND_ATTACH_OK,
    KIND_SUBMIT,
    KIND_COMPLETIONS,
    KIND_PUSH_OK,
    KIND_BUSY,
    KIND_STATS,
    KIND_STATS_OK,
    KIND_METRICS,
    KIND_METRICS_OK,
    KIND_FLUSH,
    KIND_FLUSH_OK,
    KIND_LANE_MOVED,
    KIND_CLOSE,
    KIND_CLOSE_OK,
    KIND_ERR,
];

fn put_kind(w: &mut Encoder, kind: IoKind) {
    w.put_u8(kind.is_write() as u8);
}

fn get_kind(r: &mut Decoder<'_>) -> Result<IoKind, DecodeError> {
    match r.get_u8()? {
        0 => Ok(IoKind::Read),
        1 => Ok(IoKind::Write),
        _ => Err(DecodeError::InvalidValue { what: "IoKind tag" }),
    }
}

pub(crate) fn put_io_error(w: &mut Encoder, e: &IoError) {
    match e {
        IoError::ZeroLength => w.put_u8(0),
        IoError::Misaligned {
            offset,
            len,
            logical_block,
        } => {
            w.put_u8(1);
            w.put_u64(*offset);
            w.put_u32(*len);
            w.put_u32(*logical_block);
        }
        IoError::OutOfRange { end, capacity } => {
            w.put_u8(2);
            w.put_u64(*end);
            w.put_u64(*capacity);
        }
        IoError::RingSaturated { ring, refusals } => {
            w.put_u8(3);
            w.put_u32(*ring);
            w.put_u32(*refusals);
        }
    }
}

pub(crate) fn get_io_error(r: &mut Decoder<'_>) -> Result<IoError, DecodeError> {
    match r.get_u8()? {
        0 => Ok(IoError::ZeroLength),
        1 => Ok(IoError::Misaligned {
            offset: r.get_u64()?,
            len: r.get_u32()?,
            logical_block: r.get_u32()?,
        }),
        2 => Ok(IoError::OutOfRange {
            end: r.get_u64()?,
            capacity: r.get_u64()?,
        }),
        3 => Ok(IoError::RingSaturated {
            ring: r.get_u32()?,
            refusals: r.get_u32()?,
        }),
        _ => Err(DecodeError::InvalidValue {
            what: "IoError tag",
        }),
    }
}

fn put_acks(w: &mut Encoder, acks: &[LaneAck]) {
    w.put_u64(acks.len() as u64);
    for a in acks {
        w.put_u32(a.lane);
        w.put_u64(a.seq);
    }
}

fn get_acks(r: &mut Decoder<'_>) -> Result<Vec<LaneAck>, DecodeError> {
    let count = r.get_u64()?;
    if count > crate::MAX_FRAME_REQUESTS {
        return Err(DecodeError::InvalidValue {
            what: "resume ack count",
        });
    }
    let mut acks = Vec::with_capacity(count as usize);
    for _ in 0..count {
        acks.push(LaneAck {
            lane: r.get_u32()?,
            seq: r.get_u64()?,
        });
    }
    Ok(acks)
}

impl Frame {
    /// A frame under `header`.
    pub fn new(header: FrameHeader, body: Body) -> Self {
        Frame { header, body }
    }

    /// The frame's `uc.wire.v2` kind tag.
    pub fn kind(&self) -> &'static str {
        match &self.body {
            Body::Open { .. } => KIND_OPEN,
            Body::OpenOk { .. } => KIND_OPEN_OK,
            Body::Resume { .. } => KIND_RESUME,
            Body::ResumeOk { .. } => KIND_RESUME_OK,
            Body::Attach { .. } => KIND_ATTACH,
            Body::AttachOk { .. } => KIND_ATTACH_OK,
            Body::Submit { .. } => KIND_SUBMIT,
            Body::Completions { .. } => KIND_COMPLETIONS,
            Body::PushOk { .. } => KIND_PUSH_OK,
            Body::Busy { .. } => KIND_BUSY,
            Body::Stats => KIND_STATS,
            Body::StatsOk { .. } => KIND_STATS_OK,
            Body::Metrics => KIND_METRICS,
            Body::MetricsOk { .. } => KIND_METRICS_OK,
            Body::Flush { .. } => KIND_FLUSH,
            Body::FlushOk { .. } => KIND_FLUSH_OK,
            Body::LaneMoved { .. } => KIND_LANE_MOVED,
            Body::Close => KIND_CLOSE,
            Body::CloseOk => KIND_CLOSE_OK,
            Body::Err { .. } => KIND_ERR,
        }
    }

    /// Encodes the frame as one complete `uc-persist` record.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Encoder::new();
        w.put_u64(self.header.session);
        w.put_u32(self.header.lane);
        w.put_u64(self.header.seq);
        match &self.body {
            Body::Open { version } => w.put_u16(*version),
            Body::OpenOk { token } => w.put_u64(*token),
            Body::Resume { acks } => put_acks(&mut w, acks),
            Body::ResumeOk { lanes, replay } => {
                w.put_u32(*lanes);
                put_acks(&mut w, replay);
            }
            Body::Attach { target } => match target {
                LaneTarget::Device(i) => {
                    w.put_u8(0);
                    w.put_u32(*i);
                }
                LaneTarget::Tenant(t) => {
                    w.put_u8(1);
                    w.put_u32(*t);
                }
            },
            Body::AttachOk {
                lane,
                name,
                capacity,
                logical_block,
            } => {
                w.put_u32(*lane);
                w.put_str(name);
                w.put_u64(*capacity);
                w.put_u32(*logical_block);
            }
            Body::Submit { reqs } => {
                w.put_u64(reqs.len() as u64);
                for req in reqs {
                    put_kind(&mut w, req.kind);
                    w.put_u64(req.offset);
                    w.put_u32(req.len);
                    w.put_u64(req.submit_time.as_nanos());
                }
            }
            Body::Completions { completions } => {
                w.put_u64(completions.len() as u64);
                for c in completions {
                    w.put_u64(c.index as u64);
                    put_kind(&mut w, c.kind);
                    w.put_u32(c.len);
                    w.put_u64(c.submitted.as_nanos());
                    w.put_u64(c.completes.as_nanos());
                }
            }
            Body::PushOk { accepted } => w.put_u64(*accepted),
            Body::Busy { reason } => w.put_u8(reason.tag()),
            Body::Stats => {}
            Body::StatsOk { stats } => {
                w.put_u64(stats.stats.ios);
                w.put_u64(stats.stats.bytes);
                w.put_u64(stats.stats.clamped);
                w.put_u64(stats.stats.last_submit.as_nanos());
                w.put_u64(stats.queue_head.as_nanos());
            }
            Body::Metrics => {}
            Body::MetricsOk { snapshot } => snapshot.encode(&mut w),
            Body::Flush { epoch } => w.put_u64(*epoch),
            Body::FlushOk { epoch } => w.put_u64(*epoch),
            Body::LaneMoved { to_device } => w.put_u32(*to_device),
            Body::Close | Body::CloseOk => {}
            Body::Err { code, io, message } => {
                match code {
                    ErrCode::Protocol => w.put_u8(0),
                    ErrCode::UnsupportedVersion { found, supported } => {
                        w.put_u8(1);
                        w.put_u16(*found);
                        w.put_u16(*supported);
                    }
                    ErrCode::UnknownSession => w.put_u8(2),
                    ErrCode::UnknownLane => w.put_u8(3),
                    ErrCode::Io => w.put_u8(4),
                }
                match io {
                    None => w.put_u8(0),
                    Some(e) => {
                        w.put_u8(1);
                        put_io_error(&mut w, e);
                    }
                }
                w.put_str(message);
            }
        }
        encode_record(self.kind(), w.as_bytes())
    }

    /// Rebuilds a frame from a decoded record's kind tag and payload.
    ///
    /// # Errors
    ///
    /// [`DecodeError::UnknownKind`] for a foreign kind tag,
    /// [`DecodeError::InvalidValue`] / [`DecodeError::Truncated`] /
    /// [`DecodeError::TrailingBytes`] for a malformed payload.
    pub fn from_parts(kind: &str, payload: &[u8]) -> Result<Frame, DecodeError> {
        // The kind gate comes first: a foreign frame (a v1 client, say)
        // must surface as `UnknownKind` for version negotiation, not as
        // a truncation error from misreading its payload as a v2 header.
        if !ALL_KINDS.contains(&kind) {
            return Err(DecodeError::UnknownKind {
                found: kind.to_string(),
            });
        }
        let mut r = Decoder::new(payload);
        let header = FrameHeader {
            session: r.get_u64()?,
            lane: r.get_u32()?,
            seq: r.get_u64()?,
        };
        let body = match kind {
            KIND_OPEN => Body::Open {
                version: r.get_u16()?,
            },
            KIND_OPEN_OK => Body::OpenOk {
                token: r.get_u64()?,
            },
            KIND_RESUME => Body::Resume {
                acks: get_acks(&mut r)?,
            },
            KIND_RESUME_OK => Body::ResumeOk {
                lanes: r.get_u32()?,
                replay: get_acks(&mut r)?,
            },
            KIND_ATTACH => Body::Attach {
                target: match r.get_u8()? {
                    0 => LaneTarget::Device(r.get_u32()?),
                    1 => LaneTarget::Tenant(r.get_u32()?),
                    _ => {
                        return Err(DecodeError::InvalidValue {
                            what: "LaneTarget tag",
                        })
                    }
                },
            },
            KIND_ATTACH_OK => Body::AttachOk {
                lane: r.get_u32()?,
                name: r.get_string()?,
                capacity: r.get_u64()?,
                logical_block: r.get_u32()?,
            },
            KIND_SUBMIT => {
                let count = r.get_u64()?;
                if count > crate::MAX_FRAME_REQUESTS {
                    return Err(DecodeError::InvalidValue {
                        what: "submit frame request count",
                    });
                }
                let mut reqs = Vec::with_capacity(count as usize);
                let mut last = SimTime::ZERO;
                for _ in 0..count {
                    let kind = get_kind(&mut r)?;
                    let offset = r.get_u64()?;
                    let len = r.get_u32()?;
                    let submit_time = SimTime::from_nanos(r.get_u64()?);
                    if submit_time < last {
                        return Err(DecodeError::InvalidValue {
                            what: "submit frame request order",
                        });
                    }
                    last = submit_time;
                    reqs.push(IoRequest {
                        kind,
                        offset,
                        len,
                        submit_time,
                    });
                }
                Body::Submit { reqs }
            }
            KIND_COMPLETIONS => {
                let count = r.get_u64()?;
                if count > crate::MAX_FRAME_REQUESTS {
                    return Err(DecodeError::InvalidValue {
                        what: "completions frame entry count",
                    });
                }
                let mut completions = Vec::with_capacity(count as usize);
                for _ in 0..count {
                    let index = r.get_u64()? as usize;
                    let kind = get_kind(&mut r)?;
                    let len = r.get_u32()?;
                    let submitted = SimTime::from_nanos(r.get_u64()?);
                    let completes = SimTime::from_nanos(r.get_u64()?);
                    completions.push(Completion {
                        index,
                        kind,
                        len,
                        submitted,
                        completes,
                    });
                }
                Body::Completions { completions }
            }
            KIND_PUSH_OK => Body::PushOk {
                accepted: r.get_u64()?,
            },
            KIND_BUSY => Body::Busy {
                reason: BusyReason::from_tag(r.get_u8()?)?,
            },
            KIND_STATS => Body::Stats,
            KIND_STATS_OK => Body::StatsOk {
                stats: WireStats {
                    stats: SessionStats {
                        ios: r.get_u64()?,
                        bytes: r.get_u64()?,
                        clamped: r.get_u64()?,
                        last_submit: SimTime::from_nanos(r.get_u64()?),
                    },
                    queue_head: SimTime::from_nanos(r.get_u64()?),
                },
            },
            KIND_METRICS => Body::Metrics,
            KIND_METRICS_OK => Body::MetricsOk {
                snapshot: ObsSnapshot::decode(&mut r)?,
            },
            KIND_FLUSH => Body::Flush {
                epoch: r.get_u64()?,
            },
            KIND_FLUSH_OK => Body::FlushOk {
                epoch: r.get_u64()?,
            },
            KIND_LANE_MOVED => Body::LaneMoved {
                to_device: r.get_u32()?,
            },
            KIND_CLOSE => Body::Close,
            KIND_CLOSE_OK => Body::CloseOk,
            KIND_ERR => {
                let code = match r.get_u8()? {
                    0 => ErrCode::Protocol,
                    1 => ErrCode::UnsupportedVersion {
                        found: r.get_u16()?,
                        supported: r.get_u16()?,
                    },
                    2 => ErrCode::UnknownSession,
                    3 => ErrCode::UnknownLane,
                    4 => ErrCode::Io,
                    _ => {
                        return Err(DecodeError::InvalidValue {
                            what: "ErrCode tag",
                        })
                    }
                };
                let io = match r.get_u8()? {
                    0 => None,
                    1 => Some(get_io_error(&mut r)?),
                    _ => {
                        return Err(DecodeError::InvalidValue {
                            what: "error frame io tag",
                        })
                    }
                };
                Body::Err {
                    code,
                    io,
                    message: r.get_string()?,
                }
            }
            _ => {
                return Err(DecodeError::UnknownKind {
                    found: kind.to_string(),
                })
            }
        };
        r.finish()?;
        Ok(Frame { header, body })
    }

    /// Reads the next frame off `reader`.
    ///
    /// Returns `Ok(None)` on a clean end of stream (the peer closed the
    /// connection between frames).
    ///
    /// # Errors
    ///
    /// Any corruption — truncation mid-frame, a checksum mismatch, a
    /// foreign kind tag, a malformed payload — is a typed
    /// [`DecodeError`].
    pub fn read_from<R: Read + ?Sized>(reader: &mut R) -> Result<Option<Frame>, DecodeError> {
        match read_record_from(reader)? {
            None => Ok(None),
            Some((kind, payload)) => Frame::from_parts(&kind, &payload).map(Some),
        }
    }

    /// Writes the frame to `writer` as one record.
    ///
    /// # Errors
    ///
    /// Propagates the transport error.
    pub fn write_to<W: Write + ?Sized>(&self, writer: &mut W) -> std::io::Result<()> {
        writer.write_all(&self.encode())?;
        writer.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(nanos: u64) -> SimTime {
        SimTime::from_nanos(nanos)
    }

    fn hdr(session: u64, lane: u32, seq: u64) -> FrameHeader {
        FrameHeader { session, lane, seq }
    }

    fn sample_frames() -> Vec<Frame> {
        vec![
            Frame::new(FrameHeader::connection(), Body::Open { version: 2 }),
            Frame::new(FrameHeader::connection(), Body::OpenOk { token: 7 }),
            Frame::new(
                hdr(7, 0, 0),
                Body::Resume {
                    acks: vec![LaneAck { lane: 1, seq: 12 }, LaneAck { lane: 2, seq: 3 }],
                },
            ),
            Frame::new(
                hdr(7, 0, 0),
                Body::ResumeOk {
                    lanes: 2,
                    replay: vec![LaneAck { lane: 1, seq: 13 }],
                },
            ),
            Frame::new(
                hdr(7, 0, 1),
                Body::Attach {
                    target: LaneTarget::Device(2),
                },
            ),
            Frame::new(
                hdr(7, 0, 2),
                Body::Attach {
                    target: LaneTarget::Tenant(41),
                },
            ),
            Frame::new(
                hdr(7, 0, 1),
                Body::AttachOk {
                    lane: 1,
                    name: "essd (aws io2 class)".to_string(),
                    capacity: 2 << 30,
                    logical_block: 4096,
                },
            ),
            Frame::new(
                hdr(7, 1, 1),
                Body::Submit {
                    reqs: vec![
                        IoRequest::write(0, 65536, at(10)),
                        IoRequest::read(65536, 4096, at(10)),
                        IoRequest::write(131072, 4096, at(25)),
                    ],
                },
            ),
            Frame::new(
                hdr(7, 1, 1),
                Body::Completions {
                    completions: vec![Completion {
                        index: 0,
                        kind: IoKind::Write,
                        len: 65536,
                        submitted: at(10),
                        completes: at(90),
                    }],
                },
            ),
            Frame::new(hdr(7, 2, 4), Body::PushOk { accepted: 512 }),
            Frame::new(
                hdr(7, 1, 2),
                Body::Busy {
                    reason: BusyReason::RingFull,
                },
            ),
            Frame::new(
                hdr(7, 1, 3),
                Body::Busy {
                    reason: BusyReason::Overload,
                },
            ),
            Frame::new(hdr(7, 1, 4), Body::Stats),
            Frame::new(
                hdr(7, 1, 4),
                Body::StatsOk {
                    stats: WireStats {
                        stats: SessionStats {
                            ios: 3,
                            bytes: 73728,
                            clamped: 1,
                            last_submit: at(25),
                        },
                        queue_head: at(40),
                    },
                },
            ),
            Frame::new(hdr(7, 0, 5), Body::Metrics),
            Frame::new(
                hdr(7, 0, 5),
                Body::MetricsOk {
                    snapshot: {
                        use uc_obs::{HistSummary, MetricValue, ObsSnapshot};
                        let mut s = ObsSnapshot::default();
                        s.push("serve.pool.ios".to_string(), MetricValue::Counter(3));
                        s.push("serve.loop.polls".to_string(), MetricValue::Gauge(12));
                        s.push(
                            "serve.lane0.service_ns".to_string(),
                            MetricValue::Histogram(HistSummary {
                                count: 3,
                                sum_ns: 300,
                                min_ns: 80,
                                max_ns: 120,
                                p50_ns: 100,
                                p99_ns: 120,
                                p999_ns: 120,
                            }),
                        );
                        s
                    },
                },
            ),
            Frame::new(hdr(7, 2, 5), Body::Flush { epoch: 1 }),
            Frame::new(hdr(7, 2, 5), Body::FlushOk { epoch: 1 }),
            Frame::new(hdr(7, 2, 5), Body::LaneMoved { to_device: 3 }),
            Frame::new(hdr(7, 0, 3), Body::Close),
            Frame::new(hdr(7, 0, 3), Body::CloseOk),
            Frame::new(
                hdr(0, 0, 0),
                Body::Err {
                    code: ErrCode::UnsupportedVersion {
                        found: 1,
                        supported: 2,
                    },
                    io: None,
                    message: "speak uc.wire.v2".to_string(),
                },
            ),
            Frame::new(
                hdr(7, 0, 0),
                Body::Err {
                    code: ErrCode::UnknownSession,
                    io: None,
                    message: "no such token".to_string(),
                },
            ),
            Frame::new(
                hdr(7, 9, 1),
                Body::Err {
                    code: ErrCode::UnknownLane,
                    io: None,
                    message: "lane 9 never attached".to_string(),
                },
            ),
            Frame::new(
                hdr(7, 1, 5),
                Body::Err {
                    code: ErrCode::Io,
                    io: Some(IoError::Misaligned {
                        offset: 3,
                        len: 100,
                        logical_block: 4096,
                    }),
                    message: "device rejected request".to_string(),
                },
            ),
            Frame::new(
                hdr(7, 1, 6),
                Body::Err {
                    code: ErrCode::Io,
                    io: Some(IoError::RingSaturated {
                        ring: 1,
                        refusals: 32,
                    }),
                    message: String::new(),
                },
            ),
            Frame::new(
                hdr(7, 0, 0),
                Body::Err {
                    code: ErrCode::Protocol,
                    io: None,
                    message: "expected OPEN".to_string(),
                },
            ),
        ]
    }

    #[test]
    fn every_frame_round_trips_through_a_byte_stream() {
        let frames = sample_frames();
        let mut stream = Vec::new();
        for f in &frames {
            f.write_to(&mut stream).unwrap();
        }
        let mut reader = &stream[..];
        for expected in &frames {
            let got = Frame::read_from(&mut reader).unwrap().expect("frame");
            assert_eq!(&got, expected);
        }
        assert_eq!(Frame::read_from(&mut reader).unwrap(), None, "clean EOF");
    }

    #[test]
    fn kinds_are_distinct_and_listed() {
        let frames = sample_frames();
        for kind in ALL_KINDS {
            assert!(frames.iter().any(|f| f.kind() == kind), "{kind} unsampled");
        }
        let mut kinds: Vec<&str> = ALL_KINDS.to_vec();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), ALL_KINDS.len());
    }

    #[test]
    fn v1_frames_are_foreign_to_v2_and_vice_versa() {
        // The version seam is the kind tag: a v1 open does not decode as
        // any v2 frame (and a v2 open is foreign to v1), so negotiation
        // happens on typed UnknownKind, never mis-parsed payloads.
        let err = Frame::from_parts("uc.wire.open.v1", &[]).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownKind { .. }));
        let err = crate::wire_v1::FrameV1::from_parts(KIND_OPEN, &[]).unwrap_err();
        assert!(matches!(err, DecodeError::UnknownKind { .. }));
    }

    #[test]
    fn time_travelling_submit_frames_are_rejected_on_decode() {
        // A hostile client encodes a batch whose submit instants regress;
        // the decoder must refuse it before it can reach an IoBatch.
        let mut w = Encoder::new();
        w.put_u64(7); // session
        w.put_u32(1); // lane
        w.put_u64(1); // seq
        w.put_u64(2); // count
        for t in [100u64, 50] {
            w.put_u8(1);
            w.put_u64(0);
            w.put_u32(4096);
            w.put_u64(t);
        }
        let err = Frame::from_parts(KIND_SUBMIT, w.as_bytes()).unwrap_err();
        assert!(matches!(
            err,
            DecodeError::InvalidValue {
                what: "submit frame request order"
            }
        ));
    }

    #[test]
    fn hostile_counts_are_bounded() {
        for (kind, what) in [
            (KIND_SUBMIT, "submit frame request count"),
            (KIND_COMPLETIONS, "completions frame entry count"),
            (KIND_RESUME, "resume ack count"),
        ] {
            let mut w = Encoder::new();
            w.put_u64(7);
            w.put_u32(1);
            w.put_u64(1);
            w.put_u64(u64::MAX); // claimed count far past any real frame
            let err = Frame::from_parts(kind, w.as_bytes()).unwrap_err();
            assert_eq!(err, DecodeError::InvalidValue { what }, "{kind}");
        }
    }

    #[test]
    fn trailing_payload_bytes_are_typed() {
        let mut w = Encoder::new();
        w.put_u64(7);
        w.put_u32(0);
        w.put_u64(0);
        w.put_u16(2);
        w.put_u8(0xEE); // junk after the version
        let err = Frame::from_parts(KIND_OPEN, w.as_bytes()).unwrap_err();
        assert!(matches!(err, DecodeError::TrailingBytes { count: 1 }));
    }

    #[test]
    fn mid_frame_truncation_is_typed() {
        let bytes = Frame::new(hdr(7, 0, 3), Body::Close).encode();
        for cut in 1..bytes.len() {
            let mut reader = &bytes[..cut];
            let err = Frame::read_from(&mut reader).expect_err(&format!("cut at {cut} must fail"));
            assert!(
                matches!(
                    err,
                    DecodeError::Truncated { .. } | DecodeError::ChecksumMismatch { .. }
                ),
                "cut at {cut}: {err:?}"
            );
        }
    }
}
