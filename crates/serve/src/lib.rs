//! The served frontend: the eSSD pool behind real network connections.
//!
//! Every workload so far was generated in-process; the paper's contract,
//! though, is about how *tenants'* traffic meets elastic SSDs — over
//! connections, with slow clients, bursts, overload, and connections
//! that die mid-exchange. This crate exposes both the
//! [`SharedDevice`](uc_blockdev::SharedDevice) session seam and the
//! fleet tenant seam as a storage target, std-only (`std::net` TCP and
//! Unix-domain sockets, raw `epoll` behind a tiny wrapper):
//!
//! * **wire** ([`Frame`]) — the `uc.wire.v2` framing on the `uc-persist`
//!   record envelope (magic, version, kind tag, CRC-32). Every frame
//!   carries a [`FrameHeader`] — session token, lane id, sequence
//!   number — and a typed [`Body`]. Sessions are first-class resumable
//!   objects: OPEN issues a token, ATTACH mounts device or fleet-tenant
//!   lanes, and RESUME replays exactly the unacknowledged responses
//!   after a reconnect. `uc.wire.v1` clients are refused with a typed
//!   `UnsupportedVersion` error ([`wire_v1`] keeps the old framing
//!   decodable for the negotiation test surface);
//! * **poll** ([`Poller`]) — readiness without dependencies: Linux
//!   `epoll` through a minimal FFI shim, `poll(2)` elsewhere;
//! * **pool** ([`ServePool`]) — the served backend: per-lane device
//!   sessions with a bounded submission ring, overload shedding above an
//!   in-flight ceiling, optional rate budgets, and — in fleet mode — the
//!   multi-tenant placement engine with epoch barriers and rebalance
//!   decisions surfaced per tenant;
//! * **server** ([`serve_events`]) — one serving thread drives every
//!   connection through an epoll event loop: non-blocking sockets,
//!   per-connection read/write buffers, partial-frame state machines. A
//!   stalled reader keeps its own admission slots parked but cannot
//!   block any other session;
//! * **client** ([`WireClient`], [`RemoteDevice`]) — the resumable
//!   multi-lane client. [`RemoteDevice`] keeps the
//!   [`BlockDevice`](uc_blockdev::BlockDevice) seam, so the trace
//!   replayer (`trace --remote`) is the load generator unchanged —
//!   ring-full refusals split iteratively (typed
//!   `RingSaturated` past the retry cap), overload backs off, and a dead
//!   connection resumes transparently.
//!
//! The acceptance bar is determinism *through failure*: kill the TCP
//! connection mid-replay, reconnect, and the resumed session must
//! produce a device-side report byte-identical to the uninterrupted run
//! — the replay list in RESUME_OK makes every response exactly-once.
//!
//! # Example: loopback serving
//!
//! ```
//! use std::sync::Arc;
//! use uc_blockdev::{BlockDevice, IoRequest};
//! use uc_serve::{Endpoint, Listener, PoolConfig, RemoteDevice, ServePool, serve_events};
//! use uc_sim::SimTime;
//! use uc_ssd::{Ssd, SsdConfig};
//!
//! let pool = Arc::new(ServePool::new(
//!     vec![("ssd".to_string(),
//!           Box::new(Ssd::new(SsdConfig::samsung_970_pro(256 << 20))) as _)],
//!     PoolConfig::default(),
//! ));
//! let listener = Listener::bind(&Endpoint::parse("tcp:127.0.0.1:0").unwrap())?;
//! let endpoint = listener.local_endpoint()?;
//! let server = {
//!     let pool = Arc::clone(&pool);
//!     std::thread::spawn(move || serve_events(&listener, &pool, 1))
//! };
//!
//! let mut dev = RemoteDevice::open(&endpoint, 0)?;
//! let done = dev.submit(&IoRequest::write(0, 4096, SimTime::ZERO)).unwrap();
//! assert!(done > SimTime::ZERO);
//! dev.close()?;
//! let stats = server.join().unwrap()?;
//! assert_eq!(stats.sessions_served, 1);
//! assert_eq!(pool.report().total_ios(), 1);
//! # Ok::<(), std::io::Error>(())
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod metrics;
mod net;
mod poll;
mod pool;
mod server;
mod wire;
mod wire_v1;

pub use client::{RemoteDevice, WireClient};
pub use metrics::serve_metrics;
pub use net::{Endpoint, Listener, Stream};
pub use poll::{Event, Poller};
pub use pool::{
    DeviceLaneReport, FleetError, FlushOutcome, InflightGuard, OwnedInflightGuard, PoolConfig,
    PoolDevice, PoolSession, Rejection, ServePool, ServeReport, TenantMove,
};
pub use server::{serve_events, EventLoopStats};
pub use wire::{
    Body, BusyReason, ErrCode, Frame, FrameHeader, LaneAck, LaneTarget, WireStats, ALL_KINDS,
    CONTROL_LANE, WIRE_VERSION,
};
pub use wire_v1::{FrameV1, ALL_KINDS_V1};

/// Upper bound on the request (and completion) count one frame may
/// claim, checked before any allocation: a hostile length field cannot
/// balloon server memory. Far above any real doorbell ring.
pub const MAX_FRAME_REQUESTS: u64 = 1 << 16;
